#!/usr/bin/env python3
"""A tour of the analytical throughput model (Sections 3 and 4.5).

Recreates the paper's running example — Figures 2, 3 and 4 — by hand:

* the two-level mapping of Figure 2 and the optimal port allocation of
  Example 1 (throughput 1.5 cycles),
* the three-level mapping of Figure 4 with µop decomposition,
* the equivalence of the LP model and the bottleneck simulation algorithm,
* a micro-benchmark of the two back ends, previewing Figure 8.

Run:  python examples/throughput_model_tour.py
"""

import time

from repro.core import Experiment, PortSpace, ThreeLevelMapping, TwoLevelMapping
from repro.throughput import (
    bottleneck_throughput,
    bottleneck_throughput_reference,
    lp_throughput,
    lp_throughput_masses,
)


def main() -> None:
    ports = PortSpace(["P1", "P2", "P3"])

    # Figure 2: mul -> {P1}; add, sub -> {P1,P2}; store -> {P3}.
    two_level = TwoLevelMapping(ports, {
        "mul": ports.mask("P1"),
        "add": ports.mask("P1", "P2"),
        "sub": ports.mask("P1", "P2"),
        "store": ports.mask("P3"),
    })

    # Example 1: e = {add: 2, mul: 1, store: 1}.
    experiment = Experiment({"add": 2, "mul": 1, "store": 1})
    masses = two_level.uop_masses(experiment)
    print("Example 1 (two-level, Figure 2):")
    print(f"  experiment: {dict(experiment.counts)}")
    print(f"  LP throughput:         {lp_throughput(two_level, experiment):.3f}")
    print(f"  bottleneck throughput: {bottleneck_throughput(masses, 3):.3f}")
    print("  (the paper's Figure 3 shows this optimum: 1.5 cycles, with the")
    print("   two add instructions split unevenly over P1 and P2)\n")

    # Figure 4: three-level mapping with µop decomposition.
    three_level = ThreeLevelMapping(ports, {
        "mul": {ports.mask("P1"): 2},
        "add": {ports.mask("P1", "P2"): 1},
        "sub": {ports.mask("P1", "P2"): 1},
        "store": {ports.mask("P1", "P2"): 1, ports.mask("P3"): 1},
    })
    print("Figure 4 (three-level):")
    print(three_level.describe())
    print(f"  µop volume V(m) = {three_level.uop_volume()}")
    print(f"  throughput of e: {lp_throughput(three_level, experiment):.3f} "
          "(store now shares a µop with add/sub)\n")

    # Equation 1: enumerate bottleneck port sets by hand.
    print("Equation 1, enumerated for the two-level example:")
    masses = two_level.uop_masses(experiment)
    for q, label in ((0b001, "{P1}"), (0b011, "{P1,P2}"), (0b111, "{P1,P2,P3}")):
        included = sum(m for mask, m in masses.items() if mask & ~q == 0)
        size = bin(q).count("1")
        print(f"  Q = {label:11s}: mass {included:.0f} / {size} ports = {included / size:.3f}")
    print("  max over all Q -> 1.5, attained at the bottleneck set {P1,P2}\n")

    # Preview of Figure 8: the bottleneck algorithm vs the LP solver.
    big_ports = 10
    rng_masses = {(1 << (i % big_ports)) | (1 << ((i * 3 + 1) % big_ports)): 1.0 + i % 4
                  for i in range(6)}
    for label, func in (
        ("bottleneck (dense)", lambda: bottleneck_throughput(rng_masses, big_ports)),
        ("reference 2^P scan", lambda: bottleneck_throughput_reference(rng_masses, big_ports)),
        ("LP solver (HiGHS) ", lambda: lp_throughput_masses(rng_masses, big_ports)),
    ):
        start = time.perf_counter()
        repeats = 50
        for _ in range(repeats):
            value = func()
        per_call = (time.perf_counter() - start) / repeats
        print(f"  {label}: {value:.3f} cycles, {per_call * 1e6:8.1f} µs/call")
    print("\n(cf. Figure 8: the bottleneck algorithm wins by orders of magnitude")
    print(" at realistic port counts; benchmarks/test_fig8* sweep the full range)")


if __name__ == "__main__":
    main()
