#!/usr/bin/env python3
"""Quickstart: infer a port mapping for a tiny machine in under a minute.

Walks the full PMEvo loop of Figure 5 on a 3-port toy processor:

1. build a machine (the thing we pretend we cannot look inside),
2. run the PMEvo pipeline against its timing interface,
3. inspect the inferred mapping and compare it with the hidden truth,
4. use the mapping to predict the throughput of unseen code.

Run:  python examples/quickstart.py
"""

from repro.core import Experiment
from repro.machine import MeasurementConfig, toy_machine
from repro.pmevo import EvolutionConfig, PMEvoConfig, infer_port_mapping
from repro.throughput import MappingPredictor


def main() -> None:
    # A small out-of-order core with 3 ports and 8 instruction forms.  The
    # inference pipeline only ever calls machine.measure(); the ground
    # truth mapping stays hidden inside the simulator.
    machine = toy_machine(num_ports=3, measurement=MeasurementConfig(seed=7))
    print(f"machine under test: {machine.describe()}\n")

    config = PMEvoConfig(
        epsilon=0.05,
        evolution=EvolutionConfig(population_size=120, max_generations=80, seed=1),
    )
    result = infer_port_mapping(machine, config=config)

    print("=== inferred port mapping (representatives) ===")
    print(result.representative_mapping.describe())
    print()
    print(f"congruent instruction forms: {100 * result.congruent_fraction:.0f}%")
    print(f"evolution: {result.evolution.generations} generations, "
          f"{result.evolution.evaluations} fitness evaluations, "
          f"D_avg = {result.evolution.davg:.4f}")
    print()

    print("=== hidden ground truth, for comparison ===")
    truth = machine.ground_truth_mapping()
    print(truth.restricted_to(result.partition.representatives).describe())
    print()
    print("(The inferred mapping may permute port names — only the")
    print(" observable throughput behaviour is identifiable from timing.)")
    print()

    # Use the inferred mapping as a throughput predictor for unseen code.
    predictor = MappingPredictor(result.mapping, name="pmevo")
    names = machine.isa.names
    unseen = Experiment({names[0]: 2, names[2]: 1, names[5]: 1})
    predicted = predictor.predict(unseen)
    measured = machine.measure(unseen)
    print(f"unseen experiment {dict(unseen.counts)}:")
    print(f"  predicted {predicted:.3f} cycles, measured {measured:.3f} cycles")


if __name__ == "__main__":
    main()
