#!/usr/bin/env python3
"""Downstream tooling: validate an inferred mapping and export it.

The paper's Section 6.2 argues that interpretable port mappings — unlike
black-box learned models — plug directly into performance tools ("Both,
llvm-mca and OSACA, can benefit from port mappings by PMEvo").  This
example closes that loop:

1. infer a mapping for the toy machine,
2. validate it against the hidden ground truth: behavioural distance on
   the canonical experiment family, and an exact port-permutation
   equivalence check,
3. export it as an LLVM-scheduling-model-flavoured snippet and an
   OSACA-style port-pressure table.

Run:  python examples/export_and_validate.py
"""

from repro.analysis import (
    mapping_diff,
    to_llvm_sched_model,
    to_osaca_table,
)
from repro.machine import MeasurementConfig, toy_machine
from repro.pmevo import EvolutionConfig, PMEvoConfig, infer_port_mapping


def main() -> None:
    machine = toy_machine(num_ports=3, measurement=MeasurementConfig(noisy=False))
    config = PMEvoConfig(
        evolution=EvolutionConfig(population_size=150, max_generations=80, seed=2)
    )
    result = infer_port_mapping(machine, config=config)
    inferred = result.mapping
    truth = machine.ground_truth_mapping()

    print("=== validation against (hidden) ground truth ===")
    comparison = mapping_diff(inferred, truth, "inferred", "truth")
    print(f"behavioural distance on canonical experiments: "
          f"{comparison.behavioural_distance:.4f}")
    print(f"identical up to port renaming: {comparison.structurally_equivalent}")
    if comparison.permutation is not None:
        names = machine.config.ports.names
        renaming = ", ".join(
            f"{names[i]}->{names[p]}" for i, p in enumerate(comparison.permutation)
        )
        print(f"port renaming: {renaming}")
    else:
        print("structural diff (throughput-equivalent alternatives are expected):")
        print(comparison.diff_text)
    print()

    print("=== LLVM scheduling-model flavoured export (excerpt) ===")
    snippet = to_llvm_sched_model(result.representative_mapping, "ToyModel")
    print("\n".join(snippet.splitlines()[:16]))
    print("...\n")

    print("=== OSACA-style port pressure table ===")
    print(to_osaca_table(result.representative_mapping))


if __name__ == "__main__":
    main()
