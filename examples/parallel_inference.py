#!/usr/bin/env python3
"""Parallel port-mapping inference with the island model.

PMEvo's reference implementation runs its evolutionary algorithm in parallel
on multicore machines (Section 4.5: evaluation speed "directly corresponds
to the quality of the obtained solution").  This walkthrough shows the
reproduction's equivalent — island-model search — and the two properties
that make it safe to use:

* **Speed**: K islands of population p evolve concurrently in worker
  processes, so a generation costs roughly 1/K of a single population of
  size K·p while exploring the same gene pool.
* **Reproducibility**: island seeds derive from one root seed and workers
  only transport island states, so any worker count produces byte-identical
  mappings — parallelism cannot silently change results.

Run:  python examples/parallel_inference.py [--forms N] [--islands K] [--workers W]
"""

import argparse
import time

from repro.analysis import format_table
from repro.machine import MeasurementConfig, skl_machine
from repro.pmevo import (
    EvolutionConfig,
    PMEvoConfig,
    infer_port_mapping,
)


def stratified_subset(machine, limit: int) -> list[str]:
    by_class: dict[str, str] = {}
    for form in machine.isa:
        by_class.setdefault(form.semantic_class, form.name)
    return sorted(by_class.values())[:limit]


def run_once(machine, names, population, islands, workers, seed):
    config = PMEvoConfig(
        evolution=EvolutionConfig(
            population_size=population,
            max_generations=60,
            seed=seed,
            islands=islands,
            workers=workers,
            migration_interval=5,
            migration_size=2,
        )
    )
    start = time.perf_counter()
    result = infer_port_mapping(machine, names=names, config=config)
    return result, time.perf_counter() - start


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--forms", type=int, default=14)
    parser.add_argument("--population", type=int, default=40, help="per-island population")
    parser.add_argument("--islands", type=int, default=4)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    machine = skl_machine(measurement=MeasurementConfig(noisy=False))
    names = stratified_subset(machine, args.forms)
    print(f"machine: {machine.describe()}")
    print(f"instruction forms: {len(names)}")
    print()

    # One big sequential population vs. the same gene pool split across
    # islands — the comparison Section 4.5's parallelization argument makes.
    total = args.population * args.islands
    print(f"[1/3] sequential baseline: one population of {total} ...")
    baseline, baseline_seconds = run_once(machine, names, total, 1, 1, args.seed)

    print(f"[2/3] island model: {args.islands} x {args.population} on "
          f"{args.workers} workers ...")
    parallel, parallel_seconds = run_once(
        machine, names, args.population, args.islands, args.workers, args.seed
    )

    print(f"[3/3] reproducibility: same root seed on 1 worker ...")
    serial, _ = run_once(machine, names, args.population, args.islands, 1, args.seed)

    rows = [
        ["sequential", "1", "1", f"{baseline.evolution.davg:.4f}",
         f"{baseline.evolution.evaluations}", f"{baseline_seconds:.2f}s"],
        [f"islands ({args.islands}x{args.population})", str(args.islands),
         str(args.workers), f"{parallel.evolution.davg:.4f}",
         f"{parallel.evolution.evaluations}", f"{parallel_seconds:.2f}s"],
    ]
    print()
    print(format_table(
        ["configuration", "islands", "workers", "D_avg", "evaluations", "wall"],
        rows,
        title="island-model parallel inference",
    ))
    print()
    evo = parallel.evolution
    print(f"epochs: {evo.epochs}, migrations: {evo.migrations}, "
          f"winning island: {evo.best_island}")
    print(f"per-island best D_avg: "
          + ", ".join(f"{d:.4f}" for d in evo.island_davgs))
    print(f"speedup over sequential: {baseline_seconds / parallel_seconds:.2f}x")
    identical = serial.evolution.mapping == parallel.evolution.mapping
    print(f"workers=1 reproduces workers={args.workers} bit-for-bit: {identical}")


if __name__ == "__main__":
    main()
