#!/usr/bin/env python3
"""Portability demo: infer port mappings for ZEN- and A72-like machines.

The paper's headline claim is *portability*: PMEvo needs only end-to-end
timing, so it works on processors without per-port performance counters —
AMD Zen+ and ARM Cortex-A72 in the paper — where counter-based approaches
(uops.info, llvm-exegesis) cannot run at all.

This example infers mappings for both non-Intel machines and compares the
result against llvm-mca's hand-tuned scheduling models, reproducing the
qualitative outcome of the paper's Table 4: the inferred mappings beat the
hand-tuned models by a wide margin.

Run:  python examples/cross_architecture.py [--forms N]
"""

import argparse

from repro.analysis import evaluate_predictor, format_table
from repro.baselines import LLVMMCAPredictor
from repro.core import ExperimentSet
from repro.machine import MeasurementConfig, a72_machine, zen_machine
from repro.pmevo import (
    EvolutionConfig,
    PMEvoConfig,
    infer_port_mapping,
    random_experiments,
)
from repro.throughput import MappingPredictor


def stratified_subset(machine, limit: int) -> list[str]:
    by_class: dict[str, str] = {}
    for form in machine.isa:
        by_class.setdefault(form.semantic_class, form.name)
    return sorted(by_class.values())[:limit]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--forms", type=int, default=18)
    parser.add_argument("--population", type=int, default=160)
    args = parser.parse_args()

    rows = []
    for factory in (zen_machine, a72_machine):
        machine = factory(measurement=MeasurementConfig(seed=5))
        names = stratified_subset(machine, args.forms)
        print(f"=== {machine.describe()} ===")
        print(f"inferring over {len(names)} forms "
              "(no per-port counters needed — timing only)")

        config = PMEvoConfig(
            evolution=EvolutionConfig(
                population_size=args.population, max_generations=100, seed=0
            )
        )
        result = infer_port_mapping(machine, names=names, config=config)
        print(f"  congruent: {100 * result.congruent_fraction:.0f}%, "
              f"µops: {result.num_uops}, D_avg: {result.evolution.davg:.3f}")

        held_out = random_experiments(names, size=5, count=120, seed=11)
        bench = ExperimentSet()
        for experiment in held_out:
            bench.add(experiment, machine.measure(experiment))
        for predictor in (
            MappingPredictor(result.mapping, name="PMEvo"),
            LLVMMCAPredictor(machine),
        ):
            report = evaluate_predictor(predictor, bench, machine.name)
            rows.append([
                f"{report.predictor} ({machine.name})",
                f"{report.mape:.1f}%",
                f"{report.pearson:.2f}",
                f"{report.spearman:.2f}",
            ])
        print()

    print(format_table(
        ["predictor", "MAPE", "Pearson CC", "Spearman CC"],
        rows,
        title="held-out accuracy (cf. paper Table 4)",
    ))


if __name__ == "__main__":
    main()
