#!/usr/bin/env python3
"""Distributed inference: socket transport and checkpoint/resume.

PR 4's island model parallelized the evolutionary search on one host; the
migration transport extracted in PR 5 scales it beyond it.  This walkthrough
demonstrates the two pieces on a laptop-scale SKL problem:

1. **Socket transport.**  An inference run leases island epochs over TCP to
   worker processes.  Here the workers are threads in this process for
   convenience; on a cluster you run ``repro-pmevo infer ... --transport
   socket --bind 0.0.0.0:5555`` on the coordinator and ``repro-pmevo worker
   --connect COORDINATOR:5555`` on every core of every machine — the code
   path is identical.
2. **Checkpoint/resume.**  The same epoch-barrier serialization is written
   to disk as atomic snapshots; we kill a run mid-flight, resume it, and
   verify the result is byte-identical to never having been interrupted.

Run:  python examples/distributed_inference.py [--forms N] [--islands K]
"""

import argparse
import dataclasses
import tempfile
import threading
from pathlib import Path

from repro.machine import MeasurementConfig, skl_machine
from repro.pmevo import (
    Checkpointer,
    EvolutionConfig,
    PMEvoConfig,
    SocketTransport,
    infer_port_mapping,
    load_checkpoint,
    run_worker,
)


def stratified_subset(machine, limit: int) -> list[str]:
    by_class: dict[str, str] = {}
    for form in machine.isa:
        by_class.setdefault(form.semantic_class, form.name)
    return sorted(by_class.values())[:limit]


def pmevo_config(args) -> PMEvoConfig:
    return PMEvoConfig(
        evolution=EvolutionConfig(
            population_size=args.population,
            max_generations=40,
            seed=0,
            islands=args.islands,
            migration_interval=5,
            migration_size=2,
        )
    )


def normalized(result) -> str:
    """Serialized result minus timing/worker-count (the comparison the
    equivalence tests use)."""
    return dataclasses.replace(result.evolution, wall_seconds=0.0, workers=0).to_json()


def demo_socket(machine, names, args):
    print("== socket transport: leasing epochs to 2 workers over TCP ==")
    transport = SocketTransport(min_workers=2)
    host, port = transport.listen()
    print(f"coordinator listening on {host}:{port}")
    workers = [
        threading.Thread(target=run_worker, args=(host, port), daemon=True)
        for _ in range(2)
    ]
    for worker in workers:
        worker.start()
    result = infer_port_mapping(
        machine, names=names, config=pmevo_config(args), transport=transport
    )
    for worker in workers:
        worker.join(timeout=30)
    print(
        f"distributed run: D_avg={result.evolution.davg:.4f} over "
        f"{result.evolution.epochs} epochs, {result.evolution.migrations} migrations"
    )
    return result


class KillAfter(Checkpointer):
    """Aborts the run right after the Nth snapshot — a stand-in for SIGKILL,
    a crashed node, or a spot instance reclaim."""

    def __init__(self, path, kill_after: int):
        super().__init__(path, interval=1)
        self.kill_after = kill_after

    def after_epoch(self, snapshot):
        saved = super().after_epoch(snapshot)
        if self.saves >= self.kill_after:
            raise KeyboardInterrupt
        return saved


def demo_checkpoint(machine, names, args, reference):
    print("\n== checkpoint/resume: kill after the first epoch, then resume ==")
    snapshot_path = Path(tempfile.mkdtemp()) / "snapshot.json"
    try:
        infer_port_mapping(
            machine,
            names=names,
            config=pmevo_config(args),
            checkpointer=KillAfter(snapshot_path, kill_after=1),
        )
    except KeyboardInterrupt:
        print(f"run killed; snapshot at {snapshot_path}")
    snapshot = load_checkpoint(snapshot_path)
    print(f"resuming from epoch {snapshot.epochs}")
    resumed = infer_port_mapping(
        machine, names=names, config=pmevo_config(args), resume=snapshot
    )
    identical = normalized(resumed) == normalized(reference)
    print(f"resumed == uninterrupted (byte-identical): {identical}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--forms", type=int, default=8)
    parser.add_argument("--population", type=int, default=20, help="per-island population")
    parser.add_argument("--islands", type=int, default=3)
    args = parser.parse_args()

    machine = skl_machine(measurement=MeasurementConfig(noisy=False))
    names = stratified_subset(machine, args.forms)
    print(f"machine: {machine.describe()}, {len(names)} instruction forms\n")

    reference = demo_socket(machine, names, args)
    demo_checkpoint(machine, names, args, reference)


if __name__ == "__main__":
    main()
