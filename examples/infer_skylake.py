#!/usr/bin/env python3
"""Infer a port mapping for the SKL-like machine (the paper's Section 5.3.1).

Runs the PMEvo pipeline on a stratified subset of the x86-like ISA against
the SKL-like simulated processor, then:

* prints Table 2-style pipeline statistics,
* compares the inferred mapping with the uops.info-style oracle on random
  held-out experiments,
* shows how the divider and the quirky BTx family are represented: PMEvo
  learns *observable* port pressure, so a non-pipelined divider appears as
  several µops on the DIV pipe — "while differing from the real port
  mapping, this fits better to the observable throughputs" (Section 5.3.1),
* writes the mapping to skl_mapping.json (reusable via the repro-pmevo CLI).

Run:  python examples/infer_skylake.py [--forms N] [--population P]
"""

import argparse
from pathlib import Path

from repro.analysis import evaluate_predictor, format_table
from repro.baselines import UopsInfoPredictor
from repro.core import Experiment, ExperimentSet
from repro.machine import MeasurementConfig, skl_machine
from repro.pmevo import (
    EvolutionConfig,
    PMEvoConfig,
    infer_port_mapping,
    random_experiments,
)
from repro.throughput import MappingPredictor


def stratified_subset(machine, limit: int) -> list[str]:
    by_class: dict[str, str] = {}
    for form in machine.isa:
        by_class.setdefault(form.semantic_class, form.name)
    return sorted(by_class.values())[:limit]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--forms", type=int, default=22)
    parser.add_argument("--population", type=int, default=200)
    parser.add_argument("--generations", type=int, default=120)
    parser.add_argument("--output", type=Path, default=Path("skl_mapping.json"))
    args = parser.parse_args()

    machine = skl_machine(measurement=MeasurementConfig(seed=3))
    names = stratified_subset(machine, args.forms)
    print(f"machine: {machine.describe()}")
    print(f"inferring over {len(names)} instruction forms\n")

    config = PMEvoConfig(
        evolution=EvolutionConfig(
            population_size=args.population,
            max_generations=args.generations,
            seed=0,
        )
    )
    result = infer_port_mapping(machine, names=names, config=config)

    print(format_table(
        ["statistic", "value"],
        list(result.table2_row().items()),
        title="pipeline statistics (cf. paper Table 2)",
    ))
    print()

    # Held-out evaluation against the ground-truth-based oracle.
    held_out = random_experiments(names, size=5, count=150, seed=42)
    bench = ExperimentSet()
    for experiment in held_out:
        bench.add(experiment, machine.measure(experiment))
    rows = []
    for predictor in (
        MappingPredictor(result.mapping, name="PMEvo"),
        UopsInfoPredictor(machine),
    ):
        report = evaluate_predictor(predictor, bench, "SKL")
        rows.append([report.predictor, f"{report.mape:.1f}%",
                     f"{report.pearson:.2f}", f"{report.spearman:.2f}"])
    print(format_table(
        ["predictor", "MAPE", "Pearson CC", "Spearman CC"],
        rows,
        title="held-out accuracy, 150 random size-5 experiments",
    ))
    print()

    # How special instructions are represented.
    div = next((n for n in names if "div" in n and "v" != n[0]), None)
    if div is not None:
        print(f"divider representation ({div}):")
        print(f"  inferred: {_render(result.mapping, div)}")
        print(f"  truth:    {_render(machine.ground_truth_mapping(), div)}")
        measured = machine.measure(Experiment({div: 1}))
        predicted = MappingPredictor(result.mapping).predict(Experiment({div: 1}))
        print(f"  measured {measured:.2f} vs predicted {predicted:.2f} cycles\n")

    args.output.write_text(result.mapping.to_json())
    print(f"mapping written to {args.output}")
    print(f"try: repro-pmevo show {args.output}")


def _render(mapping, name: str) -> str:
    ports = mapping.ports
    return " + ".join(
        f"{count}x{ports.format_mask(mask)}" for mask, count in mapping.uops_of(name).items()
    )


if __name__ == "__main__":
    main()
