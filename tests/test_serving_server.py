"""End-to-end drills of ``repro-pmevo serve`` as a real subprocess.

These spawn the actual CLI on an ephemeral port (``--bind :0``), parse the
``serving on HOST:PORT`` startup line, hit it with concurrent HTTP clients,
and exercise the graceful-shutdown contract: SIGTERM stops accepting but
drains requests already in flight — including one whose body is still
arriving — before the process exits 0.

Marked ``serving``: CI runs them in their own job under pytest-timeout so a
wedged server cannot hang the suite; they also pass in the plain tier.
"""

from __future__ import annotations

import http.client
import json
import os
import queue
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core import Experiment, PortSpace, ThreeLevelMapping
from repro.throughput import FixedMappingEvaluator

pytestmark = pytest.mark.serving

REPO_ROOT = Path(__file__).resolve().parent.parent

_SERVING_LINE = re.compile(r"^serving on (?P<host>[^\s:]+):(?P<port>\d+)$")


def _mapping() -> ThreeLevelMapping:
    return ThreeLevelMapping(
        PortSpace.numbered(3),
        {"add": {0b001: 1}, "mul": {0b110: 2}, "ld": {0b011: 1}, "st": {0b100: 2}},
    )


class ServeProcess:
    """A ``repro-pmevo serve`` subprocess with line-buffered stdout capture."""

    def __init__(self, mapping_path: Path, *extra: str, bind: str = "127.0.0.1:0"):
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--mapping",
                str(mapping_path),
                "--bind",
                bind,
                *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        self.lines: list[str] = []
        self._queue: "queue.Queue[str | None]" = queue.Queue()
        self._reader = threading.Thread(
            target=self._pump, args=(self.proc.stdout,), daemon=True
        )
        self._reader.start()
        self.host, self.port = self._await_serving_line()

    def _pump(self, stream) -> None:
        for line in stream:
            self._queue.put(line.rstrip("\n"))
        self._queue.put(None)

    def _await_serving_line(self, timeout: float = 30.0) -> tuple[str, int]:
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.kill()
                raise AssertionError(
                    f"server never printed its bind line; stdout so far: {self.lines}"
                )
            try:
                line = self._queue.get(timeout=remaining)
            except queue.Empty:
                continue
            if line is None:
                stderr = self.proc.stderr.read()
                raise AssertionError(
                    f"server exited before binding; stdout: {self.lines}; stderr: {stderr}"
                )
            self.lines.append(line)
            match = _SERVING_LINE.match(line)
            if match:
                return match.group("host"), int(match.group("port"))

    def drain_stdout(self) -> list[str]:
        """Collect whatever stdout the reader thread has seen so far."""
        while True:
            try:
                line = self._queue.get_nowait()
            except queue.Empty:
                break
            if line is None:
                break
            self.lines.append(line)
        return self.lines

    def terminate_and_wait(self, timeout: float = 20.0) -> int:
        self.proc.send_signal(signal.SIGTERM)
        code = self.proc.wait(timeout=timeout)
        self._reader.join(timeout=5)
        self.drain_stdout()
        return code

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


@pytest.fixture
def served(tmp_path):
    path = tmp_path / "toy.json"
    path.write_text(_mapping().to_json())
    server = ServeProcess(path, "--grace", "10")
    yield server
    server.kill()


def _request(host: str, port: int, method: str, path: str, payload=None):
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestServeEndToEnd:
    def test_ephemeral_bind_colon_zero_spelling(self, tmp_path):
        # `--bind :0`: empty host means loopback, port 0 is kernel-assigned,
        # and the printed line is the only way to learn the port — parse it.
        path = tmp_path / "toy.json"
        path.write_text(_mapping().to_json())
        server = ServeProcess(path, bind=":0")
        try:
            assert server.host == "127.0.0.1"
            assert 0 < server.port <= 65535
            status, body = _request(server.host, server.port, "GET", "/healthz")
            assert status == 200
            assert body == {"status": "ok", "mappings": ["toy"], "draining": False}
        finally:
            assert server.terminate_and_wait() == 0

    def test_startup_describes_each_mapping(self, served):
        banner = "\n".join(served.lines)
        assert "mapping 'toy'" in banner
        assert "4 instructions" in banner and "3 ports" in banner

    def test_concurrent_clients_get_exact_predictions(self, served):
        mapping = _mapping()
        evaluator = FixedMappingEvaluator(mapping)
        pool = [
            {"add": 1},
            {"mul": 2},
            {"add": 2, "ld": 1},
            {"st": 3, "mul": 1},
            {"add": 1, "mul": 1, "ld": 1, "st": 1},
        ]
        expected = {
            json.dumps(seq, sort_keys=True): evaluator.throughput(Experiment(seq))
            for seq in pool
        }
        failures: list[str] = []

        def client(worker: int) -> None:
            for round_ in range(6):
                batch = pool[(worker + round_) % len(pool) :] or pool
                status, body = _request(
                    served.host, served.port, "POST", "/v1/predict",
                    {"sequences": batch},
                )
                if status != 200:
                    failures.append(f"worker {worker}: status {status}: {body}")
                    return
                for seq, got in zip(batch, body["throughputs"]):
                    want = expected[json.dumps(seq, sort_keys=True)]
                    if got != want:
                        failures.append(
                            f"worker {worker}: {seq} -> {got!r}, expected {want!r}"
                        )

        threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not failures, failures

        status, stats = _request(served.host, served.port, "GET", "/v1/stats")
        assert status == 200
        assert stats["requests"]["predict"] == 48
        assert stats["cache"]["hits"] > 0
        assert stats["latency"]["count"] == 48
        assert server_exit_ok(served)

    def test_sigterm_drains_request_with_body_still_arriving(self, served):
        # The sharpest drain case: SIGTERM lands while a request's body is
        # mid-flight.  The server must stop accepting, *wait* for this
        # request, answer it, and only then exit 0.
        payload = json.dumps({"sequences": [["add", "mul"]]}).encode()
        head = (
            b"POST /v1/predict HTTP/1.1\r\n"
            b"Content-Length: %d\r\n\r\n" % len(payload)
        )
        split = len(payload) // 2
        with socket.create_connection((served.host, served.port), timeout=15) as sock:
            sock.sendall(head + payload[:split])
            time.sleep(0.5)  # let the server park in the body read
            served.proc.send_signal(signal.SIGTERM)
            time.sleep(0.5)  # let the drain path start waiting on us

            # New connections are refused once draining has closed the
            # listener, while our in-flight request keeps its socket.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                try:
                    probe = socket.create_connection(
                        (served.host, served.port), timeout=1
                    )
                    probe.close()
                    time.sleep(0.1)
                except OSError:
                    break
            else:
                pytest.fail("listener still accepting long after SIGTERM")

            sock.sendall(payload[split:])
            response = b""
            while b"\r\n\r\n" not in response:
                chunk = sock.recv(4096)
                assert chunk, f"connection closed before a response: {response!r}"
                response += chunk
            head_text, _, rest = response.partition(b"\r\n\r\n")
            assert head_text.startswith(b"HTTP/1.1 200")
            length = int(
                re.search(rb"content-length:\s*(\d+)", head_text, re.I).group(1)
            )
            while len(rest) < length:
                rest += sock.recv(4096)
            body = json.loads(rest[:length])
            assert body["throughputs"] == [
                FixedMappingEvaluator(_mapping()).throughput(
                    Experiment({"add": 1, "mul": 1})
                )
            ]

        assert served.proc.wait(timeout=20) == 0
        served.drain_stdout()
        assert "serving: shutdown requested, draining" in served.lines
        assert "serving: drained, bye" in served.lines

    def test_sigterm_on_idle_server_exits_promptly(self, served):
        status, _ = _request(served.host, served.port, "GET", "/healthz")
        assert status == 200
        start = time.monotonic()
        assert served.terminate_and_wait() == 0
        assert time.monotonic() - start < 10, "idle shutdown must not eat the grace period"
        assert "serving: drained, bye" in served.lines


def server_exit_ok(server: ServeProcess) -> bool:
    return server.terminate_and_wait() == 0
