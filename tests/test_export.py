"""Tests for the downstream export formats."""

import pytest

from repro.analysis import (
    reciprocal_throughputs,
    to_llvm_sched_model,
    to_osaca_table,
)


class TestReciprocalThroughputs:
    def test_paper_example(self, paper_three_level):
        throughputs = reciprocal_throughputs(paper_three_level)
        # mul: 2 µops on the single port P1 -> 2.0 cycles.
        assert throughputs["mul"] == pytest.approx(2.0)
        # add: 1 µop on two ports -> 0.5 cycles.
        assert throughputs["add"] == pytest.approx(0.5)
        # store: 1 µop on {P1,P2} and 1 on {P3} -> bottleneck is 1.0? The
        # {P3} µop alone costs 1.0; the shared µop spreads. max = 1.0.
        assert throughputs["store"] == pytest.approx(1.0)


class TestLLVMExport:
    def test_contains_all_parts(self, paper_three_level):
        text = to_llvm_sched_model(paper_three_level, model_name="TestModel")
        assert "def TestModel : SchedMachineModel;" in text
        for port in ("P1", "P2", "P3"):
            assert f"TestModelPort{port} : ProcResource<1>" in text
        # The two-port µop {P1,P2} needs a ProcResGroup.
        assert "ProcResGroup" in text
        for name in ("mul", "add", "sub", "store"):
            assert f"Write{name}" in text

    def test_multiplicities_become_release_cycles(self, paper_three_level):
        text = to_llvm_sched_model(paper_three_level)
        # mul has one µop kind with multiplicity 2.
        mul_block = text.split("Writemul")[1].split("}")[0]
        assert "ReleaseAtCycles = [2]" in mul_block
        assert "NumMicroOps = 2" in mul_block

    def test_single_port_uops_use_port_resource_directly(self, paper_three_level):
        text = to_llvm_sched_model(paper_three_level, model_name="M")
        mul_block = text.split("Writemul")[1].split("}")[0]
        assert "MPortP1" in mul_block


class TestOsacaExport:
    def test_csv_shape(self, paper_three_level):
        text = to_osaca_table(paper_three_level)
        lines = text.strip().splitlines()
        assert lines[0] == "instruction,P1,P2,P3,cycles"
        assert len(lines) == 1 + 4  # header + four instructions

    def test_pressure_sums_to_uop_count(self, paper_three_level):
        text = to_osaca_table(paper_three_level)
        for line in text.strip().splitlines()[1:]:
            parts = line.split(",")
            name = parts[0]
            pressure = sum(float(x) for x in parts[1:-1])
            expected = sum(paper_three_level.uops_of(name).values())
            assert pressure == pytest.approx(expected, abs=1e-6)

    def test_store_splits_pressure(self, paper_three_level):
        text = to_osaca_table(paper_three_level)
        store_line = next(
            line for line in text.splitlines() if line.startswith("store,")
        )
        _, p1, p2, p3, cycles = store_line.split(",")
        assert float(p1) == pytest.approx(0.5)
        assert float(p2) == pytest.approx(0.5)
        assert float(p3) == pytest.approx(1.0)
        assert float(cycles) == pytest.approx(1.0)
