"""Tests for the packed population representation and its fused kernel.

Three invariants, each load-bearing for the evolutionary search:

* **Lossless packing.**  ``Genome -> PackedPopulation -> Genome`` is the
  identity, *including every dict's insertion order* — the recombination RNG
  stream observes µop iteration order, so a lossy round trip would silently
  change evolution trajectories after a checkpoint/migration hop.
* **Kernel equivalence.**  The population-wide packed kernel must agree
  with the legacy dict-genome path (``uop_matrix`` +
  ``throughputs_from_matrices``) — exactly for the numpy engine (the
  fast-tier smoke gate below runs on every push), and within 1e-9 under the
  hypothesis property test.
* **Compact serialization.**  The base64-npz payload round-trips exactly,
  fails loudly on malformed input, and is what
  :class:`~repro.pmevo.evolution.EvolutionState` now embeds — with the
  legacy list-shaped payload still accepted for old checkpoints.
"""

from __future__ import annotations

import base64
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CheckpointError, Experiment, MappingError, PortSpace
from repro.pmevo import PackedPopulation, genome_volume, random_genome
from repro.pmevo.evolution import EvolutionConfig, PortMappingEvolver
from repro.pmevo.testing import measurements_from_truth
from repro.throughput import HAVE_NUMBA, BatchedThroughputEvaluator


def _random_setup(seed: int, population: int = 8):
    rng = np.random.default_rng(seed)
    num_ports = int(rng.integers(2, 6))
    names = tuple(f"op{i}" for i in range(int(rng.integers(2, 7))))
    singles = {name: float(rng.uniform(0.5, 3.0)) for name in names}
    genomes = [random_genome(rng, names, num_ports, singles) for _ in range(population)]
    experiments = []
    for _ in range(6):
        size = min(int(rng.integers(1, 4)), len(names))
        support = rng.choice(len(names), size=size, replace=False)
        experiments.append(
            Experiment({names[int(i)]: int(rng.integers(1, 5)) for i in support})
        )
    return num_ports, names, genomes, experiments


class TestRoundTrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_genomes_survive_exactly_including_order(self, seed):
        _, names, genomes, _ = _random_setup(seed)
        packed = PackedPopulation.from_genomes(genomes, names)
        back = packed.to_genomes()
        assert back == genomes
        # Dict equality ignores order; the RNG stream does not.  Compare the
        # full nested iteration orders explicitly.
        assert [list(g) for g in back] == [list(g) for g in genomes]
        assert [[list(u.items()) for u in g.values()] for g in back] == [
            [list(u.items()) for u in g.values()] for g in genomes
        ]

    def test_names_default_to_first_genome(self):
        genomes = [{"a": {1: 1}, "b": {2: 3}}, {"a": {3: 2}, "b": {1: 1, 2: 1}}]
        packed = PackedPopulation.from_genomes(genomes)
        assert packed.names == ("a", "b")
        assert packed.to_genomes() == genomes

    def test_volumes_match_scalar_definition(self):
        _, names, genomes, _ = _random_setup(3, population=16)
        packed = PackedPopulation.from_genomes(genomes, names)
        assert packed.volumes().tolist() == [genome_volume(g) for g in genomes]

    def test_empty_population_rejected(self):
        with pytest.raises(MappingError):
            PackedPopulation.from_genomes([])

    def test_mismatched_instructions_rejected(self):
        with pytest.raises(MappingError):
            PackedPopulation.from_genomes([{"a": {1: 1}}, {"b": {1: 1}}])

    def test_reordered_instructions_rejected(self):
        # Same key set but different insertion order: packing would lose the
        # order, so it must refuse rather than silently canonicalize.
        first = {"a": {1: 1}, "b": {2: 1}}
        second = {"b": {2: 1}, "a": {1: 1}}
        with pytest.raises(MappingError):
            PackedPopulation.from_genomes([first, second])

    def test_instruction_without_uops_rejected(self):
        with pytest.raises(MappingError):
            PackedPopulation.from_genomes([{"a": {}}])

    def test_nonpositive_masks_and_multiplicities_rejected(self):
        with pytest.raises(MappingError):
            PackedPopulation.from_genomes([{"a": {0: 1}}])
        with pytest.raises(MappingError):
            PackedPopulation.from_genomes([{"a": {1: 0}}])

    def test_wide_multiplicities_widen_the_dtype(self):
        packed = PackedPopulation.from_genomes([{"a": {1: 1000}}])
        assert packed.mults.dtype == np.uint16
        assert packed.to_genomes() == [{"a": {1: 1000}}]


class TestKernelEquivalence:
    def test_smoke_packed_equals_legacy_exactly(self):
        """The push-tier equivalence gate: packed == dict path, bit for bit."""
        truth = {"ad": {0b011: 1}, "mu": {0b100: 2}, "st": {0b011: 1, 0b100: 1}}
        names = ("ad", "mu", "st")
        measured, singles = measurements_from_truth(truth, names, 3)
        evaluator = BatchedThroughputEvaluator(measured, names, 3)
        rng = np.random.default_rng(0)
        genomes = [random_genome(rng, names, 3, singles) for _ in range(12)]

        legacy = evaluator.throughputs_from_matrices(
            np.stack([evaluator.uop_matrix(g) for g in genomes])
        )
        packed = PackedPopulation.from_genomes(genomes, names)
        fused = evaluator.throughputs_from_packed(packed, engine="numpy")
        assert np.array_equal(fused, legacy)
        assert np.array_equal(
            evaluator.davg_from_throughputs(fused),
            evaluator.davg_from_throughputs(legacy),
        )

    @pytest.mark.parametrize("capacity", [1, 3, 64])
    def test_chunked_workspace_reuse_is_exact(self, capacity):
        num_ports, names, genomes, experiments = _random_setup(11, population=10)
        evaluator = BatchedThroughputEvaluator(experiments, names, num_ports)
        packed = PackedPopulation.from_genomes(genomes, names)
        reference = evaluator.throughputs_from_packed(packed, engine="numpy")
        workspace = evaluator.packed_workspace(capacity)
        for _ in range(2):  # reuse must not leak state between calls
            again = evaluator.throughputs_from_packed(
                packed, workspace=workspace, engine="numpy"
            )
            assert np.array_equal(again, reference)

    def test_packed_names_must_match_evaluator(self):
        num_ports, names, genomes, experiments = _random_setup(5)
        evaluator = BatchedThroughputEvaluator(experiments, names, num_ports)
        packed = PackedPopulation.from_genomes(genomes, names)
        renamed = PackedPopulation(
            tuple(f"x{i}" for i in range(len(names))), packed.masks, packed.mults
        )
        with pytest.raises(MappingError):
            evaluator.throughputs_from_packed(renamed)

    def test_out_of_range_masks_rejected(self):
        genomes = [{"a": {0b1000: 1}}]
        evaluator = BatchedThroughputEvaluator([Experiment({"a": 1})], ("a",), 3)
        packed = PackedPopulation.from_genomes(genomes)
        with pytest.raises(MappingError):
            evaluator.throughputs_from_packed(packed)

    def test_unknown_engine_rejected(self):
        num_ports, names, genomes, experiments = _random_setup(7)
        evaluator = BatchedThroughputEvaluator(experiments, names, num_ports)
        packed = PackedPopulation.from_genomes(genomes, names)
        with pytest.raises(MappingError):
            evaluator.throughputs_from_packed(packed, engine="cuda")

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed")
    def test_numba_engine_unavailable_raises(self):
        num_ports, names, genomes, experiments = _random_setup(9)
        evaluator = BatchedThroughputEvaluator(experiments, names, num_ports)
        packed = PackedPopulation.from_genomes(genomes, names)
        with pytest.raises(MappingError):
            evaluator.throughputs_from_packed(packed, engine="numba")

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_numba_engine_matches_numpy(self):
        num_ports, names, genomes, experiments = _random_setup(13, population=20)
        evaluator = BatchedThroughputEvaluator(experiments, names, num_ports)
        packed = PackedPopulation.from_genomes(genomes, names)
        reference = evaluator.throughputs_from_packed(packed, engine="numpy")
        jitted = evaluator.throughputs_from_packed(packed, engine="numba")
        assert jitted == pytest.approx(reference, abs=1e-9)


@st.composite
def packed_instances(draw):
    num_ports = draw(st.integers(min_value=2, max_value=5))
    full = (1 << num_ports) - 1
    names = ["i0", "i1", "i2"]
    genomes = []
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        genome = {}
        for name in names:
            genome[name] = draw(
                st.dictionaries(
                    st.integers(min_value=1, max_value=full),
                    st.integers(min_value=1, max_value=4),
                    min_size=1,
                    max_size=3,
                )
            )
        genomes.append(genome)
    experiments = draw(
        st.lists(
            st.dictionaries(
                st.sampled_from(names),
                st.integers(min_value=1, max_value=4),
                min_size=1,
                max_size=3,
            ),
            min_size=1,
            max_size=4,
        )
    )
    return num_ports, names, genomes, [Experiment(e) for e in experiments]


class TestPropertyAgainstLegacyPath:
    @given(packed_instances())
    @settings(max_examples=60, deadline=None)
    def test_packed_kernel_pins_to_dict_path(self, setup):
        """The ISSUE's 1e-9 pin of the packed kernel against the legacy
        ``uop_matrix`` + ``throughputs_from_matrix`` path."""
        num_ports, names, genomes, experiments = setup
        evaluator = BatchedThroughputEvaluator(experiments, names, num_ports)
        packed = PackedPopulation.from_genomes(genomes, names)
        fused = evaluator.throughputs_from_packed(packed)
        for row, genome in zip(fused, genomes):
            single = evaluator.throughputs_from_matrix(evaluator.uop_matrix(genome))
            assert row == pytest.approx(single, abs=1e-9)
        assert packed.to_genomes() == genomes


class TestSerialization:
    def test_npz_round_trip_is_exact(self):
        _, names, genomes, _ = _random_setup(21, population=12)
        packed = PackedPopulation.from_genomes(genomes, names)
        again = PackedPopulation.from_npz_base64(packed.to_npz_base64())
        assert again.names == packed.names
        assert np.array_equal(again.masks, packed.masks)
        assert np.array_equal(again.mults, packed.mults)
        assert again.masks.dtype == packed.masks.dtype
        assert again.mults.dtype == packed.mults.dtype
        assert again.to_genomes() == genomes

    def test_payload_is_json_safe_and_compact(self):
        _, names, genomes, _ = _random_setup(22, population=32)
        packed = PackedPopulation.from_genomes(genomes, names)
        payload = packed.to_npz_base64()
        assert json.loads(json.dumps(payload)) == payload
        from repro.pmevo.population import genome_to_jsonable

        legacy = json.dumps([genome_to_jsonable(g) for g in genomes])
        assert len(payload) < len(legacy)

    @pytest.mark.parametrize(
        "text",
        [
            "not@base64!",
            base64.b64encode(b"not an npz archive").decode("ascii"),
            "",
        ],
    )
    def test_malformed_payloads_raise_checkpoint_error(self, text):
        with pytest.raises(CheckpointError):
            PackedPopulation.from_npz_base64(text)

    def test_missing_arrays_raise_checkpoint_error(self):
        import io

        buffer = io.BytesIO()
        np.savez_compressed(buffer, masks=np.zeros((1, 1, 1), dtype=np.uint32))
        text = base64.b64encode(buffer.getvalue()).decode("ascii")
        with pytest.raises(CheckpointError):
            PackedPopulation.from_npz_base64(text)


def _toy_evolver(**overrides):
    truth = {"ad": {0b011: 1}, "mu": {0b100: 2}, "st": {0b011: 1, 0b100: 1}}
    names = ("ad", "mu", "st")
    measured, singles = measurements_from_truth(truth, names, 3)
    settings = {"population_size": 12, "max_generations": 6, "seed": 5}
    settings.update(overrides)
    config = EvolutionConfig(**settings)
    return PortMappingEvolver(PortSpace.numbered(3), measured, singles, config)


class TestStatePayloads:
    def test_state_round_trip_is_bit_identical(self):
        evolver = _toy_evolver()
        state = evolver.advance(evolver.init_state(), 3)
        clone = type(state).from_json(state.to_json())
        # Continue both: identical trajectories prove the packed payload
        # reproduced the population *and* its dict orders exactly.
        evolver.advance(state, 3)
        evolver.advance(clone, 3)
        assert state.to_json() == clone.to_json()

    def test_state_payload_uses_packed_encoding_and_shrinks(self):
        # The npz container has a fixed ~1 kB floor, so the size win shows
        # from realistic (non-toy) population sizes upward.
        evolver = _toy_evolver(population_size=64)
        state = evolver.init_state()
        payload = state.to_jsonable()
        assert payload["population"]["encoding"] == "packed-npz-b64"
        from repro.pmevo.population import genome_to_jsonable

        legacy_payload = dict(payload)
        legacy_payload["population"] = [
            genome_to_jsonable(g) for g in state.population
        ]
        assert len(json.dumps(payload)) < len(json.dumps(legacy_payload))

    def test_legacy_list_population_still_deserializes(self):
        evolver = _toy_evolver()
        state = evolver.init_state()
        from repro.pmevo.population import genome_to_jsonable

        legacy_payload = state.to_jsonable()
        legacy_payload["population"] = [
            genome_to_jsonable(g) for g in state.population
        ]
        restored = type(state).from_jsonable(legacy_payload)
        assert restored.population == state.population
        assert restored.to_json() == state.to_json()

    def test_unknown_population_encoding_rejected(self):
        evolver = _toy_evolver()
        payload = evolver.init_state().to_jsonable()
        payload["population"] = {"encoding": "pickle", "data": ""}
        with pytest.raises(CheckpointError):
            type(evolver.init_state()).from_jsonable(payload)

    def test_corrupt_packed_payload_rejected(self):
        evolver = _toy_evolver()
        payload = evolver.init_state().to_jsonable()
        payload["population"] = {"encoding": "packed-npz-b64", "data": "garbage!"}
        with pytest.raises(CheckpointError):
            type(evolver.init_state()).from_jsonable(payload)
