"""Tests for the empirical measurement-length calibration (Section 4.2)."""

import pytest

from repro.core import Experiment, MeasurementError
from repro.machine import MeasurementConfig, toy_machine


class TestCalibration:
    def test_returns_machine_with_stable_length(self):
        machine = toy_machine(
            num_ports=3,
            measurement=MeasurementConfig(measure_iterations=2, noisy=False),
        )
        calibrated = machine.calibrate(stability=0.02)
        assert calibrated.measurement.measure_iterations >= 2
        # The calibrated machine measures consistently with a longer run.
        probe = Experiment({machine.isa.names[0]: 1})
        long = toy_machine(
            num_ports=3,
            measurement=MeasurementConfig(measure_iterations=40, noisy=False),
        )
        assert calibrated.measure(probe) == pytest.approx(
            long.measure(probe), rel=0.03
        )

    def test_preserves_noise_settings(self):
        machine = toy_machine(
            num_ports=3,
            measurement=MeasurementConfig(
                measure_iterations=4, noisy=True, jitter_sigma=0.01, seed=5
            ),
        )
        calibrated = machine.calibrate()
        assert calibrated.measurement.noisy
        assert calibrated.measurement.jitter_sigma == pytest.approx(0.01)
        assert calibrated.measurement.seed == 5

    def test_invalid_stability_rejected(self):
        machine = toy_machine(num_ports=3)
        with pytest.raises(MeasurementError):
            machine.calibrate(stability=0.0)
        with pytest.raises(MeasurementError):
            machine.calibrate(stability=1.5)

    def test_budget_exhaustion_raises(self):
        # max_iterations below the first doubling: no stable pair can be
        # confirmed within budget, so calibration must refuse.
        machine = toy_machine(
            num_ports=3, measurement=MeasurementConfig(measure_iterations=8)
        )
        with pytest.raises(MeasurementError):
            machine.calibrate(max_iterations=8)

    def test_custom_probe(self):
        machine = toy_machine(
            num_ports=3, measurement=MeasurementConfig(measure_iterations=4)
        )
        names = machine.isa.names
        probe = Experiment({names[0]: 1, names[3]: 2})
        calibrated = machine.calibrate(probe=probe)
        assert calibrated is not machine
