"""Tests for the cycle-level out-of-order processor simulator."""

import pytest

from repro.codegen import build_loop_body
from repro.core import Experiment, MeasurementError
from repro.core.isa import ISA, gpr, make_form
from repro.core.ports import PortSpace
from repro.machine import (
    BackendConfig,
    ExecutionClass,
    FrontendConfig,
    MachineConfig,
    Processor,
    UopSpec,
)


def _tiny_machine(
    latency: int = 1,
    ports: tuple[str, ...] = ("P0", "P1"),
    uop_ports: tuple[str, ...] = ("P0", "P1"),
    block: int = 1,
    window: int = 40,
    dispatch: int = 4,
) -> MachineConfig:
    isa = ISA(
        "tiny",
        [make_form("op", [gpr(64, read=True, write=True), gpr(64)], "cls", name="op")],
    )
    return MachineConfig(
        name="TINY",
        ports=PortSpace(list(ports)),
        isa=isa,
        classes={"cls": ExecutionClass("cls", (UopSpec(uop_ports, 1, block),), latency)},
        frontend=FrontendConfig(dispatch_width=dispatch, decode_width=dispatch, uop_cache_size=512),
        backend=BackendConfig(scheduler_window=window, rob_size=128, retire_width=4),
        clock_ghz=1.0,
    )


def _run_throughput(config: MachineConfig, count: int = 120) -> float:
    processor = Processor(config)
    body, _ = build_loop_body(config.isa, Experiment({"op": 1}), target_length=40)
    short = processor.run(body, iterations=4)
    long = processor.run(body, iterations=12)
    return (long.cycles - short.cycles) / (8 * len(body))


class TestThroughputLimits:
    def test_two_symmetric_ports(self):
        # One µop on two ports, no dependencies: 0.5 cycles/instruction.
        assert _run_throughput(_tiny_machine()) == pytest.approx(0.5, rel=0.05)

    def test_single_port(self):
        config = _tiny_machine(uop_ports=("P0",))
        assert _run_throughput(config) == pytest.approx(1.0, rel=0.05)

    def test_blocking_uop(self):
        # A µop that blocks its only port for 3 cycles: 3 cycles/instruction.
        config = _tiny_machine(uop_ports=("P0",), block=3, latency=5)
        assert _run_throughput(config) == pytest.approx(3.0, rel=0.05)

    def test_frontend_bound(self):
        # 8 ports but dispatch width 2: throughput limited to 0.5.
        config = _tiny_machine(
            ports=tuple(f"P{i}" for i in range(8)),
            uop_ports=tuple(f"P{i}" for i in range(8)),
            dispatch=2,
        )
        assert _run_throughput(config) == pytest.approx(0.5, rel=0.06)

    def test_latency_hidden_by_renaming(self):
        # Latency must NOT matter for dependency-free streams as long as
        # the register file is deep enough to hide it: at 0.5 cyc/instr the
        # 14-register rotation gives ~6.5 cycles of reuse distance.
        fast = _run_throughput(_tiny_machine(latency=1))
        slow = _run_throughput(_tiny_machine(latency=5))
        assert slow == pytest.approx(fast, rel=0.1)

    def test_latency_beyond_register_file_depth_leaks_through(self):
        # Sanity check of the limit: latency 12 cannot be hidden by a
        # 14-register rotation at 0.5 cyc/instr, so throughput degrades.
        slow = _run_throughput(_tiny_machine(latency=12))
        assert slow > 0.6


class TestDependencyChains:
    def test_chain_bound_by_latency(self):
        """With a two-register file the allocator pins the source to one
        register and the destination to the other, so every op reads the
        previous op's write: a single latency-bound chain."""
        from repro.codegen import AllocationConfig, RegisterAllocator

        config = _tiny_machine(latency=4)
        processor = Processor(config)
        allocator = RegisterAllocator(AllocationConfig(num_gprs=2))
        body = allocator.allocate_sequence([config.isa["op"]] * 40)
        assert all(instance.render() == "op r1, r0" for instance in body)
        short = processor.run(body, iterations=2)
        long = processor.run(body, iterations=6)
        per_op = (long.cycles - short.cycles) / (4 * len(body))
        assert per_op == pytest.approx(4.0, rel=0.1)


class TestSimulatorEdgeCases:
    def test_empty_body_rejected(self):
        processor = Processor(_tiny_machine())
        with pytest.raises(MeasurementError):
            processor.run([], iterations=1)

    def test_nonpositive_iterations_rejected(self):
        config = _tiny_machine()
        processor = Processor(config)
        body, _ = build_loop_body(config.isa, Experiment({"op": 1}), target_length=4)
        with pytest.raises(MeasurementError):
            processor.run(body, iterations=0)

    def test_max_cycles_guard(self):
        config = _tiny_machine()
        processor = Processor(config)
        body, _ = build_loop_body(config.isa, Experiment({"op": 1}), target_length=40)
        with pytest.raises(MeasurementError):
            processor.run(body, iterations=100, max_cycles=10)

    def test_result_counters(self):
        config = _tiny_machine()
        processor = Processor(config)
        body, _ = build_loop_body(config.isa, Experiment({"op": 1}), target_length=10)
        result = processor.run(body, iterations=3)
        assert result.instructions == 30
        assert result.uops == 30  # one µop per instruction
        assert result.cycles > 0
        assert result.ipc == pytest.approx(30 / result.cycles)

    def test_window_one_still_progresses(self):
        config = _tiny_machine(window=1, dispatch=1)
        assert _run_throughput(config) >= 0.9  # serialized but finishes
