"""Tests for the table formatter."""

import pytest

from repro.analysis import format_kv_rows, format_table
from repro.core import ReproError


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-+-" in lines[1]
        assert lines[2].startswith("a")
        assert lines[3].startswith("bb")

    def test_title(self):
        text = format_table(["x"], [[1]], title="Table 9")
        assert text.splitlines()[0] == "Table 9"

    def test_row_width_checked(self):
        with pytest.raises(ReproError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ReproError):
            format_table([], [])


class TestFormatKvRows:
    def test_machine_columns(self):
        text = format_kv_rows(
            {
                "SKL": {"ports": 9, "MAPE": "9%"},
                "ZEN": {"ports": 10},
            }
        )
        lines = text.splitlines()
        assert "SKL" in lines[0] and "ZEN" in lines[0]
        assert any("ports" in line and "9" in line and "10" in line for line in lines)
        assert any("MAPE" in line and "-" in line for line in lines)  # missing cell

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            format_kv_rows({})
