"""Tests for the baseline predictors (Section 5.3 comparisons)."""

import numpy as np
import pytest

from repro.baselines import (
    IACAPredictor,
    IthemalPredictor,
    LLVMMCAPredictor,
    TrainingConfig,
    UopsInfoPredictor,
    mca_scheduling_model,
)
from repro.core import Experiment, ExperimentSet, ISAError
from repro.machine import MeasurementConfig, a72_machine, skl_machine, zen_machine
from repro.pmevo import random_experiments


@pytest.fixture(scope="module")
def skl():
    return skl_machine(measurement=MeasurementConfig(noisy=False))


@pytest.fixture(scope="module")
def zen():
    return zen_machine(measurement=MeasurementConfig(noisy=False))


@pytest.fixture(scope="module")
def skl_bench(skl):
    names = [n for i, n in enumerate(skl.isa.names) if i % 11 == 0][:18]
    experiments = random_experiments(names, size=4, count=40, seed=8)
    bench = ExperimentSet()
    for experiment in experiments:
        bench.add(experiment, skl.measure(experiment))
    return bench


class TestUopsInfo:
    def test_supported_platforms(self, skl, zen):
        assert UopsInfoPredictor(skl).name == "uops.info"
        with pytest.raises(ISAError):
            UopsInfoPredictor(zen)
        assert UopsInfoPredictor(zen, enforce_support=False) is not None

    def test_predicts_simple_singleton(self, skl):
        predictor = UopsInfoPredictor(skl)
        add = next(f.name for f in skl.isa if f.semantic_class == "int_alu")
        assert predictor.predict(Experiment({add: 1})) == pytest.approx(0.25)

    def test_close_to_measurement_on_random_mixes(self, skl, skl_bench):
        predictor = UopsInfoPredictor(skl)
        errors = [
            abs(predictor.predict(item.experiment) - item.throughput) / item.throughput
            for item in skl_bench
        ]
        assert float(np.mean(errors)) < 0.15


class TestIACA:
    def test_supported_platforms(self, skl, zen):
        assert IACAPredictor(skl).name == "IACA"
        with pytest.raises(ISAError):
            IACAPredictor(zen)

    def test_close_to_measurement(self, skl, skl_bench):
        predictor = IACAPredictor(skl)
        errors = [
            abs(predictor.predict(item.experiment) - item.throughput) / item.throughput
            for item in skl_bench
        ]
        assert float(np.mean(errors)) < 0.12

    def test_misses_hidden_quirk(self, skl):
        """IACA does not know the BTx erratum, like every published model."""
        predictor = IACAPredictor(skl)
        bt = next(f.name for f in skl.isa if f.semantic_class == "bt")
        e = Experiment({bt: 1})
        assert predictor.predict(e) < skl.measure(e)


class TestLLVMMCA:
    def test_model_exists_for_all_presets(self, skl, zen):
        for machine in (skl, zen, a72_machine(measurement=MeasurementConfig(noisy=False))):
            mapping = mca_scheduling_model(machine)
            assert set(mapping.instructions) == set(machine.isa.names)

    def test_overestimates_on_zen(self, zen):
        """Table 4's signature: the untuned model inflates cycle counts."""
        predictor = LLVMMCAPredictor(zen)
        names = [n for i, n in enumerate(zen.isa.names) if i % 13 == 0][:12]
        experiments = random_experiments(names, size=4, count=30, seed=5)
        predicted = np.array([predictor.predict(e) for e in experiments])
        measured = np.array([zen.measure(e) for e in experiments])
        assert np.mean(predicted >= measured * 0.99) > 0.6
        assert float(np.mean(np.abs(predicted - measured) / measured)) > 0.25

    def test_reasonable_on_skl(self, skl, skl_bench):
        predictor = LLVMMCAPredictor(skl)
        errors = [
            abs(predictor.predict(item.experiment) - item.throughput) / item.throughput
            for item in skl_bench
        ]
        assert float(np.mean(errors)) < 0.2

    def test_unknown_machine_rejected(self, skl):
        from repro.machine import toy_machine

        with pytest.raises(ISAError):
            mca_scheduling_model(toy_machine())


class TestIthemal:
    @pytest.fixture(scope="class")
    def predictor(self, skl):
        return IthemalPredictor(skl, TrainingConfig(num_blocks=60, seed=1))

    def test_training_config_validation(self):
        with pytest.raises(Exception):
            TrainingConfig(num_blocks=1)
        with pytest.raises(Exception):
            TrainingConfig(min_length=5, max_length=2)
        with pytest.raises(Exception):
            TrainingConfig(register_pool=1)

    def test_positive_predictions(self, predictor, skl):
        add = next(f.name for f in skl.isa if f.semantic_class == "int_alu")
        assert predictor.predict(Experiment({add: 3})) > 0

    def test_overestimates_dependency_free_code(self, predictor, skl, skl_bench):
        """Trained on dependent blocks, it inflates port-bound throughput."""
        predicted = np.array([predictor.predict(i.experiment) for i in skl_bench])
        measured = np.array([i.throughput for i in skl_bench])
        mape = float(np.mean(np.abs(predicted - measured) / measured))
        over_fraction = float(np.mean(predicted > measured))
        assert mape > 0.25  # far worse than the mapping-based predictors
        assert over_fraction > 0.5

    def test_unknown_instruction_rejected(self, predictor):
        from repro.core import InferenceError

        with pytest.raises(InferenceError):
            predictor.predict(Experiment({"ghost": 1}))
