"""Tests for the batched throughput evaluator (the EA's fitness engine)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Experiment,
    ExperimentError,
    ExperimentSet,
    MappingError,
    PortSpace,
    ThreeLevelMapping,
)
from repro.throughput import BatchedThroughputEvaluator, MappingPredictor


@pytest.fixture
def simple_setup(paper_three_level):
    experiments = ExperimentSet()
    experiments.add(Experiment({"add": 2, "mul": 1, "store": 1}), 2.5)
    experiments.add(Experiment({"add": 1}), 0.5)
    experiments.add(Experiment({"mul": 1, "store": 1}), 2.0)
    names = ("add", "mul", "store", "sub")
    evaluator = BatchedThroughputEvaluator(experiments, names, 3)
    return evaluator, paper_three_level


class TestConstruction:
    def test_duplicate_names_rejected(self):
        experiments = ExperimentSet()
        experiments.add(Experiment({"a": 1}), 1.0)
        with pytest.raises(MappingError):
            BatchedThroughputEvaluator(experiments, ("a", "a"), 2)

    def test_unknown_instruction_rejected(self):
        experiments = ExperimentSet()
        experiments.add(Experiment({"ghost": 1}), 1.0)
        with pytest.raises(ExperimentError):
            BatchedThroughputEvaluator(experiments, ("a",), 2)

    def test_empty_experiments_rejected(self):
        with pytest.raises(ExperimentError):
            BatchedThroughputEvaluator(ExperimentSet(), ("a",), 2)

    def test_plain_experiment_list_has_no_measurements(self):
        evaluator = BatchedThroughputEvaluator([Experiment({"a": 1})], ("a",), 2)
        with pytest.raises(ExperimentError):
            evaluator.davg({"a": {0b1: 1}})


class TestAgainstScalarModel:
    def test_matches_mapping_predictor(self, simple_setup):
        evaluator, mapping = simple_setup
        predictor = MappingPredictor(mapping)
        batched = evaluator.throughputs(mapping)
        scalar = [predictor.predict(e) for e in evaluator.experiments]
        assert batched == pytest.approx(scalar)

    def test_davg_definition(self, simple_setup):
        evaluator, mapping = simple_setup
        predicted = evaluator.throughputs(mapping)
        expected = np.mean(
            np.abs(predicted - np.array(evaluator.measured)) / evaluator.measured
        )
        assert evaluator.davg(mapping) == pytest.approx(float(expected))

    def test_stacked_matches_single(self, simple_setup):
        evaluator, mapping = simple_setup
        genome = {name: uops for name, uops in mapping.items()}
        matrix = evaluator.uop_matrix(genome)
        stacked = evaluator.throughputs_from_matrices(np.stack([matrix, matrix]))
        single = evaluator.throughputs_from_matrix(matrix.copy())
        assert stacked.shape == (2, evaluator.num_experiments)
        assert stacked[0] == pytest.approx(single)
        assert stacked[1] == pytest.approx(single)

    def test_missing_uops_rejected(self, simple_setup):
        evaluator, _ = simple_setup
        with pytest.raises(MappingError):
            evaluator.throughputs({"add": {0b1: 1}})  # mul/store uncovered

    def test_invalid_mask_rejected(self, simple_setup):
        evaluator, _ = simple_setup
        genome = {"add": {0b1000: 1}, "mul": {1: 1}, "store": {1: 1}}
        with pytest.raises(MappingError):
            evaluator.uop_matrix(genome)

    def test_extra_instructions_in_genome_ignored(self, simple_setup):
        evaluator, mapping = simple_setup
        genome = {name: uops for name, uops in mapping.items()}
        genome["unrelated"] = {0b1: 1}
        assert evaluator.throughputs(genome) is not None


@st.composite
def genome_and_experiments(draw):
    num_ports = draw(st.integers(min_value=2, max_value=5))
    full = (1 << num_ports) - 1
    names = ["i0", "i1", "i2"]
    genome = {}
    for name in names:
        uops = draw(
            st.dictionaries(
                st.integers(min_value=1, max_value=full),
                st.integers(min_value=1, max_value=3),
                min_size=1,
                max_size=3,
            )
        )
        genome[name] = uops
    experiments = draw(
        st.lists(
            st.dictionaries(
                st.sampled_from(names),
                st.integers(min_value=1, max_value=4),
                min_size=1,
                max_size=3,
            ),
            min_size=1,
            max_size=5,
        )
    )
    return num_ports, names, genome, [Experiment(e) for e in experiments]


class TestPropertyAgainstScalar:
    @given(genome_and_experiments())
    @settings(max_examples=60, deadline=None)
    def test_batched_equals_scalar_bottleneck(self, setup):
        num_ports, names, genome, experiments = setup
        evaluator = BatchedThroughputEvaluator(experiments, names, num_ports)
        mapping = ThreeLevelMapping(PortSpace.numbered(num_ports), genome)
        predictor = MappingPredictor(mapping)
        batched = evaluator.throughputs(genome)
        scalar = [predictor.predict(e) for e in experiments]
        assert batched == pytest.approx(scalar)
