"""Tests for experiment generation (Section 4.1)."""

import math

import pytest

from repro.core import Experiment, ExperimentError
from repro.pmevo import (
    full_experiment_plan,
    pair_experiments,
    random_experiments,
    singleton_experiments,
)


class TestSingletons:
    def test_one_per_name(self):
        singles = singleton_experiments(["a", "b", "c"])
        assert singles == [Experiment({n: 1}) for n in ("a", "b", "c")]


class TestPairs:
    def test_plain_pairs_for_equal_throughputs(self):
        pairs = pair_experiments(["a", "b", "c"], {"a": 1.0, "b": 1.0, "c": 1.0})
        # No saturating pairs when all throughputs are equal: 3 choose 2.
        assert len(pairs) == 3
        assert Experiment({"a": 1, "b": 1}) in pairs

    def test_saturating_pair_multiplicity(self):
        # t*(a)=3, t*(b)=1 -> {a:1, b:3}.
        pairs = pair_experiments(["a", "b"], {"a": 3.0, "b": 1.0})
        assert Experiment({"a": 1, "b": 1}) in pairs
        assert Experiment({"a": 1, "b": 3}) in pairs
        assert len(pairs) == 2

    def test_saturating_pair_rounds_up(self):
        pairs = pair_experiments(["a", "b"], {"a": 2.5, "b": 1.0})
        assert Experiment({"a": 1, "b": math.ceil(2.5)}) in pairs

    def test_no_duplicate_when_ratio_is_one(self):
        pairs = pair_experiments(["a", "b"], {"a": 1.2, "b": 1.0})
        # ceil(1.2) = 2 -> saturating pair exists and differs from plain.
        assert len(pairs) == 2
        pairs = pair_experiments(["a", "b"], {"a": 1.0, "b": 1.0})
        assert len(pairs) == 1

    def test_orientation_follows_slower_instruction(self):
        pairs = pair_experiments(["fast", "slow"], {"fast": 0.5, "slow": 2.0})
        assert Experiment({"slow": 1, "fast": 4}) in pairs

    def test_missing_throughput_rejected(self):
        with pytest.raises(ExperimentError):
            pair_experiments(["a", "b"], {"a": 1.0})

    def test_plan_counts(self):
        names = ["a", "b", "c", "d"]
        throughputs = {"a": 1.0, "b": 2.0, "c": 1.0, "d": 4.0}
        plan = full_experiment_plan(names, throughputs)
        singles = [e for e in plan if len(e) == 1 and e.size == 1]
        assert len(singles) == 4
        # 6 plain pairs; saturating pairs for (b,a),(b,c),(d,a),(d,c),(d,b).
        assert len(plan) == 4 + 6 + 5


class TestRandomExperiments:
    def test_shape(self):
        exps = random_experiments(["a", "b", "c"], size=5, count=40, seed=1)
        assert len(exps) == 40
        assert all(e.size == 5 for e in exps)
        assert all(set(e.support) <= {"a", "b", "c"} for e in exps)

    def test_deterministic_by_seed(self):
        first = random_experiments(["a", "b"], size=3, count=10, seed=42)
        second = random_experiments(["a", "b"], size=3, count=10, seed=42)
        assert first == second
        third = random_experiments(["a", "b"], size=3, count=10, seed=43)
        assert first != third

    def test_validation(self):
        with pytest.raises(ExperimentError):
            random_experiments(["a"], size=0, count=1)
        with pytest.raises(ExperimentError):
            random_experiments(["a"], size=1, count=0)
        with pytest.raises(ExperimentError):
            random_experiments([], size=1, count=1)
