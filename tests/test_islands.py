"""Tests for the island-model parallel evolution subsystem."""

import numpy as np
import pytest

from repro.pmevo.testing import measurements_from_truth as _measurements_from_truth
from repro.core import InferenceError, PortSpace
from repro.pmevo import (
    EvolutionConfig,
    IslandEvolver,
    IslandResult,
    PortMappingEvolver,
    derive_island_rngs,
    migrate_ring,
)
from repro.pmevo.population import genome_key


def _island_evolver(config):
    truth = {"ad": {0b011: 1}, "mu": {0b100: 2}, "st": {0b011: 1, 0b100: 1}}
    names = ("ad", "mu", "st")
    measured, singles = _measurements_from_truth(truth, names, 3)
    return IslandEvolver(PortSpace.numbered(3), measured, singles, config)


class TestConfigKnobs:
    def test_defaults_are_single_population(self):
        config = EvolutionConfig()
        assert config.islands == 1
        assert config.workers == 1

    def test_bad_islands(self):
        with pytest.raises(InferenceError):
            EvolutionConfig(islands=0)

    def test_bad_workers(self):
        with pytest.raises(InferenceError):
            EvolutionConfig(workers=0)

    def test_bad_migration_interval(self):
        with pytest.raises(InferenceError):
            EvolutionConfig(migration_interval=0)

    def test_migration_size_must_fit_population(self):
        with pytest.raises(InferenceError):
            EvolutionConfig(population_size=10, migration_size=10, islands=2)

    def test_single_island_ignores_migration_bound(self):
        # The island knobs are inert at islands=1: a tiny population must
        # stay valid whatever the migration defaults are.
        assert EvolutionConfig(population_size=2).migration_size == 2

    def test_negative_migration_size_rejected(self):
        with pytest.raises(InferenceError):
            EvolutionConfig(migration_size=-1)


class TestSeedDerivation:
    def test_same_root_seed_same_streams(self):
        first = derive_island_rngs(42, 3)
        second = derive_island_rngs(42, 3)
        for a, b in zip(first, second):
            assert np.array_equal(a.integers(0, 1 << 30, 16), b.integers(0, 1 << 30, 16))

    def test_islands_get_distinct_streams(self):
        rngs = derive_island_rngs(42, 3)
        draws = [tuple(rng.integers(0, 1 << 30, 16)) for rng in rngs]
        assert len(set(draws)) == 3


class TestMigration:
    def _state(self, evolver, rng_seed):
        return evolver.evolver.init_state(np.random.default_rng(rng_seed))

    def test_ring_moves_elites_to_successor(self):
        config = EvolutionConfig(population_size=12, max_generations=5)
        evolver = _island_evolver(config)
        states = [self._state(evolver, k) for k in range(3)]
        elites = [
            genome_key(s.population[int(np.lexsort((s.volumes, s.davgs))[0])])
            for s in states
        ]
        moved = migrate_ring(states, migration_size=1)
        assert moved == 3
        for source in range(3):
            target = states[(source + 1) % 3]
            keys = {genome_key(g) for g in target.population}
            assert elites[source] in keys

    def test_migration_keeps_objectives_consistent(self):
        config = EvolutionConfig(population_size=10, max_generations=5)
        evolver = _island_evolver(config)
        states = [self._state(evolver, k) for k in range(2)]
        migrate_ring(states, migration_size=2)
        for state in states:
            davgs, _ = evolver.evolver._evaluate(state.population)
            assert np.allclose(davgs, state.davgs)

    def test_zero_migration_size_is_noop(self):
        config = EvolutionConfig(population_size=10, max_generations=5)
        evolver = _island_evolver(config)
        states = [self._state(evolver, k) for k in range(2)]
        before = [[genome_key(g) for g in s.population] for s in states]
        assert migrate_ring(states, migration_size=0) == 0
        after = [[genome_key(g) for g in s.population] for s in states]
        assert before == after


class TestDeterminism:
    @staticmethod
    def _run(workers):
        config = EvolutionConfig(
            population_size=24,
            max_generations=30,
            seed=11,
            islands=4,
            workers=workers,
            migration_interval=5,
            migration_size=2,
        )
        return _island_evolver(config).run()

    def test_worker_count_does_not_change_results(self):
        serial = self._run(workers=1)
        parallel = self._run(workers=4)
        assert genome_key(serial.genome) == genome_key(parallel.genome)
        assert serial.mapping == parallel.mapping
        assert serial.davg == parallel.davg
        assert serial.volume == parallel.volume
        assert serial.generations == parallel.generations
        assert serial.evaluations == parallel.evaluations
        assert serial.migrations == parallel.migrations
        assert serial.best_island == parallel.best_island
        assert serial.history == parallel.history
        assert serial.island_histories == parallel.island_histories
        assert serial.island_davgs == parallel.island_davgs

    def test_rerun_is_bit_identical(self):
        first = self._run(workers=2)
        second = self._run(workers=2)
        assert genome_key(first.genome) == genome_key(second.genome)
        assert first.history == second.history


class TestIslandRun:
    def test_result_metadata(self):
        config = EvolutionConfig(
            population_size=20,
            max_generations=20,
            seed=5,
            islands=3,
            migration_interval=4,
            migration_size=1,
        )
        result = _island_evolver(config).run()
        assert isinstance(result, IslandResult)
        assert result.islands == 3
        assert len(result.island_histories) == 3
        assert len(result.island_davgs) == 3
        assert result.epochs >= 1
        assert result.history == result.island_histories[result.best_island]
        assert result.evaluations == sum(
            history[-1].evaluations for history in result.island_histories
        )
        # The reported D_avg is the local-searched champion; it can only be
        # at least as good as the champion island's raw best.
        assert result.davg <= min(result.island_davgs) + 1e-12

    def test_single_island_matches_sequential_search_quality(self):
        # islands=1 never migrates and uses the sequential evolver's own
        # default_rng(seed) stream (see derive_island_rngs); it must still
        # find the planted truth.
        config = EvolutionConfig(
            population_size=60, max_generations=60, seed=0, islands=1
        )
        result = _island_evolver(config).run()
        assert result.migrations == 0
        assert result.davg <= 0.02

    def test_recovers_truth_with_parallel_islands(self):
        config = EvolutionConfig(
            population_size=40,
            max_generations=60,
            seed=1,
            islands=4,
            workers=2,
            migration_interval=5,
            migration_size=2,
        )
        result = _island_evolver(config).run()
        assert result.davg <= 0.02


class TestPipelineIntegration:
    def test_pipeline_switches_to_islands(self, quiet_toy_machine):
        from repro.pmevo import PMEvoConfig, infer_port_mapping

        config = PMEvoConfig(
            evolution=EvolutionConfig(
                population_size=30,
                max_generations=25,
                seed=0,
                islands=2,
                migration_interval=5,
                migration_size=1,
            )
        )
        result = infer_port_mapping(quiet_toy_machine, config=config)
        assert isinstance(result.evolution, IslandResult)
        assert result.evolution.islands == 2
        assert result.evolution.davg <= 0.1

    def test_cli_exposes_island_flags(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "mapping.json"
        code = main(
            [
                "infer",
                "SKL",
                "--output",
                str(output),
                "--forms",
                "8",
                "--population",
                "24",
                "--generations",
                "10",
                "--islands",
                "2",
                "--workers",
                "2",
                "--migration-interval",
                "3",
            ]
        )
        assert code == 0
        assert output.exists()
        assert "islands: 2 x 24 (workers: 2)" in capsys.readouterr().out


class TestSteppingPrimitives:
    def test_advance_respects_generation_budget(self):
        truth = {"a": {0b01: 1}, "b": {0b10: 1}}
        names = ("a", "b")
        measured, singles = _measurements_from_truth(truth, names, 2)
        evolver = PortMappingEvolver(
            PortSpace.numbered(2),
            measured,
            singles,
            EvolutionConfig(population_size=16, max_generations=50, seed=3),
        )
        state = evolver.init_state()
        evolver.advance(state, 4)
        assert state.generation <= 4
        resumed = evolver.advance(state, 4)
        assert resumed is state
        assert state.generation <= 8

    def test_run_equals_init_advance_finalize(self):
        truth = {"a": {0b01: 1}, "b": {0b10: 1}}
        names = ("a", "b")
        measured, singles = _measurements_from_truth(truth, names, 2)
        config = EvolutionConfig(population_size=20, max_generations=15, seed=9)
        ports = PortSpace.numbered(2)
        whole = PortMappingEvolver(ports, measured, singles, config).run()
        stepped_evolver = PortMappingEvolver(ports, measured, singles, config)
        state = stepped_evolver.init_state()
        while not state.stopped and state.generation < config.max_generations:
            stepped_evolver.advance(state, 3)
        stepped = stepped_evolver.finalize(state)
        assert whole.mapping == stepped.mapping
        assert whole.davg == stepped.davg
        assert whole.history == stepped.history
