"""Fault-injection tests: scripted crashes must never change the answer.

Two tiers share this file:

* **Fast, in-process** (no marker): :class:`repro.pmevo.FaultySocket` /
  :class:`repro.pmevo.FaultyTransport` inject frame corruption, connection
  drops, slow links, and scripted coordinator crashes without real
  processes or real sleeps beyond fractions of a second.
* **Subprocess drills** (``@pytest.mark.chaos``): ``tools/chaos.py`` runs a
  real CLI cluster and SIGKILLs the coordinator or a worker at a scripted
  epoch, then checks the recovered run byte-for-byte.

Every test's oracle is the same: the result must be *byte-identical* to an
uninterrupted serial run — recovery that changes the answer is not
recovery.
"""

from __future__ import annotations

import dataclasses
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.pmevo.testing import measurements_from_truth as _measurements_from_truth
from repro.core import InjectedFault, PortSpace
from repro.pmevo import (
    Checkpointer,
    EvolutionConfig,
    FaultySocket,
    FaultyTransport,
    IslandEvolver,
    SerialTransport,
    SocketTransport,
    load_checkpoint,
    previous_path,
    run_worker,
)
from repro.pmevo.transport import (
    PROTOCOL_VERSION,
    evolver_from_jsonable,
    recv_frame,
    send_frame,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

FAST_RECONNECT = dict(max_reconnect_attempts=4, reconnect_window=5.0, jitter_seed=1)

CONFIG = EvolutionConfig(
    population_size=16,
    max_generations=12,
    seed=7,
    islands=3,
    migration_interval=4,
    migration_size=1,
)


def _evolver(transport=None, config=CONFIG):
    truth = {"ad": {0b011: 1}, "mu": {0b100: 2}, "st": {0b011: 1, 0b100: 1}}
    names = ("ad", "mu", "st")
    measured, singles = _measurements_from_truth(truth, names, 3)
    return IslandEvolver(PortSpace.numbered(3), measured, singles, config, transport)


def _normalized(result) -> str:
    return dataclasses.replace(result, wall_seconds=0.0, workers=0).to_json()


@pytest.fixture(scope="module")
def serial_result():
    return _evolver(SerialTransport()).run()


def _once(factory):
    """Wrap only the worker's first connection; reconnects get clean sockets."""
    used = []

    def wrap(sock):
        if used:
            return sock
        used.append(True)
        return factory(sock)

    return wrap


class TestInjectedSocketFaults:
    """FaultySocket-injected failures on a live in-process cluster."""

    @pytest.mark.parametrize(
        "fault",
        [
            dict(drop_at=1),  # dies instead of delivering its first result
            dict(truncate_at=1),  # crashes mid-sendall: a torn frame
            dict(corrupt_at=1),  # delivers a full frame of garbage JSON
        ],
        ids=["drop", "truncate", "corrupt"],
    )
    def test_faulted_worker_run_is_identical(self, serial_result, fault):
        # Whatever the fault, the coordinator must drop the worker, requeue
        # its islands, accept the worker back after it reconnects with a
        # clean socket, and produce the exact serial bytes.
        transport = SocketTransport(min_workers=1, heartbeat_timeout=15.0)
        host, port = transport.listen()
        thread = threading.Thread(
            target=run_worker,
            args=(host, port),
            kwargs=dict(
                wrap_socket=_once(lambda s: FaultySocket(s, **fault)),
                **FAST_RECONNECT,
            ),
            daemon=True,
        )
        thread.start()
        result = _evolver(transport).run()
        thread.join(timeout=15)
        assert not thread.is_alive()
        assert result.transport_stats["workers_dropped"] >= 1
        assert _normalized(result) == _normalized(serial_result)

    def test_slow_worker_islands_are_stolen(self, serial_result):
        # Both workers deliver results slowly (compute fine, slow link).
        # With 3 islands on 2 workers, one worker always goes idle while
        # the other still owes an island older than the steal grace — so a
        # steal must fire, the first result must win, and the late
        # duplicate must be discarded, all invisible in the output bytes.
        config = dataclasses.replace(CONFIG, max_generations=8)
        serial = _evolver(SerialTransport(), config).run()
        transport = SocketTransport(
            min_workers=2, heartbeat_timeout=15.0, steal_delay=0.2
        )
        host, port = transport.listen()
        threads = [
            threading.Thread(
                target=run_worker,
                args=(host, port),
                kwargs=dict(
                    wrap_socket=lambda s: FaultySocket(s, delay_results=0.4),
                    **FAST_RECONNECT,
                ),
                daemon=True,
            )
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        result = _evolver(transport, config).run()
        for thread in threads:
            thread.join(timeout=20)
            assert not thread.is_alive()
        assert result.transport_stats["steals"] >= 1
        assert _normalized(result) == _normalized(serial)

    def test_bogus_and_duplicate_results_are_ignored(self, serial_result):
        # A confused (or malicious) worker sends results for leases that
        # were never issued and repeats every real result. None of it may
        # reach the barrier twice.
        transport = SocketTransport(min_workers=1, heartbeat_timeout=15.0)
        host, port = transport.listen()

        def noisy_worker():
            import socket as socket_module

            sock = socket_module.create_connection((host, port), timeout=15)
            try:
                send_frame(sock, {"type": "hello", "protocol": PROTOCOL_VERSION})
                setup = recv_frame(sock)
                evolver = evolver_from_jsonable(setup["problem"])
                while True:
                    message = recv_frame(sock)
                    if message is None or message.get("type") == "shutdown":
                        return
                    if message.get("type") != "job":
                        continue
                    for island, payload in message["islands"]:
                        from repro.pmevo import EvolutionState

                        advanced = evolver.advance(
                            EvolutionState.from_jsonable(payload),
                            int(message["generations"]),
                        )
                        frame = {
                            "type": "result",
                            "job_id": message["job_id"],
                            "island": int(island),
                            "state": advanced.to_jsonable(),
                        }
                        # A result for a lease this coordinator never issued…
                        send_frame(sock, dict(frame, job_id=message["job_id"] + 1000))
                        # …the real thing…
                        send_frame(sock, frame)
                        # …and the real thing again.
                        send_frame(sock, frame)
            except OSError:
                return
            finally:
                sock.close()

        thread = threading.Thread(target=noisy_worker, daemon=True)
        thread.start()
        result = _evolver(transport).run()
        thread.join(timeout=15)
        assert _normalized(result) == _normalized(serial_result)

    def test_late_joiner_is_picked_up_mid_run(self, serial_result):
        # The only worker takes every lease and goes silent; a replacement
        # shows up while the epoch is stuck on the mute worker. It must be
        # accepted mid-epoch, the mute worker's islands must reach it (by
        # steal or by requeue after the heartbeat reap), and the bytes must
        # not change.
        transport = SocketTransport(min_workers=1, heartbeat_timeout=1.0)
        host, port = transport.listen()

        def mute_worker():
            import socket as socket_module

            sock = socket_module.create_connection((host, port), timeout=15)
            try:
                send_frame(sock, {"type": "hello", "protocol": PROTOCOL_VERSION})
                recv_frame(sock)  # setup
                # Swallow every job without answering or heartbeating,
                # until the coordinator reaps us and closes the socket.
                while sock.recv(4096):
                    pass
            except OSError:
                pass
            finally:
                sock.close()

        def late_worker():
            time.sleep(0.3)
            run_worker(host, port, **FAST_RECONNECT)

        mute = threading.Thread(target=mute_worker, daemon=True)
        late = threading.Thread(target=late_worker, daemon=True)
        mute.start()
        late.start()
        result = _evolver(transport).run()
        mute.join(timeout=15)
        late.join(timeout=15)
        assert not late.is_alive()
        assert result.transport_stats["late_joiners"] >= 1
        assert _normalized(result) == _normalized(serial_result)


class TestInjectedCoordinatorCrash:
    """FaultyTransport: the in-process analogue of SIGKILLing the coordinator."""

    def test_crash_after_epoch_then_resume_is_identical(
        self, tmp_path, serial_result
    ):
        # Dying *after* the epoch but *before* its checkpoint is the
        # sharpest spot: epoch 2's results exist but were never journaled,
        # so the snapshot still says epoch 1 and the resume replays the
        # lost epoch from there.
        path = tmp_path / "snapshot.json"
        faulty = FaultyTransport(SerialTransport(), fail_after_epoch=2)
        with pytest.raises(InjectedFault):
            _evolver(faulty).run(checkpointer=Checkpointer(path, interval=1))
        snapshot = load_checkpoint(path)
        assert snapshot.epochs == 1
        resumed = _evolver().run(resume=snapshot)
        assert _normalized(resumed) == _normalized(serial_result)

    def test_crash_before_epoch_then_resume_is_identical(
        self, tmp_path, serial_result
    ):
        # Dying *before* an epoch loses that epoch's work; the resume must
        # replay it from the last snapshot without drift.
        path = tmp_path / "snapshot.json"
        faulty = FaultyTransport(SerialTransport(), fail_before_epoch=3)
        with pytest.raises(InjectedFault):
            _evolver(faulty).run(checkpointer=Checkpointer(path, interval=1))
        resumed = _evolver().run(resume=load_checkpoint(path))
        assert _normalized(resumed) == _normalized(serial_result)

    def test_resume_survives_torn_snapshot_via_prev(self, tmp_path, serial_result):
        # The crash also tore the latest snapshot (e.g. disk full at the
        # worst moment): load falls back to the `.prev` generation, which
        # replays one extra epoch and still lands on the serial bytes.
        path = tmp_path / "snapshot.json"
        faulty = FaultyTransport(SerialTransport(), fail_before_epoch=3)
        with pytest.raises(InjectedFault):
            _evolver(faulty).run(checkpointer=Checkpointer(path, interval=1))
        assert previous_path(path).exists()
        path.write_text("torn mid-write")
        with pytest.warns(UserWarning, match="falling back to the previous"):
            snapshot = load_checkpoint(path)
        assert snapshot.epochs == 1
        resumed = _evolver().run(resume=snapshot)
        assert _normalized(resumed) == _normalized(serial_result)


@pytest.mark.chaos
class TestSubprocessDrills:
    """Real processes, real SIGKILL, via the tools/chaos.py runner."""

    @staticmethod
    def _run_drill(extra: list[str], tmp_path: Path):
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "tools" / "chaos.py"),
                "--forms",
                "5",
                "--population",
                "16",
                "--generations",
                "6",
                "--islands",
                "2",
                "--migration-interval",
                "2",
                "--heartbeat-interval",
                "0.5",
                "--heartbeat-timeout",
                "2.5",
                "--timeout",
                "240",
                "--scratch",
                str(tmp_path / "scratch"),
                *extra,
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
            timeout=300,
        )

    def test_worker_sigkill_mid_lease(self, tmp_path):
        proc = self._run_drill(["--kill", "worker", "--at-epoch", "1"], tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "byte-identical" in proc.stdout

    def test_coordinator_sigkill_and_resume(self, tmp_path):
        proc = self._run_drill(["--kill", "coordinator", "--at-epoch", "1"], tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "byte-identical" in proc.stdout
