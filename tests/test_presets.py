"""Tests for the machine presets and generated ISAs."""

import pytest

from repro.core import Experiment, ISAError
from repro.machine import (
    MeasurementConfig,
    a72_machine,
    arm_like_isa,
    preset_machine,
    skl_machine,
    x86_like_isa,
    zen_machine,
)
from repro.throughput import MappingPredictor


class TestGeneratedISAs:
    def test_x86_like_size(self):
        isa = x86_like_isa()
        assert len(isa) >= 200  # comparable to the paper's 310 x86-64 forms

    def test_arm_like_size(self):
        isa = arm_like_isa()
        assert len(isa) >= 200  # comparable to the paper's 390 ARMv8-A forms

    def test_unique_names(self):
        for isa in (x86_like_isa(), arm_like_isa()):
            assert len(set(isa.names)) == len(isa)

    def test_class_structure_provides_congruent_families(self):
        """Many forms share a semantic class, which is what makes
        congruence filtering effective (Table 2: 53%-69%)."""
        isa = x86_like_isa()
        groups = isa.by_semantic_class()
        large = [cls for cls, forms in groups.items() if len(forms) >= 4]
        assert len(large) >= 5


class TestPresets:
    def test_table1_shapes(self):
        skl = skl_machine()
        zen = zen_machine()
        a72 = a72_machine()
        assert skl.config.ports.num_ports == 9  # 8 + DIV
        assert zen.config.ports.num_ports == 10
        assert a72.config.ports.num_ports == 7  # BR port omitted
        assert skl.config.clock_ghz == pytest.approx(3.4)
        assert zen.config.clock_ghz == pytest.approx(3.6)
        assert a72.config.clock_ghz == pytest.approx(1.8)

    def test_preset_lookup(self):
        assert preset_machine("skl").name == "SKL"
        assert preset_machine("ZEN").name == "ZEN"
        with pytest.raises(ISAError):
            preset_machine("M1")

    def test_every_form_has_an_execution_class(self):
        for machine in (skl_machine(), zen_machine(), a72_machine()):
            for form in machine.isa:
                decoded = machine.config.decode(form)
                assert decoded, f"{form.name} decodes to no µops"

    def test_zen_double_pumps_256bit(self):
        zen = zen_machine()
        isa = zen.isa
        narrow = next(f for f in isa if f.semantic_class == "vec_fp_add@128")
        wide = next(f for f in isa if f.semantic_class == "vec_fp_add@256")
        assert len(zen.config.decode(wide)) == 2 * len(zen.config.decode(narrow))

    def test_skl_does_not_double_pump(self):
        skl = skl_machine()
        isa = skl.isa
        narrow = next(f for f in isa if f.semantic_class == "vec_fp_add@128")
        wide = next(f for f in isa if f.semantic_class == "vec_fp_add@256")
        assert len(skl.config.decode(wide)) == len(skl.config.decode(narrow))

    def test_a72_double_pumps_128bit_neon(self):
        a72 = a72_machine()
        isa = a72.isa
        narrow = next(f for f in isa if f.semantic_class == "vec_fp_add@64")
        wide = next(f for f in isa if f.semantic_class == "vec_fp_add@128")
        assert len(a72.config.decode(wide)) == 2 * len(a72.config.decode(narrow))


class TestGroundTruthConsistency:
    """The analytical model over the published mapping must match machine
    measurements for well-behaved (pipelined, quirk-free) instructions."""

    @pytest.mark.parametrize("factory", [skl_machine, zen_machine, a72_machine])
    def test_model_matches_measurement_for_simple_singletons(self, factory):
        machine = factory(measurement=MeasurementConfig(noisy=False))
        predictor = MappingPredictor(machine.ground_truth_mapping())
        checked = 0
        for form in machine.isa:
            if checked >= 8:
                break
            cls = form.semantic_class
            if not cls.startswith(("int_alu", "vec_logic", "load", "store")):
                continue
            if machine.config.classes[cls].hidden_uops:
                continue
            e = Experiment({form.name: 1})
            assert machine.measure(e) == pytest.approx(
                predictor.predict(e), rel=0.08
            ), form.name
            checked += 1
        assert checked == 8

    def test_skl_btx_quirk_visible_in_measurement_only(self):
        machine = skl_machine(measurement=MeasurementConfig(noisy=False))
        predictor = MappingPredictor(machine.ground_truth_mapping())
        bt = next(f.name for f in machine.isa if f.semantic_class == "bt")
        e = Experiment({bt: 1})
        measured = machine.measure(e)
        predicted = predictor.predict(e)
        # Hidden µop doubles the real cost: published model under-estimates.
        assert measured == pytest.approx(2 * predicted, rel=0.1)

    def test_skl_divider_blocks_pipe(self):
        machine = skl_machine(measurement=MeasurementConfig(noisy=False))
        div = next(f.name for f in machine.isa if f.semantic_class == "int_div")
        measured = machine.measure(Experiment({div: 1}))
        assert measured == pytest.approx(6.0, rel=0.1)  # DIV blocks for 6 cycles
        # The published mapping folds the occupancy into the multiplicity.
        predictor = MappingPredictor(machine.ground_truth_mapping())
        assert predictor.predict(Experiment({div: 1})) == pytest.approx(6.0)
