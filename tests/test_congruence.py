"""Tests for congruence filtering (Section 4.3)."""

import pytest

from repro.core import Experiment, ExperimentError, ExperimentSet
from repro.pmevo import find_congruence_classes, throughputs_equal


class TestThroughputsEqual:
    def test_exact_equality(self):
        assert throughputs_equal(1.0, 1.0, 0.05)

    def test_symmetric_relative_difference(self):
        # |t1-t2| / (|t1+t2|/2) < eps
        assert throughputs_equal(1.00, 1.04, 0.05)
        assert not throughputs_equal(1.0, 1.10, 0.05)

    def test_symmetry(self):
        assert throughputs_equal(2.0, 2.05, 0.05) == throughputs_equal(2.05, 2.0, 0.05)

    def test_zero_denominator(self):
        assert not throughputs_equal(1.0, -1.0, 0.05)


def _measured(entries) -> ExperimentSet:
    s = ExperimentSet()
    for counts, throughput in entries:
        s.add(Experiment(counts), throughput)
    return s


class TestCongruenceClasses:
    def test_identical_profiles_merge(self):
        measured = _measured(
            [
                ({"a": 1}, 1.0),
                ({"b": 1}, 1.0),
                ({"c": 1}, 2.0),
                ({"a": 1, "b": 1}, 2.0),
                ({"a": 1, "c": 1}, 3.0),
                ({"b": 1, "c": 1}, 3.0),
            ]
        )
        partition = find_congruence_classes(measured, epsilon=0.05)
        assert partition.classes[partition.representative_of["a"]] == ["a", "b"]
        assert partition.representative_of["c"] == "c"
        assert partition.congruent_fraction() == pytest.approx(1 / 3)

    def test_different_singleton_throughputs_split(self):
        measured = _measured(
            [
                ({"a": 1}, 1.0),
                ({"b": 1}, 2.0),
                ({"a": 1, "b": 1}, 3.0),
            ]
        )
        partition = find_congruence_classes(measured, epsilon=0.05)
        assert partition.representative_of["a"] != partition.representative_of["b"]

    def test_pair_profile_distinguishes(self):
        """a and b have equal individual throughput but interact differently
        with c — they must not merge."""
        measured = _measured(
            [
                ({"a": 1}, 1.0),
                ({"b": 1}, 1.0),
                ({"c": 1}, 1.0),
                ({"a": 1, "b": 1}, 2.0),
                ({"a": 1, "c": 1}, 2.0),  # a conflicts with c
                ({"b": 1, "c": 1}, 1.0),  # b runs in parallel with c
            ]
        )
        partition = find_congruence_classes(measured, epsilon=0.05)
        assert partition.representative_of["a"] != partition.representative_of["b"]

    def test_epsilon_tolerance_merges_noisy_measurements(self):
        measured = _measured(
            [
                ({"a": 1}, 1.00),
                ({"b": 1}, 1.02),
                ({"a": 1, "b": 1}, 2.01),
            ]
        )
        strict = find_congruence_classes(measured, epsilon=0.001)
        loose = find_congruence_classes(measured, epsilon=0.05)
        assert strict.representative_of["a"] != strict.representative_of["b"]
        assert loose.representative_of["a"] == loose.representative_of["b"]

    def test_translation_excludes_representatives(self):
        measured = _measured(
            [
                ({"a": 1}, 1.0),
                ({"b": 1}, 1.0),
                ({"a": 1, "b": 1}, 2.0),
            ]
        )
        partition = find_congruence_classes(measured, epsilon=0.05)
        translation = partition.translation()
        rep = partition.representative_of["a"]
        assert rep not in translation
        other = "b" if rep == "a" else "a"
        assert translation == {other: rep}

    def test_missing_singleton_rejected(self):
        measured = _measured([({"a": 1}, 1.0)])
        with pytest.raises(ExperimentError):
            find_congruence_classes(measured, names=["a", "ghost"])

    def test_invalid_epsilon_rejected(self):
        measured = _measured([({"a": 1}, 1.0)])
        with pytest.raises(ExperimentError):
            find_congruence_classes(measured, epsilon=0.0)


class TestCongruenceOnToyMachine:
    def test_toy_machine_classes_found(self, quiet_toy_machine, toy_measurements):
        """Forms of the same toy semantic class are congruent; the toy
        machine also makes class0 and class3 identical by construction."""
        measured, _ = toy_measurements
        partition = find_congruence_classes(measured, epsilon=0.05)
        machine = quiet_toy_machine
        by_class: dict[str, list[str]] = {}
        for form in machine.isa:
            by_class.setdefault(form.semantic_class, []).append(form.name)
        # Same semantic class -> same congruence representative.
        for members in by_class.values():
            reps = {partition.representative_of[m] for m in members}
            assert len(reps) == 1
        # class0 (1 µop on P0) and class3 (1 µop on P0) merge across classes.
        rep0 = partition.representative_of[by_class["class0"][0]]
        rep3 = partition.representative_of[by_class["class3"][0]]
        assert rep0 == rep3
        assert partition.congruent_fraction() >= 0.5
