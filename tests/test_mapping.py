"""Unit tests for repro.core.mapping."""

import pytest

from repro.core import (
    Experiment,
    MappingError,
    PortSpace,
    ThreeLevelMapping,
    TwoLevelMapping,
)


@pytest.fixture
def ports() -> PortSpace:
    return PortSpace.numbered(3)


class TestTwoLevelMapping:
    def test_basics(self, ports):
        m = TwoLevelMapping(ports, {"a": 0b011, "b": 0b100})
        assert m.port_mask("a") == 0b011
        assert "a" in m and "z" not in m
        assert len(m) == 2
        assert m.instructions == ("a", "b")

    def test_zero_mask_rejected(self, ports):
        with pytest.raises(MappingError):
            TwoLevelMapping(ports, {"a": 0})

    def test_out_of_space_mask_rejected(self, ports):
        with pytest.raises(MappingError):
            TwoLevelMapping(ports, {"a": 0b1000})

    def test_empty_rejected(self, ports):
        with pytest.raises(MappingError):
            TwoLevelMapping(ports, {})

    def test_unknown_instruction(self, ports):
        m = TwoLevelMapping(ports, {"a": 1})
        with pytest.raises(MappingError):
            m.port_mask("b")

    def test_uop_masses(self, ports):
        m = TwoLevelMapping(ports, {"a": 0b011, "b": 0b011, "c": 0b100})
        masses = m.uop_masses(Experiment({"a": 1, "b": 2, "c": 1}))
        assert masses == {0b011: 3.0, 0b100: 1.0}

    def test_to_three_level(self, ports):
        m2 = TwoLevelMapping(ports, {"a": 0b011})
        m3 = m2.to_three_level()
        assert m3.uops_of("a") == {0b011: 1}


class TestThreeLevelMapping:
    def test_validation(self, ports):
        with pytest.raises(MappingError):
            ThreeLevelMapping(ports, {"a": {}})  # no µops
        with pytest.raises(MappingError):
            ThreeLevelMapping(ports, {"a": {0: 1}})  # empty µop
        with pytest.raises(MappingError):
            ThreeLevelMapping(ports, {"a": {1: 0}})  # zero multiplicity
        with pytest.raises(MappingError):
            ThreeLevelMapping(ports, {})

    def test_uop_masses_reduction(self, paper_three_level, paper_experiment):
        # Section 3.2: e'(u) = sum over (i, n, u) of e(i) * n.
        ports = paper_three_level.ports
        masses = paper_three_level.uop_masses(paper_experiment)
        u1 = ports.mask("P1")
        u2 = ports.mask("P1", "P2")
        u3 = ports.mask("P3")
        # mul contributes 2 U1; add x2 contributes 2 U2; store 1 U2 + 1 U3.
        assert masses == {u1: 2.0, u2: 3.0, u3: 1.0}

    def test_volume(self, paper_three_level):
        # V = sum n*|u| = mul 2*1 + add 1*2 + sub 1*2 + store (1*2 + 1*1) = 9
        assert paper_three_level.uop_volume() == 9

    def test_distinct_uops(self, paper_three_level):
        ports = paper_three_level.ports
        assert paper_three_level.distinct_uops() == tuple(
            sorted([ports.mask("P1"), ports.mask("P1", "P2"), ports.mask("P3")])
        )

    def test_restricted_to(self, paper_three_level):
        sub = paper_three_level.restricted_to(["add", "mul"])
        assert sub.instructions == ("add", "mul")
        with pytest.raises(MappingError):
            paper_three_level.restricted_to(["nonexistent"])

    def test_extended_by(self, ports):
        m = ThreeLevelMapping(ports, {"rep": {0b011: 2}})
        extended = m.extended_by({"member": "rep"})
        assert extended.uops_of("member") == {0b011: 2}
        assert extended.uops_of("rep") == {0b011: 2}
        with pytest.raises(MappingError):
            m.extended_by({"member": "ghost"})

    def test_json_roundtrip(self, paper_three_level):
        again = ThreeLevelMapping.from_json(paper_three_level.to_json())
        assert again == paper_three_level

    def test_from_dict_malformed(self):
        with pytest.raises(MappingError):
            ThreeLevelMapping.from_dict({"ports": ["P0"]})

    def test_from_dict_merges_equal_masks(self, ports):
        data = {
            "ports": list(ports.names),
            "instructions": {
                "a": [
                    {"ports": ["P0"], "count": 1},
                    {"ports": ["P0"], "count": 2},
                ]
            },
        }
        m = ThreeLevelMapping.from_dict(data)
        assert m.uops_of("a") == {0b001: 3}

    def test_describe_mentions_all_instructions(self, paper_three_level):
        text = paper_three_level.describe()
        for name in ("mul", "add", "sub", "store"):
            assert name in text
