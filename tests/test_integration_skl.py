"""End-to-end integration test on the SKL-like machine.

A scaled-down version of the paper's Section 5.3.1 evaluation: infer a
mapping over a small diverse slice of the x86-like ISA and check that it
predicts held-out experiments competitively with the ground-truth oracle.
"""

import numpy as np
import pytest

from repro.analysis import mape
from repro.baselines import UopsInfoPredictor
from repro.machine import MeasurementConfig, skl_machine
from repro.pmevo import (
    EvolutionConfig,
    PMEvoConfig,
    infer_port_mapping,
    random_experiments,
)
from repro.throughput import MappingPredictor


@pytest.fixture(scope="module")
def skl_inference():
    machine = skl_machine(measurement=MeasurementConfig(noisy=True, seed=23))
    # One representative form per selected class: ALU, shift, mul, load,
    # store, two vector classes, and the quirky BTx.
    wanted = [
        "int_alu",
        "int_shift",
        "int_mul",
        "load_gpr",
        "store_gpr",
        "bt",
        "vec_fp_add@256",
        "vec_shuffle@128",
    ]
    by_class = {}
    for form in machine.isa:
        by_class.setdefault(form.semantic_class, []).append(form.name)
    names = []
    for cls in wanted:
        names.extend(by_class[cls][:2])
    config = PMEvoConfig(
        evolution=EvolutionConfig(population_size=150, max_generations=80, seed=5)
    )
    result = infer_port_mapping(machine, names=names, config=config)
    return machine, names, result


class TestSKLIntegration:
    def test_training_accuracy(self, skl_inference):
        _, _, result = skl_inference
        assert result.evolution.davg <= 0.06

    def test_congruence_found_within_classes(self, skl_inference):
        """Both forms of each semantic class must land in one congruence
        class: they are literally executed identically."""
        machine, names, result = skl_inference
        by_class = {}
        for name in names:
            by_class.setdefault(machine.isa[name].semantic_class, []).append(name)
        for cls, members in by_class.items():
            if len(members) < 2:
                continue
            reps = {result.partition.representative_of[m] for m in members}
            assert len(reps) == 1, cls

    def test_heldout_accuracy_close_to_oracle(self, skl_inference):
        machine, names, result = skl_inference
        experiments = random_experiments(names, size=5, count=60, seed=31)
        measured = np.array([machine.measure(e) for e in experiments])
        pmevo = MappingPredictor(result.mapping)
        oracle = UopsInfoPredictor(machine)
        pmevo_mape = mape([pmevo.predict(e) for e in experiments], measured)
        oracle_mape = mape([oracle.predict(e) for e in experiments], measured)
        # The paper's Table 3 shape: PMEvo within a factor of ~2 of the
        # counter-based oracle, both far below useless (100%).
        assert pmevo_mape < 25.0
        assert pmevo_mape < max(3.0 * oracle_mape, 25.0)

    def test_btx_learned_better_than_published(self, skl_inference):
        """PMEvo fits observable throughput, so it beats the published
        mapping on the quirky BTx family (Section 5.3.1)."""
        machine, names, result = skl_inference
        from repro.core import Experiment

        bt_names = [n for n in names if machine.isa[n].semantic_class == "bt"]
        pmevo = MappingPredictor(result.mapping)
        oracle = UopsInfoPredictor(machine)
        errors_pmevo = []
        errors_oracle = []
        for name in bt_names:
            e = Experiment({name: 2})
            measured = machine.measure(e)
            errors_pmevo.append(abs(pmevo.predict(e) - measured) / measured)
            errors_oracle.append(abs(oracle.predict(e) - measured) / measured)
        assert np.mean(errors_pmevo) < np.mean(errors_oracle)
