"""Measurement noise must be independent of measurement order.

Like a real benchmark rig: re-measuring the same experiment on the same
machine yields the same (noisy) reading regardless of what was measured
before — otherwise evaluation results depend on test execution order.
"""

from repro.core import Experiment
from repro.machine import MeasurementConfig, toy_machine


def _machine():
    return toy_machine(
        num_ports=3, measurement=MeasurementConfig(noisy=True, seed=13)
    )


class TestOrderIndependence:
    def test_same_reading_regardless_of_history(self):
        names = _machine().isa.names
        target = Experiment({names[0]: 1, names[1]: 2})

        fresh = _machine()
        direct = fresh.measure(target)

        busy = _machine()
        for name in names:  # measure lots of other things first
            busy.measure(Experiment({name: 1}))
            busy.measure(Experiment({name: 3}))
        after_history = busy.measure(target)

        assert direct == after_history

    def test_different_experiments_get_independent_noise(self):
        machine = _machine()
        names = machine.isa.names
        # Same true throughput (congruent forms), but independent noise
        # draws: readings need not be byte-identical.
        quiet = toy_machine(num_ports=3, measurement=MeasurementConfig(noisy=False))
        a, b = names[0], names[1]
        if quiet.measure(Experiment({a: 1})) == quiet.measure(Experiment({b: 1})):
            assert machine.measure(Experiment({a: 1})) != machine.measure(
                Experiment({b: 1})
            )

    def test_seed_changes_noise(self):
        names = _machine().isa.names
        target = Experiment({names[0]: 1})
        first = toy_machine(
            num_ports=3, measurement=MeasurementConfig(noisy=True, seed=1)
        ).measure(target)
        second = toy_machine(
            num_ports=3, measurement=MeasurementConfig(noisy=True, seed=2)
        ).measure(target)
        assert first != second
