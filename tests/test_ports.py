"""Unit tests for repro.core.ports."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import MappingError, PortSpace
from repro.core.ports import (
    indices_from_mask,
    iter_nonempty_subsets,
    iter_subsets,
    mask_from_indices,
    mask_size,
)


class TestMaskHelpers:
    def test_roundtrip_simple(self):
        assert mask_from_indices([0, 2]) == 5
        assert indices_from_mask(5) == (0, 2)

    def test_empty(self):
        assert mask_from_indices([]) == 0
        assert indices_from_mask(0) == ()
        assert mask_size(0) == 0

    def test_negative_index_rejected(self):
        with pytest.raises(MappingError):
            mask_from_indices([-1])

    def test_negative_mask_rejected(self):
        with pytest.raises(MappingError):
            indices_from_mask(-3)

    @given(st.sets(st.integers(min_value=0, max_value=20)))
    def test_roundtrip_property(self, indices):
        mask = mask_from_indices(indices)
        assert set(indices_from_mask(mask)) == indices
        assert mask_size(mask) == len(indices)

    @given(st.integers(min_value=0, max_value=255))
    def test_subset_enumeration(self, mask):
        subsets = list(iter_subsets(mask))
        assert len(subsets) == 1 << mask_size(mask)
        assert len(set(subsets)) == len(subsets)
        assert all(sub & ~mask == 0 for sub in subsets)
        assert 0 in subsets and mask in subsets

    def test_nonempty_subsets_exclude_zero(self):
        assert 0 not in list(iter_nonempty_subsets(0b101))
        assert sorted(iter_nonempty_subsets(0b101)) == [0b001, 0b100, 0b101]


class TestPortSpace:
    def test_basic(self):
        ports = PortSpace(["P0", "P1", "DIV"])
        assert ports.num_ports == 3
        assert ports.full_mask == 0b111
        assert ports.index("DIV") == 2
        assert ports.mask("P0", "DIV") == 0b101
        assert ports.mask_names(0b101) == ("P0", "DIV")
        assert ports.format_mask(0b011) == "{P0,P1}"

    def test_numbered(self):
        ports = PortSpace.numbered(4)
        assert ports.names == ("P0", "P1", "P2", "P3")
        assert len(ports) == 4
        assert list(ports) == ["P0", "P1", "P2", "P3"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(MappingError):
            PortSpace(["A", "A"])

    def test_empty_rejected(self):
        with pytest.raises(MappingError):
            PortSpace([])
        with pytest.raises(MappingError):
            PortSpace.numbered(0)

    def test_empty_name_rejected(self):
        with pytest.raises(MappingError):
            PortSpace(["A", ""])

    def test_unknown_port(self):
        ports = PortSpace.numbered(2)
        with pytest.raises(MappingError):
            ports.index("P9")
        with pytest.raises(MappingError):
            ports.mask("P9")

    def test_check_mask(self):
        ports = PortSpace.numbered(2)
        assert ports.check_mask(0b11) == 0b11
        with pytest.raises(MappingError):
            ports.check_mask(0b100)
        with pytest.raises(MappingError):
            ports.check_mask(-1)

    def test_equality_and_hash(self):
        assert PortSpace.numbered(3) == PortSpace.numbered(3)
        assert PortSpace.numbered(3) != PortSpace.numbered(4)
        assert hash(PortSpace.numbered(3)) == hash(PortSpace.numbered(3))
