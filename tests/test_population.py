"""Tests for genome representation and population initialization."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import InferenceError, PortSpace
from repro.core.ports import mask_size
from repro.pmevo import genome_to_mapping, genome_volume, random_genome, random_population
from repro.pmevo.population import copy_genome, genome_key, multiplicity_bound


class TestGenomeHelpers:
    def test_volume(self):
        genome = {"a": {0b011: 2, 0b100: 1}, "b": {0b001: 3}}
        # 2*2 + 1*1 + 3*1 = 8
        assert genome_volume(genome) == 8

    def test_copy_is_deep(self):
        genome = {"a": {1: 1}}
        clone = copy_genome(genome)
        clone["a"][1] = 99
        assert genome["a"][1] == 1

    def test_key_is_order_insensitive(self):
        g1 = {"a": {1: 1, 2: 2}, "b": {4: 1}}
        g2 = {"b": {4: 1}, "a": {2: 2, 1: 1}}
        assert genome_key(g1) == genome_key(g2)

    def test_to_mapping(self):
        genome = {"a": {0b011: 2}}
        mapping = genome_to_mapping(PortSpace.numbered(2), genome)
        assert mapping.uops_of("a") == {0b011: 2}

    def test_multiplicity_bound(self):
        assert multiplicity_bound(0.25, 1) == 1  # ceil(0.25)
        assert multiplicity_bound(1.0, 3) == 3  # ceil(3.0)
        assert multiplicity_bound(2.5, 2) == 5  # ceil(5.0)


class TestRandomGenome:
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=99))
    @settings(max_examples=40, deadline=None)
    def test_invariants(self, num_ports, seed):
        rng = np.random.default_rng(seed)
        names = ["x", "y", "z"]
        throughputs = {"x": 0.5, "y": 1.0, "z": 3.0}
        genome = random_genome(rng, names, num_ports, throughputs)
        full = (1 << num_ports) - 1
        for name in names:
            uops = genome[name]
            assert uops, "every instruction needs at least one µop"
            assert len(uops) <= num_ports
            for mask, count in uops.items():
                assert 1 <= mask <= full
                assert count >= 1
                bound = max(1, math.ceil(throughputs[name] * mask_size(mask) - 1e-12))
                assert count <= bound

    def test_missing_throughput_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(InferenceError):
            random_genome(rng, ["x"], 2, {})

    def test_invalid_ports_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(InferenceError):
            random_genome(rng, ["x"], 0, {"x": 1.0})


class TestRandomPopulation:
    def test_size_and_diversity(self):
        rng = np.random.default_rng(1)
        population = random_population(rng, 50, ["a", "b"], 3, {"a": 1.0, "b": 1.0})
        assert len(population) == 50
        keys = {genome_key(g) for g in population}
        assert len(keys) > 25  # random init should be diverse

    def test_invalid_size_rejected(self):
        rng = np.random.default_rng(1)
        with pytest.raises(InferenceError):
            random_population(rng, 0, ["a"], 2, {"a": 1.0})
