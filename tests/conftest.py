"""Shared fixtures: small machines and measured experiment sets.

Session-scoped where construction is expensive; tests must not mutate them.
"""

from __future__ import annotations

import pytest

from repro.core import Experiment, ExperimentSet, PortSpace, ThreeLevelMapping, TwoLevelMapping
from repro.machine import MeasurementConfig, skl_machine, toy_machine
from repro.pmevo import pair_experiments, singleton_experiments


@pytest.fixture(scope="session")
def paper_ports() -> PortSpace:
    """The P1/P2/P3 port space of the paper's running example."""
    return PortSpace(["P1", "P2", "P3"])


@pytest.fixture(scope="session")
def paper_two_level(paper_ports: PortSpace) -> TwoLevelMapping:
    """Figure 2: mul -> {P1}, add/sub -> {P1,P2}, store -> {P3}."""
    return TwoLevelMapping(
        paper_ports,
        {
            "mul": paper_ports.mask("P1"),
            "add": paper_ports.mask("P1", "P2"),
            "sub": paper_ports.mask("P1", "P2"),
            "store": paper_ports.mask("P3"),
        },
    )


@pytest.fixture(scope="session")
def paper_three_level(paper_ports: PortSpace) -> ThreeLevelMapping:
    """Figure 4: mul -> 2xU1{P1}; add/sub -> U2{P1,P2}; store -> U2 + U3{P3}."""
    return ThreeLevelMapping(
        paper_ports,
        {
            "mul": {paper_ports.mask("P1"): 2},
            "add": {paper_ports.mask("P1", "P2"): 1},
            "sub": {paper_ports.mask("P1", "P2"): 1},
            "store": {
                paper_ports.mask("P1", "P2"): 1,
                paper_ports.mask("P3"): 1,
            },
        },
    )


@pytest.fixture(scope="session")
def paper_experiment() -> Experiment:
    """Example 1's experiment: {add -> 2, mul -> 1, store -> 1}."""
    return Experiment({"add": 2, "mul": 1, "store": 1})


@pytest.fixture(scope="session")
def quiet_toy_machine():
    """A noise-free 3-port toy machine."""
    return toy_machine(num_ports=3, measurement=MeasurementConfig(noisy=False))


@pytest.fixture(scope="session")
def toy_measurements(quiet_toy_machine):
    """Measured singleton + pair experiments on the toy machine."""
    machine = quiet_toy_machine
    universe = machine.isa.names
    measured = ExperimentSet()
    singleton_throughputs: dict[str, float] = {}
    for experiment in singleton_experiments(universe):
        throughput = machine.measure(experiment)
        measured.add(experiment, throughput)
        singleton_throughputs[experiment.support[0]] = throughput
    for experiment in pair_experiments(universe, singleton_throughputs):
        measured.add(experiment, machine.measure(experiment))
    return measured, singleton_throughputs


@pytest.fixture(scope="session")
def quiet_skl_machine():
    """A noise-free SKL-like machine over the full x86-like ISA."""
    return skl_machine(measurement=MeasurementConfig(noisy=False))


@pytest.fixture(scope="session")
def skl_subset_names(quiet_skl_machine):
    """A small, diverse slice of SKL instruction forms for integration tests."""
    wanted_classes = {
        "int_alu",
        "int_shift",
        "int_mul",
        "load_gpr",
        "store_gpr",
        "vec_fp_add@256",
        "vec_shuffle@128",
    }
    names = []
    seen_classes = set()
    for form in quiet_skl_machine.isa:
        if form.semantic_class in wanted_classes:
            # Two forms per class at most, to keep pair counts small.
            key = (form.semantic_class, form.mnemonic)
            if key in seen_classes:
                continue
            seen_classes.add(key)
            names.append(form.name)
    return tuple(names[:14])
