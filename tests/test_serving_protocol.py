"""Protocol error paths, the prediction cache, and registry hot reload.

The serving contract under test: every client mistake is a *structured* 4xx
JSON error — never a 500, never a hung connection — and the registry can
swap mapping artifacts under a running server with the cache invalidated
for exactly the reloaded ids.
"""

from __future__ import annotations

import asyncio
import http.client
import json

import pytest

from repro.core import Experiment, PortSpace, ServingError, ThreeLevelMapping
from repro.serving import (
    MappingRegistry,
    PredictionCache,
    PredictionServer,
    ProtocolError,
    canonical_sequence,
    load_mapping_artifact,
    parse_bind,
    parse_mapping_spec,
    parse_predict_request,
)


@pytest.fixture
def mapping():
    return ThreeLevelMapping(
        PortSpace.numbered(3), {"add": {0b001: 1}, "mul": {0b110: 2}, "st": {0b011: 1}}
    )


@pytest.fixture
def other_mapping():
    return ThreeLevelMapping(
        PortSpace.numbered(3), {"add": {0b111: 2}, "mul": {0b100: 1}, "st": {0b011: 1}}
    )


@pytest.fixture
def registry(tmp_path, mapping):
    path = tmp_path / "toy.json"
    path.write_text(mapping.to_json())
    return MappingRegistry([("toy", path)])


@pytest.fixture
def server(registry):
    return PredictionServer(registry, max_batch=8, max_sequence=16)


def _predict(server, payload):
    return asyncio.run(server.handle_predict(payload))


def _expect_protocol_error(server, payload, status, code):
    with pytest.raises(ProtocolError) as excinfo:
        _predict(server, payload)
    assert excinfo.value.status == status
    assert excinfo.value.code == code


class TestSequenceCanonicalization:
    def test_list_and_counts_agree(self):
        assert canonical_sequence(["a", "b", "a"]) == canonical_sequence({"a": 2, "b": 1})

    @pytest.mark.parametrize(
        "raw",
        [[], {}, "add", 42, [1, 2], ["ok", ""], {"a": 0}, {"a": -1}, {"a": 1.5}, {"a": True}, {"": 2}],
    )
    def test_malformed_sequences_rejected(self, raw):
        with pytest.raises(ProtocolError) as excinfo:
            canonical_sequence(raw)
        assert 400 <= excinfo.value.status < 500

    def test_overlong_sequence_is_413(self):
        with pytest.raises(ProtocolError) as excinfo:
            canonical_sequence(["a"] * 20, max_sequence=16)
        assert excinfo.value.status == 413
        with pytest.raises(ProtocolError) as excinfo:
            canonical_sequence({"a": 20}, max_sequence=16)
        assert excinfo.value.status == 413


class TestPredictRequestValidation:
    @pytest.mark.parametrize(
        "payload, code",
        [
            ([], "bad_request"),
            ("x", "bad_request"),
            ({}, "bad_request"),
            ({"sequences": "nope"}, "bad_request"),
            ({"sequences": []}, "bad_request"),
            ({"sequences": [["a"]], "mapping": 3}, "bad_request"),
            ({"sequences": [["a"]], "bogus": 1}, "bad_request"),
        ],
    )
    def test_structural_errors(self, payload, code):
        with pytest.raises(ProtocolError) as excinfo:
            parse_predict_request(payload)
        assert excinfo.value.code == code
        assert excinfo.value.status == 400

    def test_oversized_batch_is_413(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_predict_request({"sequences": [["a"]] * 9}, max_batch=8)
        assert excinfo.value.status == 413
        assert excinfo.value.code == "batch_too_large"


class TestPredictErrorPaths:
    def test_unknown_mapping_is_404(self, server):
        _expect_protocol_error(
            server, {"mapping": "nope", "sequences": [["add"]]}, 404, "unknown_mapping"
        )

    def test_unknown_instruction_is_400(self, server):
        _expect_protocol_error(
            server, {"sequences": [["add", "fdiv"]]}, 400, "unknown_instruction"
        )

    def test_unknown_instruction_never_reaches_backend(self, server):
        # A bad sequence must not poison the valid ones sharing its request:
        # the request fails up front, before anything is evaluated or cached.
        _expect_protocol_error(
            server, {"sequences": [["add"], ["fdiv"]]}, 400, "unknown_instruction"
        )
        assert server.stats.batches == 0
        assert len(server.cache) == 0

    def test_ambiguous_mapping_with_several_served(self, tmp_path, mapping, other_mapping):
        (tmp_path / "a.json").write_text(mapping.to_json())
        (tmp_path / "b.json").write_text(other_mapping.to_json())
        registry = MappingRegistry([("a", tmp_path / "a.json"), ("b", tmp_path / "b.json")])
        server = PredictionServer(registry)
        _expect_protocol_error(server, {"sequences": [["add"]]}, 400, "ambiguous_mapping")
        status, body = _predict(server, {"mapping": "b", "sequences": [["add"]]})
        assert status == 200 and body["mapping"] == "b"


class TestPredictionCache:
    def test_lru_eviction_order_and_bound(self):
        cache = PredictionCache(2)
        a, b, c = Experiment({"a": 1}), Experiment({"b": 1}), Experiment({"c": 1})
        cache.put("m", a, 1.0)
        cache.put("m", b, 2.0)
        assert cache.get("m", a) == 1.0  # refresh a; b is now LRU
        cache.put("m", c, 3.0)
        assert len(cache) == 2
        assert cache.get("m", b) is None
        assert cache.get("m", a) == 1.0 and cache.get("m", c) == 3.0
        assert cache.evictions == 1

    def test_zero_capacity_disables_caching(self):
        cache = PredictionCache(0)
        cache.put("m", Experiment({"a": 1}), 1.0)
        assert len(cache) == 0
        assert cache.get("m", Experiment({"a": 1})) is None

    def test_invalidate_is_per_mapping(self):
        cache = PredictionCache(8)
        seq = Experiment({"a": 1})
        cache.put("m1", seq, 1.0)
        cache.put("m2", seq, 2.0)
        assert cache.invalidate_mapping("m1") == 1
        assert cache.get("m1", seq) is None
        assert cache.get("m2", seq) == 2.0

    def test_server_cache_bound_holds_under_load(self, registry):
        server = PredictionServer(registry, cache_size=3)
        for i in range(1, 9):
            _predict(server, {"sequences": [{"add": i}]})
        assert len(server.cache) == 3
        assert server.cache.evictions == 5


class TestRegistryAndReload:
    def test_spec_parsing(self):
        assert parse_mapping_spec("results/skl.json")[0] == "skl"
        mapping_id, path = parse_mapping_spec("prod=results/skl.json")
        assert mapping_id == "prod" and str(path) == "results/skl.json"

    def test_duplicate_ids_rejected(self, tmp_path, mapping):
        path = tmp_path / "m.json"
        path.write_text(mapping.to_json())
        with pytest.raises(ServingError):
            MappingRegistry([("m", path), ("m", path)])

    def test_malformed_artifacts_fail_loudly(self, tmp_path):
        missing = tmp_path / "missing.json"
        with pytest.raises(ServingError):
            load_mapping_artifact(missing)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ServingError):
            load_mapping_artifact(bad)
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"ports": ["P0"], "instructions": {"a": []}}))
        with pytest.raises(ServingError):
            load_mapping_artifact(wrong)

    def test_wrapped_artifact_accepted(self, tmp_path, mapping):
        path = tmp_path / "wrapped.json"
        path.write_text(json.dumps({"mapping": mapping.to_dict()}))
        assert load_mapping_artifact(path) == mapping

    def test_hot_reload_swaps_predictions_and_invalidates_cache(
        self, tmp_path, mapping, other_mapping, registry
    ):
        server = PredictionServer(registry)
        status, before = _predict(server, {"sequences": [["add", "add"]]})
        assert status == 200 and before["generation"] == 1
        assert len(server.cache) == 1

        (tmp_path / "toy.json").write_text(other_mapping.to_json())
        status, report = server.handle_reload()
        assert status == 200
        assert report["reloaded"] == ["toy"]
        assert report["cache_entries_invalidated"] == 1

        status, after = _predict(server, {"sequences": [["add", "add"]]})
        assert after["generation"] == 2
        assert after["cached"] == [False]  # the stale entry really is gone
        assert after["throughputs"] != before["throughputs"]

        # Reloading again without a change is a no-op.
        status, report = server.handle_reload()
        assert report["reloaded"] == [] and report["unchanged"] == ["toy"]

    def test_failed_reload_keeps_serving_old_mapping(self, tmp_path, registry):
        server = PredictionServer(registry)
        _, before = _predict(server, {"sequences": [["mul"]]})
        (tmp_path / "toy.json").write_text("{truncated")
        with pytest.raises(ServingError):
            server.handle_reload()
        _, after = _predict(server, {"sequences": [["mul"]]})
        assert after["throughputs"] == before["throughputs"]
        assert after["generation"] == 1


class _Client:
    """A tiny keep-alive HTTP client against an in-process server."""

    def __init__(self, host, port):
        self.conn = http.client.HTTPConnection(host, port, timeout=5)

    def request(self, method, path, body=None, headers=None):
        raw = None if body is None else (
            body if isinstance(body, (bytes, str)) else json.dumps(body)
        )
        self.conn.request(method, path, body=raw, headers=headers or {})
        response = self.conn.getresponse()
        payload = response.read()
        return response.status, json.loads(payload) if payload else None


def _with_server(server, scenario):
    """Run ``scenario(host, port)`` in a thread while the server serves."""
    import threading

    async def main():
        host, port = await server.start("127.0.0.1", 0)
        loop = asyncio.get_running_loop()
        outcome = await loop.run_in_executor(None, scenario, host, port)
        await server.shutdown()
        return outcome

    return asyncio.run(main())


class TestHttpErrorPaths:
    """The same contracts, end to end over a real socket: structured 4xx
    JSON, never a 500, never a hung connection."""

    def test_http_error_statuses_are_structured_4xx(self, server):
        def scenario(host, port):
            client = _Client(host, port)
            checks = []
            checks.append(client.request("POST", "/v1/predict", body=b"{nope"))
            checks.append(client.request("POST", "/v1/predict", body={"sequences": [["fdiv"]]}))
            checks.append(client.request("POST", "/v1/predict", body={"mapping": "x", "sequences": [["add"]]}))
            checks.append(client.request("POST", "/v1/predict", body={"sequences": [["add"]] * 9}))
            checks.append(client.request("GET", "/nope"))
            checks.append(client.request("DELETE", "/v1/predict", body=b""))
            # The connection survived every error and still serves:
            checks.append(client.request("POST", "/v1/predict", body={"sequences": [["add"]]}))
            return checks

        results = _with_server(server, scenario)
        statuses = [status for status, _ in results]
        assert statuses == [400, 400, 404, 413, 404, 405, 200]
        for status, body in results[:-1]:
            assert 400 <= status < 500, "client mistakes must never be 5xx"
            assert set(body) == {"error"}
            assert {"code", "message"} <= set(body["error"])

    def test_oversized_body_is_413_not_hang(self, registry):
        server = PredictionServer(registry, max_body_bytes=1024)

        def scenario(host, port):
            client = _Client(host, port)
            huge = json.dumps({"sequences": [["add"]] * 2000})
            assert len(huge) > 1024
            return client.request("POST", "/v1/predict", body=huge)

        status, body = _with_server(server, scenario)
        assert status == 413
        assert body["error"]["code"] == "body_too_large"

    def test_malformed_http_line_gets_400_and_close(self, server):
        def scenario(host, port):
            import socket

            with socket.create_connection((host, port), timeout=5) as sock:
                sock.sendall(b"THIS IS NOT HTTP\r\n\r\n")
                data = sock.recv(4096)
                assert data.startswith(b"HTTP/1.1 400")
                # Server closes after a framing error; recv drains to EOF.
                while data:
                    data = sock.recv(4096)
            return True

        assert _with_server(server, scenario)

    def test_reload_over_http(self, tmp_path, other_mapping, server):
        def scenario(host, port):
            client = _Client(host, port)
            first = client.request("POST", "/v1/predict", body={"sequences": [["add"]]})
            (tmp_path / "toy.json").write_text(other_mapping.to_json())
            reload_response = client.request("POST", "/v1/reload", body=b"")
            second = client.request("POST", "/v1/predict", body={"sequences": [["add"]]})
            return first, reload_response, second

        first, reload_response, second = _with_server(server, scenario)
        assert reload_response[0] == 200 and reload_response[1]["reloaded"] == ["toy"]
        assert first[1]["throughputs"] != second[1]["throughputs"]

    def test_stats_surface(self, server):
        def scenario(host, port):
            client = _Client(host, port)
            client.request("POST", "/v1/predict", body={"sequences": [["add"], ["mul"]]})
            client.request("POST", "/v1/predict", body={"sequences": [["add"], ["mul"]]})
            return client.request("GET", "/v1/stats")

        status, stats = _with_server(server, scenario)
        assert status == 200
        assert stats["requests"]["predict"] == 2
        assert stats["cache"]["hits"] == 2 and stats["cache"]["misses"] == 2
        assert stats["batches"] == {"count": 1, "entries": 2, "max": 2, "mean": 2.0}
        assert stats["latency"]["count"] == 2
        assert stats["mappings"]["toy"]["generation"] == 1
        assert stats["mappings"]["toy"]["fingerprint"]
