"""Tests for the LP throughput model (Definition 3, Section 3.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Experiment,
    ExperimentError,
    MappingError,
    PortSpace,
    ThreeLevelMapping,
    TwoLevelMapping,
)
from repro.throughput import build_lp, lp_throughput, lp_throughput_masses
from repro.throughput.bottleneck import bottleneck_throughput_reference


class TestLPBasics:
    def test_example_1(self, paper_two_level, paper_experiment):
        assert lp_throughput(paper_two_level, paper_experiment) == pytest.approx(1.5)

    def test_three_level(self, paper_three_level, paper_experiment):
        assert lp_throughput(paper_three_level, paper_experiment) == pytest.approx(2.5)

    def test_empty_masses_rejected(self):
        with pytest.raises(ExperimentError):
            lp_throughput_masses({}, 2)

    def test_invalid_mask_rejected(self):
        with pytest.raises(MappingError):
            lp_throughput_masses({0b100: 1.0}, 2)
        with pytest.raises(MappingError):
            lp_throughput_masses({0: 1.0}, 2)

    def test_invalid_port_count_rejected(self):
        with pytest.raises(MappingError):
            build_lp({1: 1.0}, 0)

    def test_single_port_saturation(self):
        assert lp_throughput_masses({0b1: 7.0}, 1) == pytest.approx(7.0)

    def test_lp_problem_reuse(self):
        problem = build_lp({0b01: 1.0, 0b11: 1.0}, 2)
        assert problem.solve() == pytest.approx(1.0)
        # Solving twice gives the same answer (no hidden state).
        assert problem.solve() == pytest.approx(1.0)


class TestThreeLevelReduction:
    def test_reduction_matches_direct_two_level(self):
        """Section 3.2: three-level throughput equals the two-level
        throughput of the µop multiset experiment."""
        ports = PortSpace.numbered(3)
        m3 = ThreeLevelMapping(
            ports,
            {
                "x": {0b001: 2, 0b110: 1},
                "y": {0b110: 1},
            },
        )
        e = Experiment({"x": 1, "y": 2})
        masses = m3.uop_masses(e)
        # Build the equivalent two-level problem over µops-as-instructions.
        uop_names = {mask: f"uop{mask}" for mask in masses}
        m2 = TwoLevelMapping(ports, {uop_names[mask]: mask for mask in masses})
        # Integer masses let us express the µop multiset as an Experiment.
        uop_experiment = Experiment(
            {uop_names[mask]: int(mass) for mask, mass in masses.items()}
        )
        assert lp_throughput(m3, e) == pytest.approx(lp_throughput(m2, uop_experiment))


@st.composite
def random_problem(draw):
    num_ports = draw(st.integers(min_value=1, max_value=5))
    full = (1 << num_ports) - 1
    masses = draw(
        st.dictionaries(
            st.integers(min_value=1, max_value=full),
            st.floats(min_value=0.5, max_value=6.0, allow_nan=False),
            min_size=1,
            max_size=5,
        )
    )
    return masses, num_ports


class TestLPAgainstBottleneck:
    @given(random_problem())
    @settings(max_examples=50, deadline=None)
    def test_lp_equals_bottleneck(self, problem):
        masses, num_ports = problem
        lp = lp_throughput_masses(masses, num_ports)
        bn = bottleneck_throughput_reference(masses, num_ports)
        assert lp == pytest.approx(bn, rel=1e-6, abs=1e-9)

    @given(random_problem(), st.floats(min_value=0.5, max_value=4.0))
    @settings(max_examples=30, deadline=None)
    def test_scaling_linearity(self, problem, factor):
        """t* is positively homogeneous: scaling all masses scales t*."""
        masses, num_ports = problem
        scaled = {mask: mass * factor for mask, mass in masses.items()}
        assert lp_throughput_masses(scaled, num_ports) == pytest.approx(
            factor * lp_throughput_masses(masses, num_ports), rel=1e-6
        )

    @given(random_problem())
    @settings(max_examples=30, deadline=None)
    def test_monotonicity_in_mass(self, problem):
        """Adding mass never decreases throughput."""
        masses, num_ports = problem
        heavier = dict(masses)
        first = next(iter(heavier))
        heavier[first] += 1.0
        assert lp_throughput_masses(heavier, num_ports) >= lp_throughput_masses(
            masses, num_ports
        ) - 1e-9
