"""Tests for fitness scalarization (Section 4.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import InferenceError
from repro.pmevo import normalize_objective, scalarized_fitness
from repro.pmevo.fitness import SCALE


class TestNormalizeObjective:
    def test_maps_extremes(self):
        out = normalize_objective(np.array([2.0, 4.0, 3.0]))
        assert out[0] == 0.0
        assert out[1] == SCALE
        assert out[2] == pytest.approx(SCALE / 2)

    def test_degenerate_population_maps_to_zero(self):
        out = normalize_objective(np.array([3.0, 3.0, 3.0]))
        assert out.tolist() == [0.0, 0.0, 0.0]

    def test_empty_rejected(self):
        with pytest.raises(InferenceError):
            normalize_objective(np.array([]))

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=2,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_range_property(self, values):
        out = normalize_objective(np.array(values))
        assert np.all(np.isfinite(out))
        assert np.all(out >= 0.0)
        assert np.all(out <= SCALE + 1e-9)
        # Order preserved — except for populations the normalization cannot
        # resolve (equal values, or a subnormal span that would overflow
        # the scale factor), which map to all zeros by contract.
        if np.any(out > 0.0):
            order_in = np.argsort(values, kind="stable")
            order_out = np.argsort(out, kind="stable")
            assert np.array_equal(order_in, order_out)

    def test_subnormal_span_is_degenerate(self):
        # 5e-324 is the smallest positive double: SCALE/span overflows to
        # inf and 0*inf is NaN — regression for the hypothesis-found case.
        out = normalize_objective(np.array([0.0, 5e-324]))
        assert out.tolist() == [0.0, 0.0]


class TestScalarizedFitness:
    def test_combines_both_objectives(self):
        davgs = np.array([0.0, 1.0])
        volumes = np.array([10.0, 0.0])
        fitness = scalarized_fitness(davgs, volumes)
        # Each candidate is best in one objective and worst in the other.
        assert fitness[0] == pytest.approx(SCALE)
        assert fitness[1] == pytest.approx(SCALE)

    def test_dominating_candidate_wins(self):
        davgs = np.array([0.1, 0.5, 0.1])
        volumes = np.array([5.0, 5.0, 9.0])
        fitness = scalarized_fitness(davgs, volumes)
        assert np.argmin(fitness) == 0  # weakly dominates both others

    def test_shape_mismatch_rejected(self):
        with pytest.raises(InferenceError):
            scalarized_fitness(np.array([1.0]), np.array([1.0, 2.0]))
