"""Tests for the measurement harness (Definition 1, Section 4.2)."""

import pytest

from repro.core import Experiment, MeasurementError
from repro.machine import Machine, MeasurementConfig, toy_machine


class TestMeasurementConfig:
    def test_validation(self):
        with pytest.raises(MeasurementError):
            MeasurementConfig(warmup_iterations=0)
        with pytest.raises(MeasurementError):
            MeasurementConfig(repetitions=0)
        with pytest.raises(MeasurementError):
            MeasurementConfig(spike_probability=1.5)


class TestMachineMeasurement:
    def test_noise_free_determinism(self):
        machine = toy_machine(num_ports=3, measurement=MeasurementConfig(noisy=False))
        e = Experiment({machine.isa.names[0]: 1})
        assert machine.measure(e) == machine.measure(e)

    def test_memoization(self):
        machine = toy_machine(num_ports=3, measurement=MeasurementConfig(noisy=False))
        e = Experiment({machine.isa.names[0]: 1})
        machine.measure(e)
        before = machine.simulated_instructions
        machine.measure(e)
        assert machine.simulated_instructions == before  # cache hit, no sim

    def test_noise_is_bounded_and_median_filtered(self):
        quiet = toy_machine(num_ports=3, measurement=MeasurementConfig(noisy=False))
        noisy = toy_machine(
            num_ports=3,
            measurement=MeasurementConfig(
                noisy=True, jitter_sigma=0.004, spike_probability=0.05, seed=11
            ),
        )
        for name in quiet.isa.names[:4]:
            e = Experiment({name: 1})
            truth = quiet.measure(e)
            observed = noisy.measure(e)
            # Median over repetitions keeps the value within ~2% of truth.
            assert observed == pytest.approx(truth, rel=0.02)

    def test_measure_many(self):
        machine = toy_machine(num_ports=3, measurement=MeasurementConfig(noisy=False))
        names = machine.isa.names[:3]
        experiments = [Experiment({n: 1}) for n in names]
        measured = machine.measure_many(experiments)
        assert len(measured) == 3
        assert all(item.throughput > 0 for item in measured)

    def test_throughput_additivity_for_conflicting_instructions(self):
        """Two forms of the same class share all ports: measured pair
        throughput equals the sum of the singleton throughputs
        (Section 4.1's experiment design rationale)."""
        machine = toy_machine(num_ports=3, measurement=MeasurementConfig(noisy=False))
        isa = machine.isa
        # Forms of the same semantic class by construction of the toy ISA.
        same_class = [f.name for f in isa if f.semantic_class == "class0"]
        a, b = same_class[:2]
        t_a = machine.measure(Experiment({a: 1}))
        t_b = machine.measure(Experiment({b: 1}))
        t_ab = machine.measure(Experiment({a: 1, b: 1}))
        assert t_ab == pytest.approx(t_a + t_b, rel=0.05)

    def test_ground_truth_mapping_covers_isa(self):
        machine = toy_machine(num_ports=3)
        mapping = machine.ground_truth_mapping()
        assert set(mapping.instructions) == set(machine.isa.names)

    def test_describe(self):
        machine = toy_machine(num_ports=3)
        text = machine.describe()
        assert "TOY3" in text and "3 ports" in text
