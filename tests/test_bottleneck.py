"""Tests for the bottleneck simulation algorithm (Equation 1).

The central correctness property (Appendix A of the paper): the bottleneck
algorithm computes exactly the LP optimum.  We check all implementation
variants against each other and against the LP on random mappings and
experiments via hypothesis.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ExperimentError, MappingError
from repro.throughput import (
    bottleneck_throughput,
    bottleneck_throughput_dense,
    bottleneck_throughput_reference,
    bottleneck_throughput_unions,
    lp_throughput_masses,
)
from repro.throughput.bottleneck import dense_mass_vector, popcounts, zeta_transform


def masses_strategy(max_ports: int = 6):
    """Random (masses, num_ports) pairs with at least one µop."""

    def build(num_ports: int):
        full = (1 << num_ports) - 1
        return st.dictionaries(
            st.integers(min_value=1, max_value=full),
            st.floats(min_value=0.25, max_value=8.0, allow_nan=False),
            min_size=1,
            max_size=6,
        ).map(lambda d: (d, num_ports))

    return st.integers(min_value=1, max_value=max_ports).flatmap(build)


class TestExampleFromPaper:
    def test_example_1(self, paper_two_level, paper_experiment):
        masses = paper_two_level.uop_masses(paper_experiment)
        assert bottleneck_throughput_reference(masses, 3) == pytest.approx(1.5)
        assert bottleneck_throughput_dense(masses, 3) == pytest.approx(1.5)
        assert bottleneck_throughput_unions(masses, 3) == pytest.approx(1.5)
        assert bottleneck_throughput(masses, 3) == pytest.approx(1.5)

    def test_three_level_example(self, paper_three_level, paper_experiment):
        masses = paper_three_level.uop_masses(paper_experiment)
        # U1 mass 2 on {P1} alone gives 2; U2 mass 3 on {P1,P2} plus U1 gives
        # (2+3)/2 = 2.5; adding P3 gives (2+3+1)/3 = 2.0 -> max is 2.5.
        assert bottleneck_throughput(masses, 3) == pytest.approx(2.5)


class TestValidation:
    def test_empty_masses_rejected(self):
        with pytest.raises(ExperimentError):
            bottleneck_throughput_reference({}, 3)

    def test_zero_mask_rejected(self):
        with pytest.raises(MappingError):
            bottleneck_throughput_reference({0: 1.0}, 3)

    def test_foreign_mask_rejected(self):
        with pytest.raises(MappingError):
            bottleneck_throughput_dense({0b1000: 1.0}, 3)

    def test_negative_mass_rejected(self):
        with pytest.raises(ExperimentError):
            bottleneck_throughput_unions({1: -1.0}, 3)

    def test_nonpositive_ports_rejected(self):
        with pytest.raises(MappingError):
            bottleneck_throughput({1: 1.0}, 0)


class TestKnownValues:
    def test_single_uop_single_port(self):
        assert bottleneck_throughput({0b1: 4.0}, 1) == pytest.approx(4.0)

    def test_mass_spreads_over_ports(self):
        assert bottleneck_throughput({0b11: 4.0}, 2) == pytest.approx(2.0)
        assert bottleneck_throughput({0b111: 6.0}, 3) == pytest.approx(2.0)

    def test_disjoint_uops(self):
        masses = {0b01: 1.0, 0b10: 3.0}
        assert bottleneck_throughput(masses, 2) == pytest.approx(3.0)

    def test_nested_uops(self):
        # 1 unit restricted to P0, 1 unit on {P0,P1}: bottleneck is {P0,P1}
        # with mass 2 over 2 ports vs {P0} with mass 1 -> 1.0.
        masses = {0b01: 1.0, 0b11: 1.0}
        assert bottleneck_throughput(masses, 2) == pytest.approx(1.0)
        # Heavier restricted mass makes the single port the bottleneck.
        masses = {0b01: 3.0, 0b11: 1.0}
        assert bottleneck_throughput(masses, 2) == pytest.approx(3.0)

    def test_zero_mass_entries_ignored(self):
        assert bottleneck_throughput_unions({0b1: 0.0, 0b10: 2.0}, 2) == pytest.approx(2.0)


class TestAgreement:
    @given(masses_strategy())
    @settings(max_examples=150, deadline=None)
    def test_all_variants_agree(self, masses_and_ports):
        masses, num_ports = masses_and_ports
        reference = bottleneck_throughput_reference(masses, num_ports)
        assert bottleneck_throughput_dense(masses, num_ports) == pytest.approx(reference)
        assert bottleneck_throughput_unions(masses, num_ports) == pytest.approx(reference)
        assert bottleneck_throughput(masses, num_ports) == pytest.approx(reference)

    @given(masses_strategy(max_ports=5))
    @settings(max_examples=60, deadline=None)
    def test_bottleneck_equals_lp(self, masses_and_ports):
        """Appendix A: the bottleneck algorithm solves the LP exactly."""
        masses, num_ports = masses_and_ports
        if all(mass == 0.0 for mass in masses.values()):
            return
        lp = lp_throughput_masses(masses, num_ports)
        bn = bottleneck_throughput_reference(masses, num_ports)
        assert bn == pytest.approx(lp, rel=1e-6, abs=1e-9)


class TestDenseHelpers:
    def test_popcounts(self):
        table = popcounts(3)
        assert table.tolist() == [0, 1, 1, 2, 1, 2, 2, 3]

    def test_dense_mass_vector(self):
        vec = dense_mass_vector({0b01: 1.5, 0b10: 2.0}, 2)
        assert vec.tolist() == [0.0, 1.5, 2.0, 0.0]

    def test_zeta_transform_manual(self):
        values = np.array([0.0, 1.0, 2.0, 4.0])
        out = zeta_transform(values.copy(), 2)
        # S[Q] = sum of values over subsets of Q.
        assert out.tolist() == [0.0, 1.0, 2.0, 7.0]

    def test_zeta_transform_batched_rows(self):
        values = np.array([[0.0, 1.0, 2.0, 4.0], [1.0, 0.0, 0.0, 0.0]])
        out = zeta_transform(values.copy(), 2)
        assert out[0].tolist() == [0.0, 1.0, 2.0, 7.0]
        assert out[1].tolist() == [1.0, 1.0, 1.0, 1.0]

    def test_zeta_transform_shape_mismatch(self):
        with pytest.raises(MappingError):
            zeta_transform(np.zeros(5), 2)
