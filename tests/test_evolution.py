"""Tests for the evolutionary algorithm (Algorithm 1)."""

import numpy as np
import pytest

from repro.pmevo.testing import measurements_from_truth as _measurements_from_truth
from repro.core import InferenceError, PortSpace
from repro.pmevo import EvolutionConfig, PortMappingEvolver


class TestEvolutionConfigValidation:
    def test_bad_population(self):
        with pytest.raises(InferenceError):
            EvolutionConfig(population_size=1)

    def test_bad_generations(self):
        with pytest.raises(InferenceError):
            EvolutionConfig(max_generations=0)

    def test_bad_mutation_rate(self):
        with pytest.raises(InferenceError):
            EvolutionConfig(mutation_rate=1.5)


class TestEvolverSetup:
    def test_missing_singletons_rejected(self):
        names = ("x",)
        measured, _ = _measurements_from_truth({"x": {0b1: 1}}, names, 1)
        with pytest.raises(InferenceError):
            PortMappingEvolver(PortSpace.numbered(1), measured, {})


class TestEvolutionRecovery:
    def test_recovers_simple_two_port_truth(self):
        truth = {"a": {0b01: 1}, "b": {0b10: 1}, "c": {0b11: 1}}
        names = ("a", "b", "c")
        measured, singles = _measurements_from_truth(
            truth, names, 2, extra_pairs=[{"a": 1, "b": 1, "c": 1}.items()]
        )
        evolver = PortMappingEvolver(
            PortSpace.numbered(2),
            measured,
            singles,
            EvolutionConfig(population_size=80, max_generations=60, seed=0),
        )
        result = evolver.run()
        assert result.davg == pytest.approx(0.0, abs=1e-9)
        assert result.generations <= 60
        assert result.evaluations > 0
        assert len(result.history) == result.generations

    def test_finds_multi_uop_decomposition(self):
        # 'st' needs two µops: one shared with 'ad', one exclusive.
        truth = {"ad": {0b011: 1}, "mu": {0b100: 2}, "st": {0b011: 1, 0b100: 1}}
        names = ("ad", "mu", "st")
        measured, singles = _measurements_from_truth(truth, names, 3)
        evolver = PortMappingEvolver(
            PortSpace.numbered(3),
            measured,
            singles,
            EvolutionConfig(population_size=150, max_generations=80, seed=2),
        )
        result = evolver.run()
        assert result.davg <= 0.02

    def test_seed_reproducibility(self):
        truth = {"a": {0b01: 1}, "b": {0b10: 1}}
        names = ("a", "b")
        measured, singles = _measurements_from_truth(truth, names, 2)
        config = EvolutionConfig(population_size=30, max_generations=20, seed=7)
        ports = PortSpace.numbered(2)
        first = PortMappingEvolver(ports, measured, singles, config).run()
        second = PortMappingEvolver(ports, measured, singles, config).run()
        assert first.mapping == second.mapping
        assert first.davg == second.davg

    def test_history_objectives_never_worsen(self):
        truth = {"a": {0b01: 1}, "b": {0b11: 1}}
        names = ("a", "b")
        measured, singles = _measurements_from_truth(truth, names, 2)
        evolver = PortMappingEvolver(
            PortSpace.numbered(2),
            measured,
            singles,
            EvolutionConfig(population_size=40, max_generations=30, seed=1),
        )
        result = evolver.run()
        best = [stats.best_davg for stats in result.history]
        assert all(b2 <= b1 + 1e-12 for b1, b2 in zip(best, best[1:]))

    def test_mutation_variant_runs(self):
        truth = {"a": {0b01: 1}, "b": {0b10: 1}}
        names = ("a", "b")
        measured, singles = _measurements_from_truth(truth, names, 2)
        evolver = PortMappingEvolver(
            PortSpace.numbered(2),
            measured,
            singles,
            EvolutionConfig(
                population_size=30, max_generations=15, seed=3, mutation_rate=0.2
            ),
        )
        result = evolver.run()
        assert result.davg <= 0.05

    def test_result_mapping_covers_all_instructions(self):
        truth = {"a": {0b01: 1}, "b": {0b10: 1}}
        names = ("a", "b")
        measured, singles = _measurements_from_truth(truth, names, 2)
        result = PortMappingEvolver(
            PortSpace.numbered(2),
            measured,
            singles,
            EvolutionConfig(population_size=20, max_generations=10, seed=0),
        ).run()
        assert set(result.mapping.instructions) == set(names)
        assert result.volume == result.mapping.uop_volume()
