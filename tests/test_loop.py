"""Tests for loop body construction (Section 4.2)."""

import pytest

from repro.codegen import build_loop_body, interleaved_forms
from repro.core import Experiment, ExperimentError, ISAError
from repro.machine import toy_machine


@pytest.fixture(scope="module")
def toy_isa_fixture():
    return toy_machine(num_ports=3).isa


class TestInterleavedForms:
    def test_round_robin_interleaving(self, toy_isa_fixture):
        isa = toy_isa_fixture
        a, b = isa.names[0], isa.names[1]
        experiment = Experiment({a: 3, b: 1})
        sequence = [f.name for f in interleaved_forms(isa, experiment)]
        assert sequence == [a, b, a, a]

    def test_total_count_matches(self, toy_isa_fixture):
        isa = toy_isa_fixture
        a, b, c = isa.names[:3]
        experiment = Experiment({a: 2, b: 5, c: 1})
        sequence = interleaved_forms(isa, experiment)
        assert len(sequence) == experiment.size
        assert sum(1 for f in sequence if f.name == b) == 5


class TestBuildLoopBody:
    def test_unrolls_to_target_length(self, toy_isa_fixture):
        isa = toy_isa_fixture
        a, b = isa.names[:2]
        experiment = Experiment({a: 1, b: 1})
        body, factor = build_loop_body(isa, experiment, target_length=50)
        assert factor == 25
        assert len(body) == 50

    def test_large_experiment_single_copy(self, toy_isa_fixture):
        isa = toy_isa_fixture
        a = isa.names[0]
        experiment = Experiment({a: 60})
        body, factor = build_loop_body(isa, experiment, target_length=50)
        assert factor == 1
        assert len(body) == 60

    def test_body_never_shorter_than_experiment(self, toy_isa_fixture):
        isa = toy_isa_fixture
        a = isa.names[0]
        body, factor = build_loop_body(isa, Experiment({a: 7}), target_length=50)
        assert len(body) == 7 * factor >= 50

    def test_unknown_instruction_rejected(self, toy_isa_fixture):
        with pytest.raises(ISAError):
            build_loop_body(toy_isa_fixture, Experiment({"ghost": 1}))

    def test_bad_target_rejected(self, toy_isa_fixture):
        a = toy_isa_fixture.names[0]
        with pytest.raises(ExperimentError):
            build_loop_body(toy_isa_fixture, Experiment({a: 1}), target_length=0)

    def test_allocation_state_threads_through_copies(self, toy_isa_fixture):
        """Registers must keep rotating across unrolled copies, not reset."""
        isa = toy_isa_fixture
        a = isa.names[0]
        body, _ = build_loop_body(isa, Experiment({a: 1}), target_length=20)
        destinations = [i.written_registers()[0] for i in body]
        assert len(set(destinations)) > 5
