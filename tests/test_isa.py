"""Unit tests for repro.core.isa."""

import pytest

from repro.core import ISA, ISAError, InstructionForm, OperandKind, OperandSpec
from repro.core.isa import gpr, imm, make_form, mem, vec


class TestOperandSpec:
    def test_validation(self):
        with pytest.raises(ISAError):
            OperandSpec(OperandKind.GPR, 0)
        with pytest.raises(ISAError):
            OperandSpec(OperandKind.GPR, 64, is_read=False, is_written=False)
        with pytest.raises(ISAError):
            OperandSpec(OperandKind.IMM, 32, is_read=True, is_written=True)

    def test_render(self):
        assert gpr(64).render() == "R64"
        assert gpr(64, read=True, write=True).render() == "R64rw"
        assert gpr(32, read=False, write=True).render() == "R32w"
        assert vec(256).render() == "V256"
        assert mem(64).render() == "M64"
        assert imm().render() == "I32"

    def test_is_register(self):
        assert gpr(64).is_register
        assert vec(128).is_register
        assert not mem(64).is_register
        assert not imm().is_register


class TestInstructionForm:
    def test_make_form_canonical_name(self):
        form = make_form("add", [gpr(64, read=True, write=True), gpr(64)], "int_alu")
        assert form.name == "add_r64rw_r64"
        assert form.mnemonic == "add"
        assert form.semantic_class == "int_alu"
        assert form.latency_class == "int_alu"  # defaults to semantic class

    def test_reads_writes(self):
        form = make_form(
            "store", [mem(64), gpr(64)], "store_gpr"
        )
        assert form.reads == (0, 1)
        assert form.writes == ()
        load = make_form("load", [gpr(64, read=False, write=True), mem(64)], "load_gpr")
        assert load.writes == (0,)
        assert load.reads == (1,)

    def test_render(self):
        form = make_form("add", [gpr(64, read=True, write=True), gpr(64)], "int_alu")
        assert form.render() == "add R64rw, R64"
        bare = InstructionForm("nop", "nop", ())
        assert bare.render() == "nop"

    def test_equality_by_name(self):
        a = make_form("add", [gpr(64, read=True, write=True), gpr(64)], "x")
        b = make_form("add", [gpr(64, read=True, write=True), gpr(64)], "y")
        assert a == b  # same canonical name
        assert hash(a) == hash(b)

    def test_empty_name_rejected(self):
        with pytest.raises(ISAError):
            InstructionForm("", "add", ())
        with pytest.raises(ISAError):
            InstructionForm("x", "", ())


class TestISA:
    def _form(self, name: str, cls: str = "c") -> InstructionForm:
        return InstructionForm(name, name, (gpr(64, read=True, write=True),), cls)

    def test_add_and_lookup(self):
        isa = ISA("test", [self._form("a"), self._form("b")])
        assert len(isa) == 2
        assert isa["a"].name == "a"
        assert "a" in isa and "zz" not in isa
        assert isa.names == ("a", "b")

    def test_duplicate_rejected(self):
        isa = ISA("test", [self._form("a")])
        with pytest.raises(ISAError):
            isa.add(self._form("a"))

    def test_unknown_lookup(self):
        with pytest.raises(ISAError):
            ISA("test", [self._form("a")])["b"]

    def test_restrict(self):
        isa = ISA("test", [self._form("a"), self._form("b"), self._form("c")])
        sub = isa.restrict(["c", "a"])
        assert sub.names == ("a", "c")  # original order preserved
        with pytest.raises(ISAError):
            isa.restrict(["nope"])

    def test_by_semantic_class(self):
        isa = ISA("test", [self._form("a", "x"), self._form("b", "x"), self._form("c", "y")])
        groups = isa.by_semantic_class()
        assert sorted(groups) == ["x", "y"]
        assert [f.name for f in groups["x"]] == ["a", "b"]

    def test_empty_name_rejected(self):
        with pytest.raises(ISAError):
            ISA("")
