"""Tests for heat-map binning (Figure 7)."""

import numpy as np
import pytest

from repro.analysis import build_heatmap, diagonal_mass
from repro.core import ReproError


class TestBuildHeatmap:
    def test_diagonal_data_lands_on_diagonal(self):
        values = np.linspace(0.5, 30.0, 100)
        heatmap = build_heatmap(values, values, bins=35)
        assert heatmap.counts.sum() == 100
        assert diagonal_mass(heatmap, radius=0) == pytest.approx(1.0)

    def test_over_estimation_lands_above_diagonal(self):
        measured = np.linspace(1.0, 10.0, 50)
        predicted = measured * 3.0
        heatmap = build_heatmap(predicted, measured, bins=35)
        rows, cols = np.nonzero(heatmap.counts)
        assert np.all(rows >= cols)  # predicted axis is rows
        assert diagonal_mass(heatmap, radius=1) < 0.5

    def test_limit_clamps_outliers(self):
        heatmap = build_heatmap(
            np.array([1.0, 100.0]), np.array([1.0, 1.0]), bins=10, limit=10.0
        )
        assert heatmap.counts.sum() == 2
        # measured 1.0 with scale bins/limit = 1 lands in column 1; the
        # predicted outlier 100.0 clamps into the last row.
        assert heatmap.counts[9, 1] == 1

    def test_default_limit_covers_data(self):
        heatmap = build_heatmap(np.array([3.0]), np.array([7.0]), bins=5)
        assert heatmap.limit == pytest.approx(7.0)

    def test_validation(self):
        with pytest.raises(ReproError):
            build_heatmap(np.array([]), np.array([]))
        with pytest.raises(ReproError):
            build_heatmap(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ReproError):
            build_heatmap(np.array([1.0]), np.array([1.0]), bins=1)

    def test_render_produces_grid(self):
        values = np.linspace(0.5, 10.0, 200)
        heatmap = build_heatmap(values, values, predictor="p", machine="m", bins=10)
        text = heatmap.render()
        lines = text.splitlines()
        assert "p on m" in lines[0]
        assert len(lines) == 1 + 1 + 10 + 1  # header + top bar + rows + bottom
        assert all(line.startswith("|") and line.endswith("|") for line in lines[2:-1])


class TestDiagonalMass:
    def test_radius_widens_capture(self):
        measured = np.linspace(1.0, 10.0, 50)
        predicted = measured * 1.15  # slightly off-diagonal
        heatmap = build_heatmap(predicted, measured, bins=20)
        assert diagonal_mass(heatmap, radius=0) <= diagonal_mass(heatmap, radius=2)
        assert diagonal_mass(heatmap, radius=19) == pytest.approx(1.0)
