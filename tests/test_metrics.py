"""Tests for accuracy metrics (MAPE / Pearson / Spearman)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import evaluate_predictor, mape, pearson_cc, spearman_cc
from repro.core import Experiment, ExperimentSet, ReproError


class TestMape:
    def test_perfect_prediction(self):
        assert mape([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        # Errors: |1.1-1|/1 = 0.1, |1.8-2|/2 = 0.1 -> 10%.
        assert mape([1.1, 1.8], [1.0, 2.0]) == pytest.approx(10.0)

    def test_relative_to_measurement(self):
        assert mape([2.0], [1.0]) == pytest.approx(100.0)
        assert mape([1.0], [2.0]) == pytest.approx(50.0)

    def test_nonpositive_measurement_rejected(self):
        with pytest.raises(ReproError):
            mape([1.0], [0.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ReproError):
            mape([1.0, 2.0], [1.0])


class TestCorrelations:
    def test_perfect_linear(self):
        assert pearson_cc([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
        assert spearman_cc([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_anticorrelation(self):
        assert pearson_cc([3, 2, 1], [1, 2, 3]) == pytest.approx(-1.0)
        assert spearman_cc([3, 2, 1], [1, 2, 3]) == pytest.approx(-1.0)

    def test_spearman_only_needs_monotonicity(self):
        predicted = [1.0, 4.0, 9.0, 16.0]  # monotone, non-linear
        measured = [1.0, 2.0, 3.0, 4.0]
        assert spearman_cc(predicted, measured) == pytest.approx(1.0)
        assert pearson_cc(predicted, measured) < 1.0

    def test_constant_series_yields_zero(self):
        assert pearson_cc([1.0, 1.0], [1.0, 2.0]) == 0.0
        assert spearman_cc([1.0, 1.0], [1.0, 2.0]) == 0.0

    @given(
        st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=3, max_size=20),
        st.floats(min_value=0.1, max_value=3.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_scale_invariance(self, measured, factor):
        """A predictor that is off by a constant factor keeps CC = 1."""
        measured = np.array(measured)
        if np.std(measured) < 1e-6 * np.mean(measured):
            return  # (near-)constant series: correlation is undefined
        predicted = measured * factor
        assert pearson_cc(predicted, measured) == pytest.approx(1.0, abs=1e-6)
        assert spearman_cc(predicted, measured) == pytest.approx(1.0, abs=1e-6)


class _ConstantPredictor:
    name = "const"

    def predict(self, experiment):
        return float(experiment.size)


class TestEvaluatePredictor:
    def test_report_fields(self):
        benchmark = ExperimentSet()
        benchmark.add(Experiment({"a": 1}), 1.0)
        benchmark.add(Experiment({"a": 2}), 2.0)
        benchmark.add(Experiment({"a": 3}), 2.5)
        report = evaluate_predictor(_ConstantPredictor(), benchmark, "M")
        assert report.predictor == "const"
        assert report.machine == "M"
        assert report.num_experiments == 3
        assert report.mape == pytest.approx(100 * (0 + 0 + 0.5 / 2.5) / 3)
        assert 0.9 <= report.pearson <= 1.0
        row = report.row()
        assert row["predictor"] == "const"
        assert row["MAPE"].endswith("%")
