"""Cross-backend equivalence of the three throughput models.

The evolutionary search is only as trustworthy as the fast path it runs on:
the batched numpy evaluator must agree with the bottleneck simulation
algorithm, and both must agree with the reference LP of Definition 3, or a
speedup would silently change inferred mappings.  This suite pins that
invariant on randomized mappings and experiment sets: all backends must
agree on t* within 1e-9.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Experiment, PortSpace, ThreeLevelMapping
from repro.pmevo import PackedPopulation, random_genome
from repro.throughput import BatchedThroughputEvaluator
from repro.throughput.bottleneck import (
    bottleneck_throughput,
    bottleneck_throughput_dense,
    bottleneck_throughput_reference,
    bottleneck_throughput_unions,
)
from repro.throughput.lp import lp_throughput, lp_throughput_masses

TOLERANCE = 1e-9


def _random_instance(seed: int):
    """A random (ports, genome, experiments) triple with bounded size."""
    rng = np.random.default_rng(seed)
    num_ports = int(rng.integers(2, 5))
    names = tuple(f"op{i}" for i in range(int(rng.integers(2, 6))))
    singles = {name: float(rng.uniform(0.5, 3.0)) for name in names}
    genome = random_genome(rng, names, num_ports, singles)
    experiments = []
    for _ in range(8):
        size = min(int(rng.integers(1, 4)), len(names))
        support = rng.choice(len(names), size=size, replace=False)
        counts = {names[int(i)]: int(rng.integers(1, 5)) for i in support}
        experiments.append(Experiment(counts))
    return num_ports, names, genome, experiments


@pytest.mark.parametrize("seed", range(20))
def test_all_backends_agree_on_random_instances(seed):
    num_ports, names, genome, experiments = _random_instance(seed)
    ports = PortSpace.numbered(num_ports)
    mapping = ThreeLevelMapping(ports, genome)
    batched = BatchedThroughputEvaluator(experiments, names, num_ports)
    fast = batched.throughputs(genome)

    for experiment, from_batched in zip(experiments, fast):
        masses = mapping.uop_masses(experiment)
        reference = bottleneck_throughput_reference(masses, num_ports)
        dense = bottleneck_throughput_dense(masses, num_ports)
        unions = bottleneck_throughput_unions(masses, num_ports)
        dispatched = bottleneck_throughput(masses, num_ports)
        lp = lp_throughput_masses(masses, num_ports)
        context = f"seed={seed} experiment={dict(experiment)}"
        assert from_batched == pytest.approx(reference, abs=TOLERANCE), context
        assert dense == pytest.approx(reference, abs=TOLERANCE), context
        assert unions == pytest.approx(reference, abs=TOLERANCE), context
        assert dispatched == pytest.approx(reference, abs=TOLERANCE), context
        assert lp == pytest.approx(reference, abs=TOLERANCE), context


def test_lp_convenience_wrapper_matches_batched(paper_three_level, paper_experiment):
    """The paper's Example 2 instance through every entry point."""
    names = tuple(paper_three_level.instructions)
    batched = BatchedThroughputEvaluator(
        [paper_experiment], names, paper_three_level.ports.num_ports
    )
    genome = {name: dict(uops) for name, uops in paper_three_level.items()}
    from_batched = float(batched.throughputs(genome)[0])
    from_lp = lp_throughput(paper_three_level, paper_experiment)
    assert from_batched == pytest.approx(from_lp, abs=TOLERANCE)
    assert from_batched == pytest.approx(2.5, abs=TOLERANCE)


@pytest.mark.parametrize("seed", range(10))
def test_packed_kernel_agrees_with_all_backends(seed):
    """The population-scale packed kernel is another backend of the same
    model: for a packed population its per-genome throughputs must agree
    with the per-genome dict path (bit-identically, by construction) and
    with the reference bottleneck algorithm within 1e-9."""
    num_ports, names, _, experiments = _random_instance(seed)
    rng = np.random.default_rng(seed + 1000)
    singles = {name: float(rng.uniform(0.5, 3.0)) for name in names}
    genomes = [random_genome(rng, names, num_ports, singles) for _ in range(7)]
    ports = PortSpace.numbered(num_ports)
    batched = BatchedThroughputEvaluator(experiments, names, num_ports)

    packed = PackedPopulation.from_genomes(genomes, names)
    from_packed = batched.throughputs_from_packed(packed, engine="numpy")
    legacy = np.stack([batched.throughputs(genome) for genome in genomes])
    assert np.array_equal(from_packed, legacy)

    for p, genome in enumerate(genomes):
        mapping = ThreeLevelMapping(ports, genome)
        for e, experiment in enumerate(experiments):
            masses = mapping.uop_masses(experiment)
            reference = bottleneck_throughput_reference(masses, num_ports)
            context = f"seed={seed} genome={p} experiment={dict(experiment)}"
            assert from_packed[p, e] == pytest.approx(
                reference, abs=TOLERANCE
            ), context


@pytest.mark.parametrize("seed", [3, 11])
def test_agreement_survives_fractional_masses(seed):
    """Congruence scaling produces non-integer masses; backends still agree."""
    rng = np.random.default_rng(seed)
    num_ports = 3
    masses = {
        int(mask): float(rng.uniform(0.1, 4.0))
        for mask in rng.choice(range(1, 1 << num_ports), size=4, replace=False)
    }
    reference = bottleneck_throughput_reference(masses, num_ports)
    assert bottleneck_throughput_dense(masses, num_ports) == pytest.approx(
        reference, abs=TOLERANCE
    )
    assert bottleneck_throughput_unions(masses, num_ports) == pytest.approx(
        reference, abs=TOLERANCE
    )
    assert lp_throughput_masses(masses, num_ports) == pytest.approx(
        reference, abs=TOLERANCE
    )
