"""The equivalence wall around the prediction serving layer.

Serving must be a *transparent* cache over the analytical model: the float a
client receives for a sequence is one specific value, regardless of

* whether the cache was cold, warm, or the sequence was coalesced into a
  concurrent request's in-flight batch,
* which other sequences happened to share its evaluation batch (BLAS batch
  matmuls are NOT bit-stable across batch widths — the fixed-mapping kernel
  works per-row precisely to kill that hazard),
* whether the caller asked over HTTP or called the backend directly.

The properties pinned here:

1. served == direct single-sequence ``BatchedThroughputEvaluator`` calls,
   bit for bit;
2. served == ``FixedMappingEvaluator``, bit for bit, for any batch split;
3. served vs ``bottleneck_throughput``: within the repo's standard 1e-9
   cross-backend tolerance (the backends are pinned against each other in
   ``tests/test_backend_equivalence.py``);
4. cold == warm == coalesced, bit for bit.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Experiment, PortSpace, ThreeLevelMapping
from repro.serving import MappingRegistry, PredictionServer
from repro.throughput import (
    BatchedThroughputEvaluator,
    FixedMappingEvaluator,
    bottleneck_throughput,
)


def _random_problem(seed: int, num_sequences: int = 12):
    """A random mapping plus random request sequences over its ISA."""
    rng = np.random.default_rng(seed)
    num_ports = int(rng.integers(2, 6))
    full = (1 << num_ports) - 1
    names = tuple(f"op{i}" for i in range(int(rng.integers(2, 8))))
    assignment = {}
    for name in names:
        uops = {}
        for _ in range(int(rng.integers(1, 4))):
            mask = int(rng.integers(1, full + 1))
            uops[mask] = int(rng.integers(1, 4))
        assignment[name] = uops
    mapping = ThreeLevelMapping(PortSpace.numbered(num_ports), assignment)
    sequences = []
    for _ in range(num_sequences):
        size = min(int(rng.integers(1, 5)), len(names))
        support = rng.choice(len(names), size=size, replace=False)
        sequences.append(
            Experiment({names[int(i)]: int(rng.integers(1, 6)) for i in support})
        )
    return mapping, sequences


def _server_for(mapping, mapping_id="m"):
    """A PredictionServer over a throwaway on-disk artifact.

    Plain tempfile (not the tmp_path fixture): hypothesis runs many examples
    per test invocation and function-scoped fixtures are not reset between
    them.
    """
    tmp = tempfile.TemporaryDirectory()
    path = Path(tmp.name) / f"{mapping_id}.json"
    path.write_text(mapping.to_json())
    server = PredictionServer(MappingRegistry([(mapping_id, path)]))
    server._tmp = tmp  # keep the directory alive as long as the server
    return server


def _payload(sequences):
    return {"sequences": [dict(seq) for seq in sequences]}


def _served(server, sequences):
    status, body = asyncio.run(server.handle_predict(_payload(sequences)))
    assert status == 200
    return np.array(body["throughputs"], dtype=np.float64), body["cached"]


def _direct_single(mapping, sequences):
    """The direct backend: one BatchedThroughputEvaluator call per sequence."""
    out = []
    for seq in sequences:
        evaluator = BatchedThroughputEvaluator(
            [seq], mapping.instructions, mapping.ports.num_ports
        )
        out.append(float(evaluator.throughputs(mapping)[0]))
    return np.array(out, dtype=np.float64)


class TestServedEqualsDirect:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_cold_warm_coalesced_and_direct_bit_identical(self, seed):
        mapping, sequences = _random_problem(seed)
        server = _server_for(mapping)

        cold, cold_cached = _served(server, sequences)
        assert not any(cold_cached)
        warm, warm_cached = _served(server, sequences)
        assert all(warm_cached)
        assert np.array_equal(cold, warm)

        direct = _direct_single(mapping, sequences)
        assert np.array_equal(cold, direct)

        fixed = FixedMappingEvaluator(mapping).throughputs(sequences)
        assert np.array_equal(cold, fixed)

        dict_path = np.array(
            [
                bottleneck_throughput(mapping.uop_masses(seq), mapping.ports.num_ports)
                for seq in sequences
            ]
        )
        np.testing.assert_allclose(cold, dict_path, rtol=1e-9, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), split=st.integers(1, 11))
    def test_batch_split_invariance(self, seed, split):
        # The same sequences, batched differently, give the same bits: the
        # per-row kernel makes a prediction independent of its batch-mates.
        mapping, sequences = _random_problem(seed)
        whole = FixedMappingEvaluator(mapping).throughputs(sequences)
        evaluator = FixedMappingEvaluator(mapping)
        parts = [
            evaluator.throughputs(sequences[i : i + split])
            for i in range(0, len(sequences), split)
        ]
        assert np.array_equal(np.concatenate(parts), whole)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_coalesced_concurrent_misses_bit_identical(self, seed):
        # Concurrent requests with overlapping cold sequences: one computes,
        # the others await the in-flight future — all see identical floats.
        mapping, sequences = _random_problem(seed, num_sequences=8)
        server = _server_for(mapping)
        overlap = sequences[: len(sequences) // 2 + 1]

        async def fire():
            return await asyncio.gather(
                server.handle_predict(_payload(sequences)),
                server.handle_predict(_payload(overlap)),
                server.handle_predict(_payload(list(reversed(sequences)))),
            )

        (s1, b1), (s2, b2), (s3, b3) = asyncio.run(fire())
        assert s1 == s2 == s3 == 200
        direct = _direct_single(mapping, sequences)
        assert np.array_equal(np.array(b1["throughputs"]), direct)
        assert np.array_equal(np.array(b2["throughputs"]), direct[: len(overlap)])
        assert np.array_equal(np.array(b3["throughputs"]), direct[::-1])
        assert server.stats.coalesced > 0 or server.cache.hits > 0

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_list_and_count_spellings_share_results_and_cache(self, seed):
        mapping, sequences = _random_problem(seed, num_sequences=6)
        server = _server_for(mapping)
        as_counts = {"sequences": [dict(seq) for seq in sequences]}
        as_lists = {"sequences": [list(seq.instances()) for seq in sequences]}
        _, body_counts = asyncio.run(server.handle_predict(as_counts))
        _, body_lists = asyncio.run(server.handle_predict(as_lists))
        assert body_counts["throughputs"] == body_lists["throughputs"]
        # The list spelling canonicalized onto the cached multiset entries.
        assert all(body_lists["cached"])


class TestServedOverHttp:
    def test_http_response_floats_survive_json_exactly(self):
        # One full-stack pin: the floats on the wire, decoded from the HTTP
        # JSON body, equal the direct backend bit for bit (json round-trips
        # IEEE doubles exactly via repr shortest-round-trip).
        mapping, sequences = _random_problem(7)
        server = _server_for(mapping)

        async def drive():
            host, port = await server.start("127.0.0.1", 0)
            reader, writer = await asyncio.open_connection(host, port)
            payload = json.dumps(_payload(sequences)).encode()
            writer.write(
                b"POST /v1/predict HTTP/1.1\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(payload), payload)
            )
            await writer.drain()
            status_line = await reader.readline()
            headers = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n"):
                    break
                name, _, value = line.decode().partition(":")
                headers[name.strip().lower()] = value.strip()
            body = await reader.readexactly(int(headers["content-length"]))
            writer.close()
            await writer.wait_closed()
            await server.shutdown()
            return status_line, json.loads(body)

        status_line, body = asyncio.run(drive())
        assert b"200" in status_line
        direct = _direct_single(mapping, sequences)
        assert np.array_equal(np.array(body["throughputs"], dtype=np.float64), direct)
