"""Unit tests for repro.codegen.assembly."""

import pytest

from repro.codegen import Immediate, InstructionInstance, MemoryRef, Register
from repro.core import ISAError, OperandKind
from repro.core.isa import gpr, imm, make_form, mem, vec


def _reg(index: int, kind=OperandKind.GPR) -> Register:
    return Register(kind, index)


class TestRegister:
    def test_validation(self):
        with pytest.raises(ISAError):
            Register(OperandKind.MEM, 0)
        with pytest.raises(ISAError):
            Register(OperandKind.GPR, -1)

    def test_render(self):
        assert _reg(3).render() == "r3"
        assert Register(OperandKind.VEC, 7).render() == "v7"


class TestInstructionInstance:
    def test_operand_count_checked(self):
        form = make_form("add", [gpr(64, read=True, write=True), gpr(64)], "alu")
        with pytest.raises(ISAError):
            InstructionInstance(form, (_reg(0),))

    def test_kind_mismatch_rejected(self):
        form = make_form("add", [gpr(64, read=True, write=True), gpr(64)], "alu")
        with pytest.raises(ISAError):
            InstructionInstance(form, (_reg(0), Register(OperandKind.VEC, 1)))
        with pytest.raises(ISAError):
            InstructionInstance(form, (_reg(0), Immediate(3)))

    def test_memory_operand_checked(self):
        form = make_form("load", [gpr(64, read=False, write=True), mem(64)], "load")
        with pytest.raises(ISAError):
            InstructionInstance(form, (_reg(0), _reg(1)))
        ok = InstructionInstance(form, (_reg(0), MemoryRef(_reg(9), 64)))
        assert ok.read_registers() == (_reg(9),)
        assert ok.written_registers() == (_reg(0),)

    def test_reads_and_writes(self):
        form = make_form("add", [gpr(64, read=True, write=True), gpr(64)], "alu")
        instance = InstructionInstance(form, (_reg(0), _reg(1)))
        assert instance.read_registers() == (_reg(0), _reg(1))
        assert instance.written_registers() == (_reg(0),)

    def test_immediate_and_render(self):
        form = make_form("add", [gpr(64, read=True, write=True), imm()], "alu")
        instance = InstructionInstance(form, (_reg(2), Immediate(5)))
        assert instance.render() == "add r2, #5"
        assert instance.read_registers() == (_reg(2),)

    def test_vector_instance(self):
        form = make_form(
            "vadd", [vec(128, read=False, write=True), vec(128), vec(128)], "vec"
        )
        v = lambda i: Register(OperandKind.VEC, i)
        instance = InstructionInstance(form, (v(0), v(1), v(2)))
        assert instance.written_registers() == (v(0),)
        assert instance.read_registers() == (v(1), v(2))
        assert instance.render() == "vadd v0, v1, v2"
