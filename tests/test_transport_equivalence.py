"""Cross-transport equivalence of the island migration transports.

The island model is only trustworthy if *where* an epoch runs cannot change
*what* it computes: Serial, Pool, and Socket transports — and a run that was
killed at a checkpoint and resumed — must all produce byte-identical
serialized :class:`IslandResult`\\ s for a fixed seed.  This is the transport
analogue of ``tests/test_backend_equivalence.py``, which pins the throughput
backends against each other.

Results are normalized before comparison by zeroing the two fields that may
legitimately differ between equivalent runs: ``wall_seconds`` (timing) and
``workers`` (a record of the configuration, not of the search trajectory).
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.pmevo.testing import measurements_from_truth as _measurements_from_truth
from repro.core import PortSpace, TransportError
from repro.pmevo import (
    Checkpointer,
    EvolutionConfig,
    IslandEvolver,
    PoolTransport,
    SerialTransport,
    SocketTransport,
    load_checkpoint,
    run_worker,
)
from repro.pmevo.transport import (
    PROTOCOL_VERSION,
    parse_address,
    recv_frame,
    send_frame,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Keep threaded workers from spending tens of seconds in the reconnect
#: backoff if a shutdown frame is ever lost — tests must fail fast, not hang.
FAST_RECONNECT = dict(max_reconnect_attempts=2, reconnect_window=2.0, jitter_seed=1)


CONFIG = EvolutionConfig(
    population_size=16,
    max_generations=16,
    seed=7,
    islands=3,
    migration_interval=4,
    migration_size=1,
)


def _evolver(transport=None, config=CONFIG):
    truth = {"ad": {0b011: 1}, "mu": {0b100: 2}, "st": {0b011: 1, 0b100: 1}}
    names = ("ad", "mu", "st")
    measured, singles = _measurements_from_truth(truth, names, 3)
    return IslandEvolver(PortSpace.numbered(3), measured, singles, config, transport)


def _normalized(result) -> str:
    """Serialized result with the run-environment fields zeroed."""
    return dataclasses.replace(result, wall_seconds=0.0, workers=0).to_json()


@pytest.fixture(scope="module")
def serial_result():
    return _evolver(SerialTransport()).run()


class TestTransportEquivalence:
    def test_pool_matches_serial(self, serial_result):
        pool = _evolver(PoolTransport(2)).run()
        assert _normalized(pool) == _normalized(serial_result)

    def test_socket_matches_serial(self, serial_result):
        transport = SocketTransport(min_workers=2, heartbeat_timeout=15.0)
        host, port = transport.listen()
        threads = [
            threading.Thread(
                target=run_worker, args=(host, port), kwargs=FAST_RECONNECT, daemon=True
            )
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        result = _evolver(transport).run()
        for thread in threads:
            thread.join(timeout=15)
            assert not thread.is_alive()
        assert _normalized(result) == _normalized(serial_result)
        assert result.transport_stats["epochs"] > 0
        assert result.transport_stats["leases"] >= result.transport_stats["epochs"]

    def test_socket_without_stealing_matches_serial(self, serial_result):
        # Work stealing is an optimization, never a semantic: disabling it
        # must not change a single byte of the result.
        transport = SocketTransport(
            min_workers=1, heartbeat_timeout=15.0, work_stealing=False
        )
        host, port = transport.listen()
        thread = threading.Thread(
            target=run_worker, args=(host, port), kwargs=FAST_RECONNECT, daemon=True
        )
        thread.start()
        result = _evolver(transport).run()
        thread.join(timeout=15)
        assert result.transport_stats["steals"] == 0
        assert _normalized(result) == _normalized(serial_result)

    def test_socket_single_island_batches_matches_serial(self, serial_result):
        # Forcing one-island lease batches exercises the finest-grained
        # leasing path (maximum requeue/steal surface) — still byte-identical.
        transport = SocketTransport(
            min_workers=2, heartbeat_timeout=15.0, max_lease_batch=1
        )
        host, port = transport.listen()
        threads = [
            threading.Thread(
                target=run_worker, args=(host, port), kwargs=FAST_RECONNECT, daemon=True
            )
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        result = _evolver(transport).run()
        for thread in threads:
            thread.join(timeout=15)
        # One-island batches mean at least one lease per island per epoch.
        assert result.transport_stats["leases"] >= 3 * result.transport_stats["epochs"]
        assert _normalized(result) == _normalized(serial_result)

    def test_default_transport_matches_explicit_serial(self, serial_result):
        # IslandEvolver without a transport must behave exactly as before
        # the transport extraction (serial for workers=1).
        assert _normalized(_evolver().run()) == _normalized(serial_result)


class TestSingleIslandParity:
    """Opting into a transport or checkpointing must not change results.

    The pipeline routes any run with a transport/checkpointer/resume through
    ``IslandEvolver`` even for ``islands=1``; that path must reproduce the
    plain sequential run bit-for-bit, or adding ``--checkpoint`` to a
    command would silently change the inferred mapping.
    """

    def test_island_evolver_with_one_island_matches_sequential(self):
        from repro.pmevo import PortMappingEvolver

        truth = {"ad": {0b011: 1}, "mu": {0b100: 2}, "st": {0b011: 1, 0b100: 1}}
        names = ("ad", "mu", "st")
        measured, singles = _measurements_from_truth(truth, names, 3)
        config = EvolutionConfig(population_size=16, max_generations=12, seed=4)
        ports = PortSpace.numbered(3)
        sequential = PortMappingEvolver(ports, measured, singles, config).run()
        island = IslandEvolver(ports, measured, singles, config).run()
        assert island.mapping == sequential.mapping
        assert island.davg == sequential.davg
        assert island.history == sequential.history
        assert island.evaluations == sequential.evaluations

    def test_pipeline_with_transport_matches_plain_run(self, quiet_toy_machine):
        from repro.pmevo import PMEvoConfig, infer_port_mapping

        config = PMEvoConfig(
            evolution=EvolutionConfig(
                population_size=20, max_generations=10, seed=0
            )
        )
        plain = infer_port_mapping(quiet_toy_machine, config=config)
        forced = infer_port_mapping(
            quiet_toy_machine, config=config, transport=SerialTransport()
        )
        assert forced.mapping == plain.mapping
        assert forced.evolution.davg == plain.evolution.davg
        assert forced.evolution.history == plain.evolution.history


class TestSocketFaultTolerance:
    @staticmethod
    def _bad_worker(host, port):
        """Connects, leases one epoch, and dies without answering."""
        import socket as socket_module

        sock = socket_module.create_connection((host, port), timeout=15)
        try:
            send_frame(sock, {"type": "hello", "protocol": PROTOCOL_VERSION})
            setup = recv_frame(sock)
            assert setup["type"] == "setup"
            job = recv_frame(sock)
            assert job["type"] == "job"
        finally:
            sock.close()

    def test_dead_worker_epoch_is_reassigned(self, serial_result):
        # One worker takes a lease and vanishes; a healthy worker picks up
        # the reassigned epoch and the result is unchanged.
        transport = SocketTransport(min_workers=2, heartbeat_timeout=15.0)
        host, port = transport.listen()
        bad = threading.Thread(target=self._bad_worker, args=(host, port), daemon=True)
        good = threading.Thread(
            target=run_worker, args=(host, port), kwargs=FAST_RECONNECT, daemon=True
        )
        bad.start()
        good.start()
        result = _evolver(transport).run()
        bad.join(timeout=15)
        good.join(timeout=15)
        assert _normalized(result) == _normalized(serial_result)

    def test_all_workers_dead_falls_back_to_local(self, serial_result):
        # The lone worker dies mid-lease; the coordinator finishes every
        # epoch in-process rather than stalling, with identical results.
        transport = SocketTransport(min_workers=1, heartbeat_timeout=15.0)
        host, port = transport.listen()
        bad = threading.Thread(target=self._bad_worker, args=(host, port), daemon=True)
        bad.start()
        result = _evolver(transport).run()
        bad.join(timeout=15)
        assert _normalized(result) == _normalized(serial_result)

    def test_worker_rst_after_setup_does_not_lose_lease(self, serial_result):
        # A worker that resets the connection right after setup can make
        # the coordinator's job send() itself fail; the lease must be
        # requeued (not lost) and the run must still complete identically.
        import socket as socket_module
        import struct as struct_module

        transport = SocketTransport(min_workers=1, heartbeat_timeout=15.0)
        host, port = transport.listen()

        def rst_worker():
            sock = socket_module.create_connection((host, port), timeout=15)
            send_frame(sock, {"type": "hello", "protocol": PROTOCOL_VERSION})
            recv_frame(sock)  # setup
            sock.setsockopt(
                socket_module.SOL_SOCKET,
                socket_module.SO_LINGER,
                struct_module.pack("ii", 1, 0),
            )
            sock.close()  # RST instead of FIN

        thread = threading.Thread(target=rst_worker, daemon=True)
        thread.start()
        result = _evolver(transport).run()
        thread.join(timeout=15)
        assert _normalized(result) == _normalized(serial_result)

    def test_worker_exits_cleanly_when_coordinator_vanishes(self):
        # A coordinator that drops a worker mid-service (reassigned lease,
        # crash) must not crash the worker: run_worker returns 0.
        import socket as socket_module

        from repro.pmevo.transport import problem_to_jsonable

        problem = problem_to_jsonable(_evolver().evolver)
        listener = socket_module.create_server(("127.0.0.1", 0))
        host, port = listener.getsockname()[:2]

        def fake_coordinator():
            sock, _ = listener.accept()
            recv_frame(sock)  # hello
            send_frame(sock, {"type": "setup", "problem": problem})
            state = _evolver().evolver.init_state().to_jsonable()
            frame = {
                "type": "job",
                "job_id": 1,
                "generations": 2,
                "islands": [[0, state]],
            }
            send_frame(sock, frame)
            sock.close()  # vanish before the result arrives
            listener.close()

        thread = threading.Thread(target=fake_coordinator, daemon=True)
        thread.start()
        # With the listener closed, every reconnect attempt is refused; the
        # worker must conclude the coordinator is gone and exit 0 — within
        # the (deliberately small) reconnect budget, not the default minute.
        assert (
            run_worker(host, port, heartbeat_interval=0.2, **FAST_RECONNECT) == 0
        )
        thread.join(timeout=15)

    def test_start_times_out_without_workers(self):
        transport = SocketTransport(min_workers=1, start_timeout=0.2)
        evolver = _evolver(transport)
        with pytest.raises(TransportError, match="waiting for 1 worker"):
            evolver.run()

    def test_parse_address(self):
        assert parse_address("127.0.0.1:8080") == ("127.0.0.1", 8080)
        with pytest.raises(TransportError):
            parse_address("no-port")
        with pytest.raises(TransportError):
            parse_address("host:99999")


class TestResumeEquivalence:
    class _KillAfter(Checkpointer):
        """Checkpointer that kills the run right after its Nth snapshot —
        the closest in-process analogue of SIGKILL at an epoch barrier."""

        def __init__(self, path, kill_after: int):
            super().__init__(path, interval=1)
            self.kill_after = kill_after

        def after_epoch(self, snapshot):
            saved = super().after_epoch(snapshot)
            if self.saves >= self.kill_after:
                raise KeyboardInterrupt
            return saved

    @pytest.mark.parametrize("kill_after", [1, 2])
    def test_killed_and_resumed_equals_uninterrupted(
        self, tmp_path, serial_result, kill_after
    ):
        path = tmp_path / "snapshot.json"
        with pytest.raises(KeyboardInterrupt):
            _evolver().run(checkpointer=self._KillAfter(path, kill_after))
        snapshot = load_checkpoint(path)
        assert snapshot.epochs == kill_after
        resumed = _evolver().run(resume=snapshot)
        assert _normalized(resumed) == _normalized(serial_result)

    def test_resume_across_transports(self, tmp_path, serial_result):
        # Checkpoint under the serial transport, resume on a pool: the
        # snapshot is transport-agnostic.
        path = tmp_path / "snapshot.json"
        with pytest.raises(KeyboardInterrupt):
            _evolver().run(checkpointer=self._KillAfter(path, 1))
        resumed = _evolver(PoolTransport(2)).run(resume=load_checkpoint(path))
        assert _normalized(resumed) == _normalized(serial_result)


class TestSocketCLIEndToEnd:
    """A localhost socket run with two real worker processes via the CLI."""

    @staticmethod
    def _cli_env():
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return env

    @classmethod
    def _infer_command(cls, output: Path, extra: list[str]) -> list[str]:
        return [
            sys.executable,
            "-m",
            "repro.cli",
            "infer",
            "SKL",
            "-o",
            str(output),
            "--forms",
            "6",
            "--population",
            "16",
            "--generations",
            "6",
            "--islands",
            "2",
            "--seed",
            "0",
            *extra,
        ]

    def test_two_worker_socket_inference(self, tmp_path):
        env = self._cli_env()
        socket_out = tmp_path / "socket.json"
        coordinator = subprocess.Popen(
            self._infer_command(
                socket_out,
                ["--transport", "socket", "--bind", "127.0.0.1:0", "--min-workers", "2"],
            ),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        workers: list[subprocess.Popen] = []
        try:
            # The coordinator prints its ephemeral address first.
            address = None
            deadline = time.monotonic() + 60
            while address is None and time.monotonic() < deadline:
                line = coordinator.stdout.readline()
                if not line and coordinator.poll() is not None:
                    break
                if line.startswith("socket transport listening on "):
                    address = line.split()[-1].strip()
            assert address, "coordinator never announced its address"

            workers = [
                subprocess.Popen(
                    [sys.executable, "-m", "repro.cli", "worker", "--connect", address],
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                    env=env,
                    cwd=REPO_ROOT,
                )
                for _ in range(2)
            ]
            output = coordinator.stdout.read()
            assert coordinator.wait(timeout=300) == 0, output
            for worker in workers:
                assert worker.wait(timeout=30) == 0
        finally:
            for proc in [coordinator, *workers]:
                if proc.poll() is None:
                    proc.kill()
        assert socket_out.exists()

        # The distributed mapping is byte-identical to a serial CLI run.
        serial_out = tmp_path / "serial.json"
        subprocess.run(
            self._infer_command(serial_out, []),
            check=True,
            capture_output=True,
            env=env,
            cwd=REPO_ROOT,
            timeout=300,
        )
        assert socket_out.read_text() == serial_out.read_text()
        assert json.loads(socket_out.read_text())["ports"]
