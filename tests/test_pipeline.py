"""Integration tests for the end-to-end PMEvo pipeline (Figure 5)."""

import pytest

from repro.core import Experiment
from repro.machine import MeasurementConfig, toy_machine
from repro.pmevo import EvolutionConfig, PMEvoConfig, infer_port_mapping
from repro.throughput import MappingPredictor


@pytest.fixture(scope="module")
def toy_result():
    machine = toy_machine(num_ports=3, measurement=MeasurementConfig(noisy=False))
    config = PMEvoConfig(
        evolution=EvolutionConfig(population_size=120, max_generations=80, seed=1)
    )
    return machine, infer_port_mapping(machine, config=config)


class TestPipelineOnToyMachine:
    def test_mapping_covers_full_isa(self, toy_result):
        machine, result = toy_result
        assert set(result.mapping.instructions) == set(machine.isa.names)

    def test_accuracy_on_training_experiments(self, toy_result):
        _, result = toy_result
        assert result.evolution.davg <= 0.02

    def test_congruent_instructions_share_decomposition(self, toy_result):
        _, result = toy_result
        for rep, members in result.partition.classes.items():
            for member in members:
                assert result.mapping.uops_of(member) == result.mapping.uops_of(rep)

    def test_predicts_heldout_experiments(self, toy_result):
        """The inferred mapping must predict experiments it never saw."""
        machine, result = toy_result
        predictor = MappingPredictor(result.mapping)
        names = machine.isa.names
        held_out = [
            Experiment({names[0]: 2, names[2]: 1}),
            Experiment({names[1]: 1, names[3]: 2, names[5]: 1}),
            Experiment({names[4]: 3, names[6]: 1}),
        ]
        for experiment in held_out:
            measured = machine.measure(experiment)
            predicted = predictor.predict(experiment)
            assert predicted == pytest.approx(measured, rel=0.15), experiment

    def test_table2_statistics(self, toy_result):
        _, result = toy_result
        row = result.table2_row()
        assert set(row) == {
            "benchmarking time (s)",
            "inference time (s)",
            "insns found congruent",
            "number of uops",
        }
        assert result.congruent_fraction >= 0.5  # toy ISA is heavily congruent
        assert result.num_uops >= 1
        assert result.benchmarking_seconds > 0
        assert result.inference_seconds > 0

    def test_restricted_universe(self):
        machine = toy_machine(num_ports=3, measurement=MeasurementConfig(noisy=False))
        names = machine.isa.names[:4]
        config = PMEvoConfig(
            evolution=EvolutionConfig(population_size=60, max_generations=40, seed=0)
        )
        result = infer_port_mapping(machine, names=names, config=config)
        assert set(result.mapping.instructions) == set(names)


class TestPipelineWithNoise:
    def test_noisy_measurements_still_recoverable(self):
        machine = toy_machine(
            num_ports=3,
            measurement=MeasurementConfig(noisy=True, seed=9, jitter_sigma=0.004),
        )
        config = PMEvoConfig(
            epsilon=0.05,
            evolution=EvolutionConfig(population_size=120, max_generations=60, seed=4),
        )
        result = infer_port_mapping(machine, config=config)
        # Noise bounds accuracy, but the mapping should still explain the
        # measurements to within a few percent.
        assert result.evolution.davg <= 0.05
        # Congruence filtering must survive noise thanks to epsilon.
        assert result.congruent_fraction >= 0.4
