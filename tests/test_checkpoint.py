"""Checkpoint serialization, atomicity, and failure semantics."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.pmevo.testing import measurements_from_truth as _measurements_from_truth
from repro.core import CheckpointError, PortSpace
from repro.pmevo import (
    CheckpointSnapshot,
    Checkpointer,
    EvolutionConfig,
    EvolutionState,
    IslandEvolver,
    IslandResult,
    PortMappingEvolver,
    load_checkpoint,
    previous_path,
    write_checkpoint,
)


def _problem():
    truth = {"a": {0b01: 1}, "b": {0b10: 1}}
    names = ("a", "b")
    return _measurements_from_truth(truth, names, 2)


def _evolver(config=None):
    measured, singles = _problem()
    config = config or EvolutionConfig(population_size=12, max_generations=20, seed=3)
    return PortMappingEvolver(PortSpace.numbered(2), measured, singles, config)


def _island_evolver(config):
    measured, singles = _problem()
    return IslandEvolver(PortSpace.numbered(2), measured, singles, config)


ISLAND_CONFIG = EvolutionConfig(
    population_size=12,
    max_generations=12,
    seed=5,
    islands=2,
    migration_interval=3,
    migration_size=1,
)


class TestStateRoundTrip:
    def test_roundtrip_preserves_future_trajectory(self):
        # The serialized state must continue exactly like the original —
        # including the numpy generator — which is the property checkpoint
        # bit-identity rests on.
        evolver = _evolver()
        state = evolver.init_state()
        evolver.advance(state, 3)
        restored = EvolutionState.from_json(state.to_json())
        assert restored.to_jsonable() == state.to_jsonable()
        evolver.advance(state, 4)
        evolver.advance(restored, 4)
        assert restored.to_jsonable() == state.to_jsonable()
        assert np.array_equal(restored.davgs, state.davgs)
        assert restored.history == state.history

    def test_rng_draws_identical_after_roundtrip(self):
        evolver = _evolver()
        state = evolver.init_state()
        restored = EvolutionState.from_json(state.to_json())
        assert np.array_equal(
            state.rng.integers(0, 1 << 30, 32), restored.rng.integers(0, 1 << 30, 32)
        )

    def test_malformed_state_raises(self):
        with pytest.raises(CheckpointError, match="not valid JSON"):
            EvolutionState.from_json("{truncated")
        with pytest.raises(CheckpointError, match="malformed evolution state"):
            EvolutionState.from_jsonable({"population": []})

    def test_unknown_bit_generator_raises(self):
        evolver = _evolver()
        payload = evolver.init_state().to_jsonable()
        payload["rng"]["bit_generator"] = "NoSuchGenerator"
        with pytest.raises(CheckpointError, match="bit generator"):
            EvolutionState.from_jsonable(payload)


class TestIslandResultRoundTrip:
    def test_roundtrip_is_byte_identical(self):
        result = _island_evolver(ISLAND_CONFIG).run()
        restored = IslandResult.from_json(result.to_json())
        assert restored.to_json() == result.to_json()
        assert restored.mapping == result.mapping
        assert restored.history == result.history

    def test_malformed_result_raises(self):
        with pytest.raises(CheckpointError, match="not valid JSON"):
            IslandResult.from_json("][")
        with pytest.raises(CheckpointError, match="malformed island result"):
            IslandResult.from_jsonable({"davg": 1.0})


class TestCheckpointFiles:
    def _snapshot(self):
        evolver = _island_evolver(ISLAND_CONFIG)
        states = [
            evolver.evolver.init_state(np.random.default_rng(k)) for k in range(2)
        ]
        return CheckpointSnapshot(
            config=ISLAND_CONFIG,
            instructions=evolver.evolver.names,
            num_ports=2,
            epochs=1,
            migrations=2,
            states=states,
        )

    def test_write_load_roundtrip(self, tmp_path):
        path = tmp_path / "snap.json"
        snapshot = self._snapshot()
        write_checkpoint(path, snapshot)
        loaded = load_checkpoint(path)
        assert loaded.config == snapshot.config
        assert loaded.instructions == snapshot.instructions
        assert loaded.epochs == 1 and loaded.migrations == 2
        assert [s.to_jsonable() for s in loaded.states] == [
            s.to_jsonable() for s in snapshot.states
        ]

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "snap.json"
        write_checkpoint(path, self._snapshot())
        write_checkpoint(path, self._snapshot())  # overwrite is atomic too
        # Overwriting rotates the displaced snapshot to `.prev`; no tmp
        # files or deeper history may remain.
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "snap.json",
            "snap.json.prev",
        ]

    def test_overwrite_rotates_previous_snapshot(self, tmp_path):
        path = tmp_path / "snap.json"
        first = self._snapshot()
        write_checkpoint(path, first)
        second = self._snapshot()
        second.epochs = 2
        write_checkpoint(path, second)
        assert load_checkpoint(path).epochs == 2
        assert load_checkpoint(previous_path(path)).epochs == first.epochs

    def test_first_write_leaves_no_prev(self, tmp_path):
        path = tmp_path / "snap.json"
        write_checkpoint(path, self._snapshot())
        assert not previous_path(path).exists()

    def test_load_falls_back_to_prev_with_warning(self, tmp_path):
        path = tmp_path / "snap.json"
        write_checkpoint(path, self._snapshot())
        write_checkpoint(path, self._snapshot())
        path.write_text("definitely not json")  # the latest snapshot is toast
        with pytest.warns(UserWarning, match="falling back to the previous"):
            loaded = load_checkpoint(path)
        assert loaded.epochs == 1

    def test_fallback_reports_primary_error_when_prev_also_bad(self, tmp_path):
        path = tmp_path / "snap.json"
        write_checkpoint(path, self._snapshot())
        write_checkpoint(path, self._snapshot())
        path.write_text("definitely not json")
        previous_path(path).write_text("also not json")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            load_checkpoint(path)

    def test_fallback_can_be_disabled(self, tmp_path):
        path = tmp_path / "snap.json"
        write_checkpoint(path, self._snapshot())
        write_checkpoint(path, self._snapshot())
        path.write_text("definitely not json")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            load_checkpoint(path, allow_previous=False)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read checkpoint"):
            load_checkpoint(tmp_path / "nope.json")

    def test_corrupted_file_raises(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text("definitely not json")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            load_checkpoint(path)

    def test_partial_file_raises(self, tmp_path):
        # Simulate a snapshot torn mid-write (the atomic writer prevents
        # this at the real path, but a copied/truncated file must still
        # fail loudly, not resume from garbage).
        path = tmp_path / "snap.json"
        write_checkpoint(path, self._snapshot())
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(CheckpointError, match="not valid JSON"):
            load_checkpoint(path)

    def test_wrong_format_tag_raises(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps({"format": "something/else"}))
        with pytest.raises(CheckpointError, match="unsupported checkpoint format"):
            load_checkpoint(path)
        path.write_text(json.dumps({"no": "format"}))
        with pytest.raises(CheckpointError, match="unsupported checkpoint format"):
            load_checkpoint(path)

    def test_missing_states_raises(self, tmp_path):
        path = tmp_path / "snap.json"
        payload = self._snapshot().to_jsonable()
        del payload["states"]
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="malformed checkpoint"):
            load_checkpoint(path)

    def test_checkpointer_interval(self, tmp_path):
        path = tmp_path / "snap.json"
        checkpointer = Checkpointer(path, interval=2)
        snapshot = self._snapshot()
        snapshot.epochs = 1
        assert not checkpointer.after_epoch(snapshot)
        snapshot.epochs = 2
        assert checkpointer.after_epoch(snapshot)
        assert checkpointer.saves == 1
        assert load_checkpoint(path).epochs == 2

    def test_bad_interval_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="interval"):
            Checkpointer(tmp_path / "snap.json", interval=0)


class TestResumeValidation:
    def _checkpoint_from_run(self, tmp_path):
        path = tmp_path / "snap.json"
        _island_evolver(ISLAND_CONFIG).run(checkpointer=Checkpointer(path))
        return load_checkpoint(path)

    def test_config_mismatch_raises(self, tmp_path):
        snapshot = self._checkpoint_from_run(tmp_path)
        other = _island_evolver(
            EvolutionConfig(
                population_size=12,
                max_generations=12,
                seed=6,  # different seed
                islands=2,
                migration_interval=3,
                migration_size=1,
            )
        )
        with pytest.raises(CheckpointError, match="different evolution config"):
            other.run(resume=snapshot)

    def test_resume_allows_different_worker_count(self, tmp_path):
        # `workers` is wall-clock-only: a checkpoint from an 8-core host
        # must resume on a smaller one.
        import dataclasses

        snapshot = self._checkpoint_from_run(tmp_path)
        resumed = _island_evolver(
            dataclasses.replace(ISLAND_CONFIG, workers=2)
        ).run(resume=snapshot)
        baseline = _island_evolver(ISLAND_CONFIG).run()
        assert resumed.mapping == baseline.mapping
        assert resumed.history == baseline.history

    def test_problem_mismatch_raises(self, tmp_path):
        snapshot = self._checkpoint_from_run(tmp_path)
        truth = {"x": {0b01: 1}, "y": {0b10: 1}, "z": {0b11: 1}}
        measured, singles = _measurements_from_truth(truth, ("x", "y", "z"), 2)
        other = IslandEvolver(PortSpace.numbered(2), measured, singles, ISLAND_CONFIG)
        with pytest.raises(CheckpointError, match="different instruction universe"):
            other.run(resume=snapshot)


class TestCheckpointCLI:
    def test_infer_checkpoint_then_resume_is_identical(self, tmp_path, capsys):
        from repro.cli import main

        args = [
            "infer",
            "SKL",
            "--forms",
            "5",
            "--population",
            "12",
            "--generations",
            "6",
            "--islands",
            "2",
            "--migration-interval",
            "3",
            "--seed",
            "0",
        ]
        first = tmp_path / "first.json"
        snapshot = tmp_path / "snap.json"
        assert main([*args, "-o", str(first), "--checkpoint", str(snapshot)]) == 0
        assert snapshot.exists()

        # Resuming from the last snapshot replays the tail of the run and
        # must land on the identical mapping.
        resumed = tmp_path / "resumed.json"
        assert (
            main([*args, "-o", str(resumed), "--resume", str(snapshot)]) == 0
        )
        assert "resuming from" in capsys.readouterr().out
        assert resumed.read_text() == first.read_text()

    def test_resume_with_wrong_settings_fails_loudly(self, tmp_path):
        from repro.cli import main

        snapshot = tmp_path / "snap.json"
        base = [
            "infer",
            "SKL",
            "--forms",
            "5",
            "--population",
            "12",
            "--generations",
            "6",
            "--islands",
            "2",
            "--seed",
            "0",
        ]
        assert main([*base, "-o", str(tmp_path / "a.json"), "--checkpoint", str(snapshot)]) == 0
        with pytest.raises(CheckpointError, match="different evolution config"):
            main(
                [
                    "infer",
                    "SKL",
                    "--forms",
                    "5",
                    "--population",
                    "12",
                    "--generations",
                    "6",
                    "--islands",
                    "2",
                    "--seed",
                    "1",  # different seed
                    "-o",
                    str(tmp_path / "b.json"),
                    "--resume",
                    str(snapshot),
                ]
            )
