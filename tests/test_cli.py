"""Tests for the command line interface."""

import json

import pytest

from repro.cli import _parse_experiment, build_parser, main
from repro.core import Experiment, PortSpace, ThreeLevelMapping


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_infer_args(self):
        args = build_parser().parse_args(
            ["infer", "SKL", "-o", "map.json", "--forms", "10"]
        )
        assert args.machine == "SKL"
        assert args.forms == 10

    def test_parse_experiment(self):
        assert _parse_experiment(["a=2", "b"]) == Experiment({"a": 2, "b": 1})
        assert _parse_experiment(["a", "a"]) == Experiment({"a": 2})

    def test_cluster_tunables_defaults(self):
        from repro.pmevo.transport import (
            DEFAULT_HEARTBEAT_INTERVAL,
            DEFAULT_HEARTBEAT_TIMEOUT,
            DEFAULT_START_TIMEOUT,
        )

        infer = build_parser().parse_args(["infer", "SKL", "-o", "m.json"])
        assert infer.heartbeat_timeout == DEFAULT_HEARTBEAT_TIMEOUT
        assert infer.start_timeout == DEFAULT_START_TIMEOUT
        worker = build_parser().parse_args(["worker", "--connect", "h:1"])
        assert worker.heartbeat_interval == DEFAULT_HEARTBEAT_INTERVAL
        assert worker.max_reconnect_attempts == 10
        assert worker.reconnect_window == 60.0

    @pytest.mark.parametrize(
        "argv",
        [
            ["infer", "SKL", "-o", "m.json", "--heartbeat-timeout", "0"],
            ["infer", "SKL", "-o", "m.json", "--heartbeat-timeout", "-3"],
            ["infer", "SKL", "-o", "m.json", "--heartbeat-timeout", "soon"],
            ["infer", "SKL", "-o", "m.json", "--start-timeout", "0"],
            ["worker", "--connect", "h:1", "--heartbeat-interval", "0"],
            ["worker", "--connect", "h:1", "--reconnect-window", "-1"],
            ["worker", "--connect", "h:1", "--max-reconnect-attempts", "-1"],
            ["worker", "--connect", "h:1", "--max-reconnect-attempts", "1.5"],
        ],
        ids=[
            "timeout-zero",
            "timeout-negative",
            "timeout-not-a-number",
            "start-timeout-zero",
            "heartbeat-zero",
            "window-negative",
            "attempts-negative",
            "attempts-fractional",
        ],
    )
    def test_invalid_cluster_tunables_exit_2(self, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2

    def test_heartbeat_timeout_must_exceed_heartbeat_interval(self, capsys):
        # A coordinator timeout below one worker heartbeat period would
        # reap perfectly healthy workers; the parser refuses it outright.
        with pytest.raises(SystemExit) as excinfo:
            main(["infer", "SKL", "-o", "m.json", "--heartbeat-timeout", "1.0"])
        assert excinfo.value.code == 2
        assert "must exceed the worker heartbeat interval" in capsys.readouterr().err

    def test_zero_reconnect_attempts_is_allowed(self):
        # 0 is a valid operator choice: "never reconnect, die with the
        # coordinator".
        args = build_parser().parse_args(
            ["worker", "--connect", "h:1", "--max-reconnect-attempts", "0"]
        )
        assert args.max_reconnect_attempts == 0


@pytest.fixture
def mapping_file(tmp_path):
    ports = PortSpace.numbered(2)
    mapping = ThreeLevelMapping(ports, {"op_a": {0b01: 1}, "op_b": {0b11: 2}})
    path = tmp_path / "mapping.json"
    path.write_text(mapping.to_json())
    return path


class TestCommands:
    def test_show(self, mapping_file, capsys):
        assert main(["show", str(mapping_file)]) == 0
        out = capsys.readouterr().out
        assert "op_a" in out and "op_b" in out

    def test_predict(self, mapping_file, capsys):
        assert main(["predict", str(mapping_file), "op_a=2"]) == 0
        out = capsys.readouterr().out.strip()
        assert float(out) == pytest.approx(2.0)  # 2 µops on one port

    def test_predict_mixture(self, mapping_file, capsys):
        assert main(["predict", str(mapping_file), "op_a", "op_b"]) == 0
        out = capsys.readouterr().out.strip()
        # op_a: 1 on {P0}; op_b: 2 on {P0,P1} -> (1+2)/2 = 1.5.
        assert float(out) == pytest.approx(1.5)

    def test_infer_small_run(self, tmp_path, capsys):
        output = tmp_path / "skl.json"
        code = main(
            [
                "infer",
                "SKL",
                "-o",
                str(output),
                "--forms",
                "8",
                "--population",
                "40",
                "--generations",
                "15",
            ]
        )
        assert code == 0
        data = json.loads(output.read_text())
        assert len(data["instructions"]) == 8
        out = capsys.readouterr().out
        assert "insns found congruent" in out

    def test_compare_with_inferred_mapping(self, tmp_path, capsys):
        output = tmp_path / "skl.json"
        main(
            ["infer", "SKL", "-o", str(output), "--forms", "8",
             "--population", "40", "--generations", "15"]
        )
        capsys.readouterr()
        code = main(["compare", "SKL", str(output), "--count", "20", "--size", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "PMEvo" in out and "llvm-mca" in out

    def test_diff_identical_files(self, mapping_file, capsys):
        assert main(["diff", str(mapping_file), str(mapping_file)]) == 0
        out = capsys.readouterr().out
        assert "behavioural distance: 0.0000" in out
        assert "mappings are identical" in out

    def test_export_llvm(self, mapping_file, capsys):
        assert main(["export", str(mapping_file), "--format", "llvm"]) == 0
        out = capsys.readouterr().out
        assert "SchedMachineModel" in out
        assert "Writeop_a" in out

    def test_export_osaca(self, mapping_file, capsys):
        assert main(["export", str(mapping_file), "--format", "osaca"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("instruction,P0,P1,cycles")
