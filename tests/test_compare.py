"""Tests for mapping comparison (behavioural distance, port permutations)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    canonical_experiments,
    find_port_permutation,
    mapping_diff,
    permutation_equivalent,
    throughput_distance,
)
from repro.core import MappingError, PortSpace, ThreeLevelMapping
from repro.core.ports import indices_from_mask, mask_from_indices


def _permute(mapping: ThreeLevelMapping, permutation) -> ThreeLevelMapping:
    assignment = {}
    for name in mapping.instructions:
        uops = {}
        for mask, count in mapping.uops_of(name).items():
            new_mask = mask_from_indices(permutation[i] for i in indices_from_mask(mask))
            uops[new_mask] = uops.get(new_mask, 0) + count
        assignment[name] = uops
    return ThreeLevelMapping(mapping.ports, assignment)


@pytest.fixture
def sample(paper_three_level):
    return paper_three_level


class TestThroughputDistance:
    def test_identity_is_zero(self, sample):
        assert throughput_distance(sample, sample) == 0.0

    def test_permuted_mapping_is_behaviourally_identical(self, sample):
        permuted = _permute(sample, (2, 0, 1))
        assert throughput_distance(sample, permuted) == pytest.approx(0.0)

    def test_detects_differences(self, sample):
        ports = sample.ports
        other = ThreeLevelMapping(
            ports,
            {
                "mul": {ports.mask("P1"): 1},  # halved multiplicity
                "add": {ports.mask("P1", "P2"): 1},
                "sub": {ports.mask("P1", "P2"): 1},
                "store": {ports.mask("P1", "P2"): 1, ports.mask("P3"): 1},
            },
        )
        assert throughput_distance(sample, other) > 0.01

    def test_port_count_mismatch_rejected(self, sample):
        other = ThreeLevelMapping(PortSpace.numbered(4), {"mul": {1: 1}})
        with pytest.raises(MappingError):
            throughput_distance(sample, other)

    def test_instruction_mismatch_rejected(self, sample):
        other = ThreeLevelMapping(sample.ports, {"mul": {1: 1}})
        with pytest.raises(MappingError):
            throughput_distance(sample, other)


class TestCanonicalExperiments:
    def test_counts(self):
        experiments = canonical_experiments(["a", "b", "c"])
        # 3 singletons + 3 pairs * 3 variants.
        assert len(experiments) == 3 + 9
        assert len(set(experiments)) == len(experiments)


class TestPortPermutation:
    def test_finds_identity(self, sample):
        assert find_port_permutation(sample, sample) == (0, 1, 2)

    def test_finds_nontrivial_permutation(self, sample):
        permutation = (2, 0, 1)
        permuted = _permute(sample, permutation)
        found = find_port_permutation(sample, permuted)
        assert found == permutation
        assert permutation_equivalent(sample, permuted)

    def test_rejects_structurally_different(self, sample):
        ports = sample.ports
        other = ThreeLevelMapping(
            ports,
            {
                "mul": {ports.mask("P1"): 2},
                "add": {ports.mask("P1", "P2"): 1},
                "sub": {ports.mask("P1", "P2"): 1},
                # store loses its second µop: no permutation can fix that.
                "store": {ports.mask("P3"): 1},
            },
        )
        assert find_port_permutation(sample, other) is None
        assert not permutation_equivalent(sample, other)

    @given(st.permutations(range(4)))
    @settings(max_examples=24, deadline=None)
    def test_random_permutations_recovered(self, permutation):
        ports = PortSpace.numbered(4)
        mapping = ThreeLevelMapping(
            ports,
            {
                "w": {0b0001: 2},
                "x": {0b0011: 1},
                "y": {0b0110: 1, 0b1000: 1},
                "z": {0b1111: 3},
            },
        )
        permuted = _permute(mapping, permutation)
        assert permutation_equivalent(mapping, permuted)
        found = find_port_permutation(mapping, permuted)
        # The recovered permutation must transform first into second (it
        # need not equal `permutation` if the mapping has symmetries).
        assert _permute(mapping, found) == permuted


class TestMappingDiff:
    def test_identical_mappings(self, sample):
        comparison = mapping_diff(sample, sample)
        assert comparison.behavioural_distance == 0.0
        assert comparison.structurally_equivalent
        assert comparison.diff_text == "mappings are identical"

    def test_diff_lists_changed_instructions_only(self, sample):
        ports = sample.ports
        other = ThreeLevelMapping(
            ports,
            {
                "mul": {ports.mask("P1"): 1},
                "add": {ports.mask("P1", "P2"): 1},
                "sub": {ports.mask("P1", "P2"): 1},
                "store": {ports.mask("P1", "P2"): 1, ports.mask("P3"): 1},
            },
        )
        comparison = mapping_diff(sample, other, "inferred", "truth")
        assert "mul" in comparison.diff_text
        assert "add" not in comparison.diff_text
        assert not comparison.structurally_equivalent
