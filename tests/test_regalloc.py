"""Tests for the dependency-avoiding register allocator (Section 4.2)."""

import pytest

from repro.codegen import AllocationConfig, RegisterAllocator
from repro.codegen.assembly import MemoryRef, Register
from repro.core import ISAError
from repro.core.isa import gpr, make_form, mem, vec


ADD = make_form("add", [gpr(64, read=True, write=True), gpr(64)], "alu")
VADD = make_form("vadd", [vec(256, read=False, write=True), vec(256), vec(256)], "v")
LOAD = make_form("load", [gpr(64, read=False, write=True), mem(64)], "load")
STORE = make_form("store", [mem(64), gpr(64)], "store")


class TestAllocationConfig:
    def test_validation(self):
        with pytest.raises(ISAError):
            AllocationConfig(num_gprs=1)
        with pytest.raises(ISAError):
            AllocationConfig(num_vecs=0)
        with pytest.raises(ISAError):
            AllocationConfig(num_memory_offsets=0)


class TestRegisterAllocator:
    def test_no_same_register_read_write_within_instruction(self):
        allocator = RegisterAllocator()
        for _ in range(100):
            instance = allocator.allocate(ADD)
            dest, src = instance.operands
            assert dest != src

    def test_raw_distance_is_large(self):
        """The distance between a write and the next read of the same
        register should span (almost) the whole register file."""
        config = AllocationConfig(num_gprs=14)
        allocator = RegisterAllocator(config)
        instances = allocator.allocate_sequence([ADD] * 200)
        last_write: dict[Register, int] = {}
        min_distance = 10**9
        for tick, instance in enumerate(instances):
            if tick >= 30:  # steady state only
                for read in instance.read_registers():
                    if read in last_write:
                        min_distance = min(min_distance, tick - last_write[read])
            for written in instance.written_registers():
                last_write[written] = tick
        assert min_distance >= config.num_gprs - 2

    def test_destinations_rotate(self):
        allocator = RegisterAllocator(AllocationConfig(num_gprs=8))
        instances = allocator.allocate_sequence([ADD] * 32)
        destinations = [i.written_registers()[0].index for i in instances[8:24]]
        # All 8 registers are used as destinations within any window of 8+.
        assert len(set(destinations)) >= 7

    def test_memory_operands_use_base_pointer_and_rotate_offsets(self):
        config = AllocationConfig(num_memory_offsets=4, memory_stride=64)
        allocator = RegisterAllocator(config)
        instances = allocator.allocate_sequence([LOAD] * 8)
        refs = [i.operands[1] for i in instances]
        assert all(isinstance(r, MemoryRef) for r in refs)
        assert all(r.base == allocator.base_pointer for r in refs)
        offsets = [r.offset for r in refs]
        assert offsets[:4] == [0, 64, 128, 192]
        assert offsets[4:] == offsets[:4]  # rotation

    def test_base_pointer_never_allocated(self):
        config = AllocationConfig(num_gprs=6)
        allocator = RegisterAllocator(config)
        instances = allocator.allocate_sequence([ADD, LOAD, STORE] * 30)
        base = allocator.base_pointer
        for instance in instances:
            for reg in instance.written_registers():
                assert reg != base

    def test_vector_class_is_separate(self):
        allocator = RegisterAllocator()
        gpr_instance = allocator.allocate(ADD)
        vec_instance = allocator.allocate(VADD)
        kinds = {op.kind for op in vec_instance.operands}
        assert all(reg.kind.value == "vec" for reg in vec_instance.operands)
        assert all(op.kind.value == "gpr" for op in gpr_instance.operands)
        assert kinds == {vec_instance.operands[0].kind}

    def test_three_operand_reads_are_distinct(self):
        allocator = RegisterAllocator()
        for _ in range(50):
            instance = allocator.allocate(VADD)
            dest, src_a, src_b = instance.operands
            assert src_a != src_b
            assert dest not in (src_a, src_b)
