"""Tests for evolutionary operators (Section 4.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ports import mask_size
from repro.pmevo import mutate, recombine
from repro.pmevo.population import genome_volume


def _genome_strategy(names=("a", "b"), num_ports=3):
    full = (1 << num_ports) - 1
    uops = st.dictionaries(
        st.integers(min_value=1, max_value=full),
        st.integers(min_value=1, max_value=3),
        min_size=1,
        max_size=3,
    )
    return st.fixed_dictionaries({name: uops for name in names})


class TestRecombine:
    @given(_genome_strategy(), _genome_strategy(), st.integers(0, 999))
    @settings(max_examples=80, deadline=None)
    def test_children_partition_pooled_edges(self, parent_a, parent_b, seed):
        rng = np.random.default_rng(seed)
        child_a, child_b = recombine(rng, parent_a, parent_b)
        for name in parent_a:
            pooled_volume = genome_volume({name: parent_a[name]}) + genome_volume(
                {name: parent_b[name]}
            )
            child_volume = genome_volume({name: child_a[name]}) + genome_volume(
                {name: child_b[name]}
            )
            # The split partitions the pooled edges; the empty-side repair
            # can only duplicate one edge, never lose one.
            assert child_volume >= pooled_volume
            assert child_a[name], "child A lost all µops"
            assert child_b[name], "child B lost all µops"
            # Each child's µop masks come from the parents.
            parent_masks = set(parent_a[name]) | set(parent_b[name])
            assert set(child_a[name]) <= parent_masks
            assert set(child_b[name]) <= parent_masks

    def test_exact_split_without_repair(self):
        rng = np.random.default_rng(3)
        parent_a = {"i": {0b001: 2}}
        parent_b = {"i": {0b010: 1}}
        for _ in range(20):
            child_a, child_b = recombine(rng, parent_a, parent_b)
            total = genome_volume(child_a) + genome_volume(child_b)
            # Pool is {001:2, 010:1} with volume 3; repair may add 1 or 2.
            assert total >= 3

    def test_identical_parents_can_merge_multiplicities(self):
        rng = np.random.default_rng(0)
        parent = {"i": {0b001: 1}}
        seen_double = False
        for _ in range(50):
            child_a, child_b = recombine(rng, parent, parent)
            if child_a["i"].get(0b001) == 2 or child_b["i"].get(0b001) == 2:
                seen_double = True
        assert seen_double  # both pooled copies can land on one side


class TestMutate:
    @given(_genome_strategy(), st.integers(0, 99))
    @settings(max_examples=50, deadline=None)
    def test_invariants_preserved(self, genome, seed):
        rng = np.random.default_rng(seed)
        mutated = mutate(rng, genome, 3, {"a": 1.0, "b": 2.0}, rate=1.0)
        assert set(mutated) == set(genome)
        for name, uops in mutated.items():
            assert uops, f"{name} lost all µops"
            for mask, count in uops.items():
                assert 1 <= mask <= 0b111
                assert count >= 1

    def test_zero_rate_is_identity(self):
        rng = np.random.default_rng(1)
        genome = {"a": {0b001: 2}, "b": {0b110: 1}}
        assert mutate(rng, genome, 3, {"a": 1.0, "b": 1.0}, rate=0.0) == genome

    def test_mutation_changes_something_eventually(self):
        rng = np.random.default_rng(2)
        genome = {"a": {0b001: 2}, "b": {0b110: 1}}
        changed = any(
            mutate(rng, genome, 3, {"a": 1.0, "b": 1.0}, rate=1.0) != genome
            for _ in range(10)
        )
        assert changed


def test_mask_size_sanity():
    # Guard against accidental semantic drift in the shared helper.
    assert mask_size(0b101) == 2
