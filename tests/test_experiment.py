"""Unit tests for repro.core.experiment."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import Experiment, ExperimentError, ExperimentSet, MeasuredExperiment

counts_strategy = st.dictionaries(
    st.text(st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=4),
    st.integers(min_value=1, max_value=9),
    min_size=1,
    max_size=5,
)


class TestExperiment:
    def test_basic(self):
        e = Experiment({"add": 2, "mul": 1})
        assert e["add"] == 2
        assert e["mul"] == 1
        assert e["store"] == 0
        assert e.size == 3
        assert len(e) == 2
        assert e.support == ("add", "mul")
        assert "add" in e and "nope" not in e

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            Experiment({})

    def test_nonpositive_rejected(self):
        with pytest.raises(ExperimentError):
            Experiment({"a": 0})
        with pytest.raises(ExperimentError):
            Experiment({"a": -1})

    def test_noninteger_rejected(self):
        with pytest.raises(ExperimentError):
            Experiment({"a": 1.5})

    def test_singleton(self):
        e = Experiment.singleton("x")
        assert e.counts == {"x": 1}
        assert Experiment.singleton("x", 3).size == 3

    def test_from_sequence(self):
        assert Experiment.from_sequence("aab") == Experiment({"a": 2, "b": 1})

    def test_instances(self):
        assert list(Experiment({"a": 2, "b": 1}).instances()) == ["a", "a", "b"]

    def test_scaled(self):
        assert Experiment({"a": 1, "b": 2}).scaled(3) == Experiment({"a": 3, "b": 6})
        with pytest.raises(ExperimentError):
            Experiment({"a": 1}).scaled(0)

    def test_merged(self):
        merged = Experiment({"a": 1}).merged(Experiment({"a": 2, "b": 1}))
        assert merged == Experiment({"a": 3, "b": 1})

    def test_rename_merges_collisions(self):
        e = Experiment({"a": 1, "b": 2})
        assert e.rename({"b": "a"}) == Experiment({"a": 3})
        assert e.rename({}) == e

    def test_equality_ignores_insertion_order(self):
        assert Experiment({"a": 1, "b": 2}) == Experiment({"b": 2, "a": 1})
        assert hash(Experiment({"a": 1, "b": 2})) == hash(Experiment({"b": 2, "a": 1}))

    @given(counts_strategy)
    def test_size_is_sum(self, counts):
        e = Experiment(counts)
        assert e.size == sum(counts.values())
        assert sorted(e.support) == sorted(counts.keys())
        assert list(e.instances()).count(next(iter(counts))) == counts[next(iter(counts))]

    @given(counts_strategy, st.integers(min_value=1, max_value=4))
    def test_scaled_property(self, counts, factor):
        e = Experiment(counts)
        assert e.scaled(factor).size == factor * e.size


class TestMeasuredExperiment:
    def test_positive_throughput_required(self):
        with pytest.raises(ExperimentError):
            MeasuredExperiment(Experiment({"a": 1}), 0.0)
        with pytest.raises(ExperimentError):
            MeasuredExperiment(Experiment({"a": 1}), -1.0)


class TestExperimentSet:
    def _sample(self) -> ExperimentSet:
        s = ExperimentSet()
        s.add(Experiment({"a": 1}), 1.0)
        s.add(Experiment({"b": 1}), 2.0)
        s.add(Experiment({"a": 1, "b": 1}), 2.5)
        return s

    def test_basics(self):
        s = self._sample()
        assert len(s) == 3
        assert s.throughputs == (1.0, 2.0, 2.5)
        assert s.instruction_names() == ("a", "b")
        assert s[0].experiment == Experiment({"a": 1})

    def test_singleton_throughput(self):
        s = self._sample()
        assert s.singleton_throughput("a") == 1.0
        assert s.singleton_throughput("b") == 2.0
        assert s.singleton_throughput("c") is None

    def test_restricted_to(self):
        s = self._sample()
        only_a = s.restricted_to(["a"])
        assert len(only_a) == 1
        assert only_a[0].experiment == Experiment({"a": 1})

    def test_renamed_drops_duplicates(self):
        s = self._sample()
        renamed = s.renamed({"b": "a"})
        # {a} and {b} collapse to {a}; {a,b} becomes {a:2}.
        assert len(renamed) == 2
        assert renamed[0].experiment == Experiment({"a": 1})
        assert renamed[0].throughput == 1.0  # first measurement wins
        assert renamed[1].experiment == Experiment({"a": 2})
