"""Table 2: PMEvo mapping characteristics.

For each machine: benchmarking time, inference time, fraction of
instructions found congruent, and the number of distinct µops in the
inferred mapping.  Paper values (310-390 forms, population 100 000):

              SKL    ZEN    A72
benchmarking  20h    27h    74h
inference      5h    21h    12h
congruent     69%    53%    56%
#uops          17     15      9

Our run is scaled down (fewer forms, smaller population), so the time rows
are seconds, not hours; the congruent fraction and µop count are the
shape-comparable rows.
"""

from repro.analysis import format_kv_rows

from bench_lib import write_result


def test_table2_mapping_characteristics(pmevo_results, benchmark):
    columns = {}
    for name in ("SKL", "ZEN", "A72"):
        result = pmevo_results[name]
        columns[name] = dict(result.table2_row())
        columns[name]["D_avg (training)"] = f"{result.evolution.davg:.3f}"
        columns[name]["generations"] = result.evolution.generations
        columns[name]["instruction forms"] = result.partition.num_instructions
    text = format_kv_rows(columns, title="Table 2: PMEvo mapping characteristics")
    write_result("table2_characteristics", text)

    for name, result in pmevo_results.items():
        # The paper finds 53%-69% congruent; class-structured ISAs must
        # yield substantial filtering here too.
        assert result.congruent_fraction >= 0.35, name
        # Compact mappings: a handful of distinct µops, not hundreds.
        assert result.num_uops <= 40, name

    # Timed kernel: one fitness evaluation of the final SKL mapping.
    result = pmevo_results["SKL"]
    reduced = result.measurements.restricted_to(result.partition.representatives)
    from repro.throughput import BatchedThroughputEvaluator

    evaluator = BatchedThroughputEvaluator(
        reduced,
        tuple(reduced.instruction_names()),
        result.representative_mapping.ports.num_ports,
    )
    genome = {n: u for n, u in result.representative_mapping.items()}
    benchmark(lambda: evaluator.davg(genome))
