"""Shared helpers for the reproduction benchmarks (see conftest.py)."""

from __future__ import annotations

import os
from pathlib import Path

from repro.machine import Machine

RESULTS_DIR = Path(__file__).parent / "results"

#: Global workload multiplier (paper-scale would be ~100).
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(value: int, minimum: int = 1) -> int:
    """Scale an integer workload knob by ``REPRO_BENCH_SCALE``."""
    return max(minimum, int(round(value * SCALE)))


def write_result(name: str, text: str) -> None:
    """Persist a bench's table/figure text under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def append_result(name: str, text: str) -> None:
    """Append to a bench's record under benchmarks/results/ (kept across
    runs, so regressions show up as history rather than overwrites)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / f"{name}.txt", "a", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print()
    print(text)


def stratified_forms(machine: Machine, per_class: int = 1, limit: int = 24) -> list[str]:
    """A deterministic, semantically diverse subsample of instruction forms.

    Takes up to ``per_class`` forms from every semantic class (so dividers,
    stores, shuffles etc. are all represented), capped at ``limit``.
    """
    by_class: dict[str, list[str]] = {}
    for form in machine.isa:
        by_class.setdefault(form.semantic_class, []).append(form.name)
    names: list[str] = []
    for cls in sorted(by_class):
        names.extend(by_class[cls][:per_class])
    return names[:limit]
