"""Figure 8a: bottleneck simulation algorithm vs LP solver — port scaling.

Times both throughput back ends on randomly generated three-level mappings
over an artificial 100-instruction ISA, for experiments of length 4 and
port counts 4..20, mirroring Section 5.4's setup (8 random mappings x
sampled experiments; reported value is seconds per experiment).

Paper shape: the bottleneck algorithm wins by ~2 orders of magnitude at
realistic port counts (<=10); its Θ(2^|P|) cost catches up with the LP
solver somewhere in the teens (the paper crosses at ~18 ports with Gurobi;
our LP solver is scipy/HiGHS, so the crossover point differs — see
EXPERIMENTS.md).
"""

import time

import numpy as np

from repro.analysis import format_table
from repro.core import Experiment
from repro.throughput import lp_throughput_masses
from repro.throughput.bottleneck import bottleneck_throughput_dense

from bench_lib import scaled, write_result

PORT_COUNTS = (4, 6, 8, 10, 12, 14, 16, 18, 20)


def random_workload(num_ports: int, length: int, rng, num_mappings=4, num_experiments=16):
    """(masses, num_ports) pairs for random mappings x random experiments."""
    num_instructions = 100
    workload = []
    full = (1 << num_ports) - 1
    for _ in range(num_mappings):
        decompositions = []
        for _ in range(num_instructions):
            uops = {}
            for _ in range(int(rng.integers(1, 3))):
                mask = int(rng.integers(1, full + 1))
                uops[mask] = uops.get(mask, 0) + int(rng.integers(1, 3))
            decompositions.append(uops)
        for _ in range(num_experiments):
            picks = rng.integers(0, num_instructions, size=length)
            experiment = Experiment.from_sequence(str(p) for p in picks)
            masses: dict[int, float] = {}
            for name, count in experiment:
                for mask, mult in decompositions[int(name)].items():
                    masses[mask] = masses.get(mask, 0.0) + float(count * mult)
            workload.append(masses)
    return workload


def _time_per_experiment(func, workload, num_ports, repeats) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        for masses in workload:
            func(masses, num_ports)
    return (time.perf_counter() - start) / (repeats * len(workload))


def test_fig8a_bottleneck_vs_lp_port_scaling(benchmark):
    rng = np.random.default_rng(12)
    rows = []
    series = {"bn": {}, "lp": {}}
    for num_ports in PORT_COUNTS:
        workload = random_workload(num_ports, length=4, rng=rng,
                                   num_mappings=scaled(4, minimum=2),
                                   num_experiments=scaled(16, minimum=4))
        bn_repeats = 5 if num_ports <= 14 else 1
        bn_time = _time_per_experiment(
            bottleneck_throughput_dense, workload, num_ports, bn_repeats
        )
        lp_time = _time_per_experiment(lp_throughput_masses, workload, num_ports, 1)
        series["bn"][num_ports] = bn_time
        series["lp"][num_ports] = lp_time
        rows.append(
            [num_ports, f"{bn_time:.2e}", f"{lp_time:.2e}", f"{lp_time / bn_time:.1f}x"]
        )

    text = format_table(
        ["#ports", "bn algorithm (s/exp)", "LP solver (s/exp)", "LP/bn ratio"],
        rows,
        title="Figure 8a: time per experiment vs number of ports (length-4 experiments)",
    )
    write_result("fig8a_ports_scaling", text)

    # Paper shapes: a large bottleneck advantage at realistic port counts...
    for num_ports in (4, 6, 8, 10):
        assert series["lp"][num_ports] / series["bn"][num_ports] > 10.0, num_ports
    # ...and the exponential 2^|P| growth eroding it at wide machines.
    ratio_at_10 = series["lp"][10] / series["bn"][10]
    ratio_at_20 = series["lp"][20] / series["bn"][20]
    assert ratio_at_20 < ratio_at_10 / 4

    # Timed kernel: the 10-port bottleneck evaluation (the paper's headline).
    rng = np.random.default_rng(5)
    workload = random_workload(10, length=4, rng=rng, num_mappings=2, num_experiments=8)
    benchmark(lambda: [bottleneck_throughput_dense(m, 10) for m in workload])
