"""Prediction-server throughput: cold vs warm cache, 1 vs 32 clients.

PR 10 added the serving layer (``repro-pmevo serve``): an asyncio HTTP/JSON
API over inferred mappings with a bounded prediction LRU and single-flight
coalescing of concurrent misses into batched backend calls.  This bench
measures what the cache actually buys end to end — the server runs as a
real subprocess and every number includes HTTP framing, JSON, and
canonicalization, exactly what a client pays:

* **cold** — every sequence is a miss: request parse + executor hop +
  fixed-mapping kernel (one ``[1, I] @ [I, 2^|P|]`` matmul per sequence,
  per-row for bit-stability) + cache fill.
* **warm** — every sequence hits the LRU: request parse + dict lookup.
  The acceptance bar is warm >= 5x cold predictions/s single-client.
* **1 vs 32 clients** — the event loop serves hits while the single
  evaluator thread crunches misses, and concurrent misses coalesce.  Warm
  throughput is bounded by the one event loop, so 32 clients land at
  parity with 1, not above it — the bar is that concurrency does not
  *collapse* throughput.

A 12-port mapping puts the kernel in the regime serving is for (the
``2^|P|`` = 4096 mask space dominates a miss), mirroring Figure 8a's
port-scaling axis.  Results are *appended* to
``benchmarks/results/serving_throughput.txt`` as history across runs.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np

from bench_lib import append_result, scaled
from repro.core import PortSpace, ThreeLevelMapping

REPO_ROOT = Path(__file__).resolve().parent.parent

NUM_PORTS = 12
NUM_INSTRUCTIONS = 24
BATCH = 64
CLIENTS = 32
WARM_PASSES = 5
MIN_WARM_SPEEDUP = 5.0

_SERVING_LINE = re.compile(r"^serving on (?P<host>[^\s:]+):(?P<port>\d+)$")


def _bench_mapping() -> ThreeLevelMapping:
    """A dense 12-port mapping: the mask space, not Python, bounds a miss."""
    rng = np.random.default_rng(42)
    full = (1 << NUM_PORTS) - 1
    assignment = {}
    for i in range(NUM_INSTRUCTIONS):
        uops = {}
        for _ in range(int(rng.integers(2, 5))):
            mask = int(rng.integers(1, full + 1))
            uops[mask] = int(rng.integers(1, 4))
        assignment[f"op{i}"] = uops
    return ThreeLevelMapping(PortSpace.numbered(NUM_PORTS), assignment)


def _sequence_pool(tag: str, count: int) -> list[dict]:
    """``count`` distinct sequences in the count-dict spelling.

    A per-pool salt op with a unique count makes every sequence (and every
    pool) a distinct cache key, so "cold" really is cold.
    """
    rng = np.random.default_rng(hash(tag) % (2**32))
    pool = []
    for i in range(count):
        support = rng.choice(NUM_INSTRUCTIONS, size=3, replace=False)
        seq = {f"op{int(op)}": int(rng.integers(1, 9)) for op in support}
        seq[f"op{int(support[0])}"] = 1000 + i  # uniqueness salt
        pool.append(seq)
    return pool


class _Server:
    def __init__(self, mapping_path: Path):
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--mapping", str(mapping_path),
                "--bind", "127.0.0.1:0",
                "--cache-size", "1000000",
                "--max-batch", str(BATCH),
                "--max-sequence", "1000000",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        deadline = time.monotonic() + 60
        while True:
            line = self.proc.stdout.readline()
            if not line:
                raise AssertionError(f"serve exited: {self.proc.stderr.read()}")
            match = _SERVING_LINE.match(line.strip())
            if match:
                self.host, self.port = match.group("host"), int(match.group("port"))
                return
            if time.monotonic() > deadline:
                raise AssertionError("serve never printed its bind line")

    def stop(self) -> None:
        self.proc.send_signal(signal.SIGTERM)
        self.proc.wait(timeout=30)

    def request(self, conn: http.client.HTTPConnection, path: str, payload=None):
        body = None if payload is None else json.dumps(payload)
        conn.request("GET" if payload is None else "POST", path, body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read())


def _drive(server: _Server, pools: list[list[dict]], passes: int = 1) -> float:
    """Serve each pool (one client thread per pool, batched requests,
    keep-alive connection); returns predictions/s across all threads."""
    errors: list[str] = []

    def client(pool: list[dict]) -> None:
        conn = http.client.HTTPConnection(server.host, server.port, timeout=60)
        try:
            for _ in range(passes):
                for start in range(0, len(pool), BATCH):
                    batch = pool[start : start + BATCH]
                    status, body = server.request(
                        conn, "/v1/predict", {"sequences": batch}
                    )
                    if status != 200 or len(body["throughputs"]) != len(batch):
                        errors.append(f"status {status}: {body}")
                        return
        finally:
            conn.close()

    threads = [threading.Thread(target=client, args=(pool,)) for pool in pools]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    assert not errors, errors[:3]
    total = sum(len(pool) for pool in pools) * passes
    return total / elapsed


def test_serving_throughput(tmp_path):
    mapping_path = tmp_path / "bench.json"
    mapping_path.write_text(_bench_mapping().to_json())
    server = _Server(mapping_path)

    sequences_single = scaled(1024, minimum=256)
    per_client = scaled(64, minimum=16)
    try:
        single_pool = _sequence_pool("single", sequences_single)
        cold_1 = _drive(server, [single_pool])
        warm_1 = _drive(server, [single_pool], passes=WARM_PASSES)

        client_pools = [
            _sequence_pool(f"client{i}", per_client) for i in range(CLIENTS)
        ]
        cold_32 = _drive(server, client_pools)
        warm_32 = _drive(server, client_pools, passes=WARM_PASSES)

        conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
        _, stats = server.request(conn, "/v1/stats")
        conn.close()
    finally:
        server.stop()

    speedup_1 = warm_1 / cold_1
    speedup_32 = warm_32 / cold_32
    report = [
        f"serving throughput ({NUM_INSTRUCTIONS} instr, {NUM_PORTS} ports, "
        f"batch {BATCH}, HTTP end to end)",
        f"   1 client : {cold_1:9.0f} cold -> {warm_1:9.0f} warm predictions/s "
        f"({speedup_1:.1f}x)",
        f"  {CLIENTS} clients: {cold_32:9.0f} cold -> {warm_32:9.0f} warm predictions/s "
        f"({speedup_32:.1f}x)",
        f"  cache hit rate {stats['cache']['hit_rate']:.2f}, "
        f"mean eval batch {stats['batches']['mean']:.1f}, "
        f"p99 latency {stats['latency'].get('p99_ms', float('nan')):.1f} ms",
    ]
    append_result("serving_throughput", "\n".join(report))

    assert speedup_1 >= MIN_WARM_SPEEDUP, (
        f"warm cache bought only {speedup_1:.1f}x single-client "
        f"(bar: {MIN_WARM_SPEEDUP}x)"
    )
    assert warm_32 >= 0.5 * warm_1, (
        f"32 concurrent clients collapsed warm throughput: "
        f"{warm_32:.0f} vs {warm_1:.0f} predictions/s single-client"
    )
