"""Ablation: experiment design space (Section 4.1).

"In theory, longer experiments that combine instances of more than two
different instruction forms can unveil resource conflicts ... However, when
exploring the experiment design space experimentally for existing
processors, we did not observe benefits in port mapping quality from more
complex experiments."

This bench trains the evolutionary algorithm on (a) the paper's
singleton+pair plan and (b) the same plan augmented with random size-3
multisets over three distinct forms, then compares held-out accuracy.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import ExperimentSet
from repro.machine import MeasurementConfig, toy_machine
from repro.pmevo import (
    EvolutionConfig,
    PortMappingEvolver,
    pair_experiments,
    random_experiments,
    singleton_experiments,
)
from repro.throughput import MappingPredictor

from bench_lib import scaled, write_result


def test_ablation_longer_experiments(benchmark):
    machine = toy_machine(num_ports=3, measurement=MeasurementConfig(noisy=False))
    universe = machine.isa.names
    ports = machine.config.ports

    base = ExperimentSet()
    singles = {}
    for experiment in singleton_experiments(universe):
        throughput = machine.measure(experiment)
        base.add(experiment, throughput)
        singles[experiment.support[0]] = throughput
    for experiment in pair_experiments(universe, singles):
        base.add(experiment, machine.measure(experiment))

    extended = ExperimentSet(list(base))
    seen = set(base.experiments)
    for experiment in random_experiments(universe, size=3, count=scaled(60, minimum=20), seed=5):
        if len(experiment) >= 3 and experiment not in seen:
            seen.add(experiment)
            extended.add(experiment, machine.measure(experiment))

    held_out = random_experiments(universe, size=4, count=scaled(80, minimum=30), seed=6)
    held_out_measured = np.array([machine.measure(e) for e in held_out])

    rows = []
    mapes = {}
    for label, training in (("pairs only", base), ("pairs + triples", extended)):
        config = EvolutionConfig(
            population_size=scaled(120, minimum=40),
            max_generations=scaled(60, minimum=20),
            seed=1,
        )
        result = PortMappingEvolver(ports, training, singles, config).run()
        predictor = MappingPredictor(result.mapping)
        predicted = np.array([predictor.predict(e) for e in held_out])
        mape = float(np.mean(np.abs(predicted - held_out_measured) / held_out_measured))
        mapes[label] = mape
        rows.append([label, len(training), f"{100 * mape:.2f}%"])

    text = format_table(
        ["experiment plan", "#experiments", "held-out MAPE"],
        rows,
        title="Ablation: longer experiments in the training plan (toy machine)",
    )
    write_result("ablation_experiment_design", text)

    # Paper finding: no substantial benefit from more complex experiments.
    assert mapes["pairs + triples"] >= mapes["pairs only"] - 0.03

    predictor = MappingPredictor(machine.ground_truth_mapping())
    benchmark(lambda: [predictor.predict(e) for e in held_out[:20]])
