"""Table 1: evaluated processors.

Prints the preset machines' parameters in the paper's layout.  The paper's
row "RAM" has no analogue in a simulator and is replaced by the simulated
backend shape.
"""

from repro.analysis import format_kv_rows
from repro.core import Experiment

from bench_lib import write_result


def test_table1_processors(machines, benchmark):
    columns = {}
    for name in ("SKL", "ZEN", "A72"):
        machine = machines[name]
        config = machine.config
        port_note = {
            "SKL": "8 + DIV",
            "ZEN": "10",
            "A72": "7 (BR omitted)",
        }[name]
        columns[name] = {
            "Microarch. (styled on)": {
                "SKL": "Skylake",
                "ZEN": "Zen+",
                "A72": "Cortex-A72",
            }[name],
            "# Ports": port_note,
            "Instr. set": config.isa.name,
            "# Instr. forms": len(config.isa),
            "Clock freq.": f"{config.clock_ghz:.1f} GHz",
            "Dispatch width": config.frontend.dispatch_width,
            "Scheduler window": config.backend.scheduler_window,
        }
    text = format_kv_rows(columns, title="Table 1: evaluated (simulated) processors")
    write_result("table1_processors", text)

    # Timed kernel: a representative throughput measurement on SKL.
    machine = machines["SKL"]
    experiment = Experiment({machine.isa.names[0]: 1, machine.isa.names[40]: 1})

    def measure_once():
        machine._cache.pop(experiment, None)  # defeat memoization for timing
        return machine.measure(experiment)

    benchmark(measure_once)
