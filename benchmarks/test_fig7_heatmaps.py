"""Figure 7: predicted-vs-measured heat maps.

Reproduces the paper's 3x3 grid of heat maps (35x35 bins):

    PMEvo on SKL / ZEN / A72        (top row)
    llvm-mca on SKL / ZEN / A72     (middle row)
    uops.info / IACA / Ithemal on SKL (bottom row)

Each map is rendered as ASCII and summarized by its near-diagonal mass
(fraction of experiments within one bin of the ideal line).  Paper shapes:
PMEvo and the SKL mapping-based tools hug the diagonal; llvm-mca on
ZEN/A72 sits far above it (over-estimation); Ithemal scatters.
"""

import numpy as np

from repro.analysis import build_heatmap, diagonal_mass, evaluate_predictor, format_table
from repro.baselines import (
    IACAPredictor,
    IthemalPredictor,
    LLVMMCAPredictor,
    TrainingConfig,
    UopsInfoPredictor,
)
from repro.throughput import MappingPredictor

from bench_lib import scaled, write_result


def test_fig7_heatmaps(machines, pmevo_results, benchmark_sets, benchmark):
    grid = []
    for name in ("SKL", "ZEN", "A72"):
        grid.append((f"PMEvo/{name}", MappingPredictor(pmevo_results[name].mapping, "PMEvo"), name))
    for name in ("SKL", "ZEN", "A72"):
        grid.append((f"llvm-mca/{name}", LLVMMCAPredictor(machines[name]), name))
    grid.append(("uops.info/SKL", UopsInfoPredictor(machines["SKL"]), "SKL"))
    grid.append(("IACA/SKL", IACAPredictor(machines["SKL"]), "SKL"))
    grid.append(
        (
            "Ithemal/SKL",
            IthemalPredictor(
                machines["SKL"], TrainingConfig(num_blocks=scaled(300, minimum=60), seed=3)
            ),
            "SKL",
        )
    )

    sections = []
    masses = {}
    rows = []
    heatmaps = {}
    for label, predictor, machine_name in grid:
        bench = benchmark_sets[machine_name]
        report = evaluate_predictor(predictor, bench, machine_name)
        heatmap = build_heatmap(
            np.array(report.predicted),
            np.array(report.measured),
            predictor=predictor.name,
            machine=machine_name,
            bins=35,
        )
        heatmaps[label] = heatmap
        mass = diagonal_mass(heatmap, radius=1)
        masses[label] = mass
        rows.append([label, f"{mass:.2f}", f"{heatmap.limit:.0f}"])
        sections.append(heatmap.render(width=1))

    summary = format_table(
        ["predictor/machine", "near-diagonal mass", "axis limit (cycles)"],
        rows,
        title="Figure 7 summary: fraction of experiments within 1 bin of the diagonal",
    )
    write_result("fig7_heatmaps", summary + "\n\n" + "\n\n".join(sections))

    # Shape assertions.  On SKL all mapping-based predictors hug the
    # diagonal; on ZEN/A72 PMEvo must clearly beat llvm-mca.
    assert masses["PMEvo/SKL"] > 0.8
    for name in ("ZEN", "A72"):
        assert masses[f"PMEvo/{name}"] > masses[f"llvm-mca/{name}"], name
    assert masses["llvm-mca/ZEN"] < 0.7  # over-estimation pushes mass off-diagonal
    assert masses["Ithemal/SKL"] < masses["uops.info/SKL"]
    # llvm-mca's ZEN/A72 axis limits blow up like the paper's 100/150-cycle
    # axes (over-estimated predictions stretch the plot).
    assert heatmaps["llvm-mca/ZEN"].limit > heatmaps["PMEvo/ZEN"].limit

    # Timed kernel: building one heat map.
    report = evaluate_predictor(
        MappingPredictor(pmevo_results["SKL"].mapping, "PMEvo"), benchmark_sets["SKL"], "SKL"
    )
    predicted = np.array(report.predicted)
    measured = np.array(report.measured)
    benchmark(lambda: build_heatmap(predicted, measured, bins=35))
