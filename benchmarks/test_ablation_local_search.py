"""Ablation: hill-climbing local search on/off (Section 4.4).

The paper runs a greedy hill-climbing pass over µop multiplicities after
the evolution terminates.  This bench quantifies how much accuracy and
compactness that final pass contributes.
"""

from repro.analysis import format_table
from repro.pmevo import EvolutionConfig, PortMappingEvolver

from bench_lib import scaled, write_result
from test_ablation_mutation import _toy_training_data


def test_ablation_local_search(benchmark):
    machine, measured, singles = _toy_training_data()
    ports = machine.config.ports
    rows = []
    stats = {}
    for rounds in (0, 2, 4):
        davgs = []
        volumes = []
        for seed in (0, 1, 2):
            config = EvolutionConfig(
                population_size=scaled(80, minimum=30),
                max_generations=scaled(40, minimum=15),
                local_search_rounds=rounds,
                seed=seed,
            )
            result = PortMappingEvolver(ports, measured, singles, config).run()
            davgs.append(result.davg)
            volumes.append(result.volume)
        stats[rounds] = (sum(davgs) / 3, sum(volumes) / 3)
        rows.append([rounds, f"{stats[rounds][0]:.4f}", f"{stats[rounds][1]:.1f}"])

    text = format_table(
        ["local search rounds", "mean D_avg", "mean µop volume"],
        rows,
        title="Ablation: local search rounds (toy machine, 3 seeds)",
    )
    write_result("ablation_local_search", text)

    # The hill climb must never hurt either objective.
    assert stats[2][0] <= stats[0][0] + 1e-9
    assert stats[2][1] <= stats[0][1] + 1e-9

    config = EvolutionConfig(
        population_size=30, max_generations=8, local_search_rounds=2, seed=0
    )
    benchmark(lambda: PortMappingEvolver(ports, measured, singles, config).run().davg)
