"""Figure 6: validation of the processor model and measurements.

MAPE of (a) the analytical throughput model over the published ground-truth
mapping ("uops.info") and (b) the IACA-style vendor simulator, against
measurements on the SKL machine, for experiment lengths 1..N.

Paper shape: low error (<5%) at short lengths, growing with length for the
analytical model (optimal-scheduler assumption degrades), with IACA staying
flatter because it models the frontend and non-optimal scheduling.
"""

import numpy as np

from repro.analysis import format_table, mape
from repro.baselines import IACAPredictor, UopsInfoPredictor
from repro.core import Experiment
from repro.pmevo import random_experiments

from bench_lib import scaled, stratified_forms, write_result

MAX_LENGTH = 12


def test_fig6_model_error_vs_experiment_length(machines, benchmark):
    machine = machines["SKL"]
    names = stratified_forms(machine, per_class=1, limit=scaled(20, minimum=10))
    per_length = scaled(60, minimum=15)

    oracle = UopsInfoPredictor(machine)
    iaca = IACAPredictor(machine)

    rows = []
    series: dict[str, list[float]] = {"uops.info": [], "iaca": []}
    for length in range(1, MAX_LENGTH + 1):
        if length == 1:
            experiments = [Experiment({name: 1}) for name in names]
        else:
            experiments = random_experiments(
                names, size=length, count=per_length, seed=1000 + length
            )
        measured = np.array([machine.measure(e) for e in experiments])
        oracle_pred = np.array([oracle.predict(e) for e in experiments])
        iaca_pred = np.array([iaca.predict(e) for e in experiments])
        mape_oracle = mape(oracle_pred, measured)
        mape_iaca = mape(iaca_pred, measured)
        series["uops.info"].append(mape_oracle)
        series["iaca"].append(mape_iaca)
        rows.append([length, f"{mape_oracle:.2f}%", f"{mape_iaca:.2f}%", len(experiments)])

    text = format_table(
        ["length", "MAPE uops.info", "MAPE IACA", "#experiments"],
        rows,
        title="Figure 6: simulation error vs experiment length (SKL)",
    )
    write_result("fig6_model_validation", text)

    # Paper shape assertions: short experiments fit the model well; the
    # analytical model degrades with length relative to its own short-
    # experiment accuracy.
    assert series["uops.info"][0] < 8.0
    assert max(series["uops.info"][6:]) >= series["uops.info"][0]

    # Timed kernel: one model-vs-measurement comparison at length 4.
    experiments = random_experiments(names, size=4, count=10, seed=7)
    measured = np.array([machine.measure(e) for e in experiments])

    def kernel():
        predictions = np.array([oracle.predict(e) for e in experiments])
        return mape(predictions, measured)

    benchmark(kernel)
