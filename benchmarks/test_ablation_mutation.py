"""Ablation: mutation operator on/off (Section 4.4).

The paper reports that mutation strategies showed "little to no benefit
over a design without a mutation operator while contributing substantial
numbers of fitness computations", which is why PMEvo's final design is
recombination-only.

Reproduction note: that finding is *scale-dependent*.  At the paper's
population size (100 000) the initial gene pool covers the µop space many
times over, so recombination alone suffices.  At scaled-down populations,
mutation re-introduces gene variants that selection has discarded and can
improve accuracy.  This bench sweeps (population x mutation rate) and
demonstrates both regimes: the mutation advantage shrinks as the
population grows.
"""

from repro.analysis import format_table
from repro.core import ExperimentSet, PortSpace
from repro.machine import MeasurementConfig, toy_machine
from repro.pmevo import (
    EvolutionConfig,
    PortMappingEvolver,
    pair_experiments,
    singleton_experiments,
)

from bench_lib import scaled, write_result

SEEDS = (0, 1, 2)


def _toy_training_data():
    machine = toy_machine(num_ports=3, measurement=MeasurementConfig(noisy=False))
    universe = machine.isa.names
    measured = ExperimentSet()
    singles = {}
    for experiment in singleton_experiments(universe):
        throughput = machine.measure(experiment)
        measured.add(experiment, throughput)
        singles[experiment.support[0]] = throughput
    for experiment in pair_experiments(universe, singles):
        measured.add(experiment, machine.measure(experiment))
    return machine, measured, singles


def _mean_davg(ports: PortSpace, measured, singles, population, rate) -> float:
    davgs = []
    for seed in SEEDS:
        config = EvolutionConfig(
            population_size=population,
            max_generations=scaled(60, minimum=15),
            mutation_rate=rate,
            seed=seed,
        )
        result = PortMappingEvolver(ports, measured, singles, config).run()
        davgs.append(result.davg)
    return sum(davgs) / len(davgs)


def test_ablation_mutation_operator(benchmark):
    machine, measured, singles = _toy_training_data()
    ports: PortSpace = machine.config.ports
    populations = (scaled(60, minimum=30), scaled(400, minimum=150))
    rates = (0.0, 0.05, 0.2)

    rows = []
    results: dict[tuple[int, float], float] = {}
    for population in populations:
        for rate in rates:
            davg = _mean_davg(ports, measured, singles, population, rate)
            results[(population, rate)] = davg
            rows.append([population, f"{rate:.2f}", f"{davg:.4f}"])

    text = format_table(
        ["population", "mutation rate", "mean D_avg"],
        rows,
        title="Ablation: mutation operator across population sizes "
        f"({len(SEEDS)} seeds, toy machine)",
    )
    write_result("ablation_mutation", text)

    small, large = populations
    # Every configuration must reach a usable mapping.
    assert all(davg < 0.15 for davg in results.values())
    # At the large population, recombination-only is already near-perfect —
    # the paper's "little to no benefit" regime: mutation buys at most a
    # marginal improvement.
    assert results[(large, 0.0)] < 0.02
    assert results[(large, 0.0)] - min(
        results[(large, rate)] for rate in rates
    ) < 0.02

    config = EvolutionConfig(
        population_size=30, max_generations=8, mutation_rate=0.0, seed=0
    )
    benchmark(lambda: PortMappingEvolver(ports, measured, singles, config).run().davg)
