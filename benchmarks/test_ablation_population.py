"""Ablation: population size vs mapping quality (Section 4.4).

"By selecting a value for p, the user can find a trade-off between
inference time and quality of the inferred port mapping."  This bench
sweeps the population size on a fixed training set and reports accuracy
and wall time.
"""

import time

from repro.analysis import format_table
from repro.pmevo import EvolutionConfig, PortMappingEvolver

from bench_lib import scaled, write_result
from test_ablation_mutation import _toy_training_data


def test_ablation_population_size(benchmark):
    machine, measured, singles = _toy_training_data()
    ports = machine.config.ports
    rows = []
    quality = {}
    for population in (20, 60, scaled(150, minimum=100)):
        davgs = []
        start = time.perf_counter()
        for seed in (0, 1, 2):
            config = EvolutionConfig(
                population_size=population,
                max_generations=scaled(60, minimum=20),
                seed=seed,
            )
            result = PortMappingEvolver(ports, measured, singles, config).run()
            davgs.append(result.davg)
        elapsed = time.perf_counter() - start
        mean_davg = sum(davgs) / len(davgs)
        quality[population] = mean_davg
        rows.append([population, f"{mean_davg:.4f}", f"{elapsed:.2f}s"])

    text = format_table(
        ["population", "mean D_avg", "wall time (3 seeds)"],
        rows,
        title="Ablation: population size vs quality (toy machine)",
    )
    write_result("ablation_population", text)

    populations = sorted(quality)
    # Larger populations must not be worse than the smallest one.
    assert quality[populations[-1]] <= quality[populations[0]] + 1e-9

    config = EvolutionConfig(population_size=20, max_generations=8, seed=0)
    benchmark(lambda: PortMappingEvolver(ports, measured, singles, config).run().davg)
