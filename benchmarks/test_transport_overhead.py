"""Migration-transport overhead: serial vs pool vs socket on one host.

PR 5 made the island epoch transport-pluggable; this bench records what
each transport costs per epoch barrier on a localhost workload, so the
distributed setup's break-even point is documented: the socket transport
pays JSON serialization plus TCP round trips per epoch, which is only worth
it when a remote machine's cores buy back more than that.

All three transports must return byte-identical results (also pinned by
``tests/test_transport_equivalence.py``); here the interesting number is
epochs/second.
"""

from __future__ import annotations

import dataclasses
import threading
import time

from bench_lib import stratified_forms, write_result
from repro.analysis import format_table
from repro.core import ExperimentSet, PortSpace
from repro.machine import MeasurementConfig, skl_machine
from repro.pmevo import (
    EvolutionConfig,
    IslandEvolver,
    PoolTransport,
    SerialTransport,
    SocketTransport,
    run_worker,
)
from repro.pmevo.expgen import pair_experiments, singleton_experiments

ISLANDS = 4
POPULATION = 24
GENERATIONS = 24
MIGRATION_INTERVAL = 4


def _problem():
    machine = skl_machine(measurement=MeasurementConfig(noisy=False))
    names = stratified_forms(machine, per_class=1, limit=8)
    measured = ExperimentSet()
    singles: dict[str, float] = {}
    for experiment in singleton_experiments(names):
        throughput = machine.measure(experiment)
        measured.add(experiment, throughput)
        singles[experiment.support[0]] = throughput
    for experiment in pair_experiments(names, singles):
        measured.add(experiment, machine.measure(experiment))
    return machine.config.ports, measured, singles


def _config():
    return EvolutionConfig(
        population_size=POPULATION,
        max_generations=GENERATIONS,
        seed=0,
        islands=ISLANDS,
        workers=2,
        migration_interval=MIGRATION_INTERVAL,
        migration_size=2,
    )


def _run(ports, measured, singles, transport):
    evolver = IslandEvolver(ports, measured, singles, _config(), transport)
    start = time.perf_counter()
    result = evolver.run()
    return result, time.perf_counter() - start


def test_transport_overhead_record():
    ports, measured, singles = _problem()

    serial, serial_wall = _run(ports, measured, singles, SerialTransport())
    pool, pool_wall = _run(ports, measured, singles, PoolTransport(2))

    socket_transport = SocketTransport(min_workers=2, heartbeat_timeout=30.0)
    host, port = socket_transport.listen()
    reconnect = dict(max_reconnect_attempts=2, reconnect_window=2.0, jitter_seed=1)
    workers = [
        threading.Thread(
            target=run_worker, args=(host, port), kwargs=reconnect, daemon=True
        )
        for _ in range(2)
    ]
    for worker in workers:
        worker.start()
    socket_result, socket_wall = _run(ports, measured, singles, socket_transport)
    for worker in workers:
        worker.join(timeout=30)

    def normalized(result) -> str:
        return dataclasses.replace(result, wall_seconds=0.0, workers=0).to_json()

    assert normalized(pool) == normalized(serial)
    assert normalized(socket_result) == normalized(serial)
    assert serial.epochs >= 2

    rows = []
    for label, result, wall in (
        ("serial", serial, serial_wall),
        ("pool(2)", pool, pool_wall),
        ("socket(2 local)", socket_result, socket_wall),
    ):
        rows.append(
            [
                label,
                f"{wall:.2f}",
                f"{result.epochs / wall:.2f}",
                f"{(wall - serial_wall) / result.epochs * 1000:+.0f}",
            ]
        )
    table = format_table(
        ["transport", "wall (s)", "epochs/s", "overhead/epoch vs serial (ms)"],
        rows,
        title=(
            f"transport overhead, {ISLANDS}x{POPULATION} islands, "
            f"{GENERATIONS} generations (identical results pinned)"
        ),
    )
    write_result("transport_overhead", table)
