"""Shared fixtures for the reproduction benchmarks.

Every bench regenerates one table or figure of the paper (see DESIGN.md's
per-experiment index).  Scales are reduced relative to the paper — the
paper benchmarks 310–390 forms for 20–74 hours and evolves populations of
100 000; we subsample forms and use laptop-scale populations so the whole
suite runs in minutes.  Set the environment variable ``REPRO_BENCH_SCALE``
(default 1.0) to grow or shrink every workload proportionally.

Results are printed and also written to ``benchmarks/results/*.txt`` so
``pytest benchmarks/ --benchmark-only`` leaves a durable record; see
EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from bench_lib import scaled, stratified_forms
from repro.core import ExperimentSet
from repro.machine import (
    Machine,
    MeasurementConfig,
    a72_machine,
    skl_machine,
    zen_machine,
)
from repro.pmevo import (
    EvolutionConfig,
    PMEvoConfig,
    infer_port_mapping,
    random_experiments,
)


_BENCH_DIR = Path(__file__).parent


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ so tiers can be selected with -m.

    The fast CI tier runs ``-m "not benchmark"``; the nightly tier runs the
    ``benchmark``-marked reproduction suite.
    """
    for item in items:
        if _BENCH_DIR in Path(item.fspath).parents:
            item.add_marker(pytest.mark.benchmark)


def _machine_factory(name: str):
    return {"SKL": skl_machine, "ZEN": zen_machine, "A72": a72_machine}[name]


@pytest.fixture(scope="session")
def machines() -> dict[str, Machine]:
    """The three Table 1 machines with realistic measurement noise."""
    return {
        name: _machine_factory(name)(measurement=MeasurementConfig(noisy=True, seed=17))
        for name in ("SKL", "ZEN", "A72")
    }


@pytest.fixture(scope="session")
def bench_forms(machines) -> dict[str, list[str]]:
    """Instruction-form subsample per machine (scaled from 310/390 forms).

    Two forms per semantic class: real ISAs carry many forms per execution
    resource, which is what makes congruence filtering effective (Table 2
    reports 53%-69% congruent) — a 1-per-class sample would misrepresent
    that structure.
    """
    limit = scaled(26, minimum=10)
    return {
        name: stratified_forms(machine, per_class=2, limit=limit)
        for name, machine in machines.items()
    }


@pytest.fixture(scope="session")
def pmevo_results(machines, bench_forms):
    """PMEvo pipeline results per machine (Figure 5 end to end).

    Session-scoped: Table 2, Tables 3/4 and Figure 7 all reuse these runs,
    exactly like the paper evaluates one inferred mapping per machine.
    """
    config = PMEvoConfig(
        epsilon=0.05,
        evolution=EvolutionConfig(
            population_size=scaled(200, minimum=40),
            max_generations=scaled(120, minimum=20),
            patience=25,
            seed=0,
        ),
    )
    return {
        name: infer_port_mapping(machine, names=bench_forms[name], config=config)
        for name, machine in machines.items()
    }


@pytest.fixture(scope="session")
def benchmark_sets(machines, bench_forms) -> dict[str, ExperimentSet]:
    """Random size-5 multiset benchmark sets, measured (Section 5.3).

    The paper uses 40 000 experiments per machine; scaled default is 250.
    """
    count = scaled(250, minimum=40)
    sets: dict[str, ExperimentSet] = {}
    for name, machine in machines.items():
        experiments = random_experiments(bench_forms[name], size=5, count=count, seed=99)
        measured = ExperimentSet()
        for experiment in experiments:
            measured.add(experiment, machine.measure(experiment))
        sets[name] = measured
    return sets
