"""Table 3: prediction accuracy on port-mapping-bound experiments, SKL.

Paper values:

            MAPE    Pearson  Spearman
PMEvo       14.7%   0.98     0.85
uops.info    9.3%   0.92     0.88
IACA         8.0%   0.86     0.79
llvm-mca     9.7%   0.87     0.82
Ithemal     60.6%   0.35     0.54

Shape to reproduce: the four mapping-based predictors are tightly grouped
with high correlations (PMEvo competitive despite using only timing
measurements), while the learned-on-dependent-code baseline is far off.
"""

from repro.analysis import evaluate_predictor, format_table
from repro.baselines import (
    IACAPredictor,
    IthemalPredictor,
    LLVMMCAPredictor,
    TrainingConfig,
    UopsInfoPredictor,
)
from repro.throughput import MappingPredictor

from bench_lib import scaled, write_result


def test_table3_skl_accuracy(machines, pmevo_results, benchmark_sets, benchmark):
    machine = machines["SKL"]
    bench = benchmark_sets["SKL"]

    pmevo = MappingPredictor(pmevo_results["SKL"].mapping, name="PMEvo")
    predictors = [
        pmevo,
        UopsInfoPredictor(machine),
        IACAPredictor(machine),
        LLVMMCAPredictor(machine),
        IthemalPredictor(
            machine, TrainingConfig(num_blocks=scaled(300, minimum=60), seed=3)
        ),
    ]

    reports = {p.name: evaluate_predictor(p, bench, "SKL") for p in predictors}
    rows = [
        [r.predictor, f"{r.mape:.1f}%", f"{r.pearson:.2f}", f"{r.spearman:.2f}"]
        for r in reports.values()
    ]
    text = format_table(
        ["predictor", "MAPE", "Pearson CC", "Spearman CC"],
        rows,
        title=f"Table 3: accuracy on SKL ({len(bench)} size-5 experiments)",
    )
    write_result("table3_skl_accuracy", text)

    # Shape assertions mirroring the paper's qualitative findings.
    mapping_based = ["PMEvo", "uops.info", "IACA", "llvm-mca"]
    for name in mapping_based:
        assert reports[name].mape < 30.0, name
        assert reports[name].pearson > 0.7, name
    # Ithemal (trained on dependency-heavy blocks) is far worse than every
    # mapping-based predictor on dependency-free experiments: much larger
    # relative error and worse experiment ranking.  (Our simulator is
    # cleaner than real silicon, so its Pearson CC lands higher than the
    # paper's 0.35 — block length alone correlates with cycles — but the
    # comparative claim is what Table 3 is about.)
    worst_mapping_mape = max(reports[n].mape for n in mapping_based)
    assert reports["Ithemal"].mape > 1.5 * worst_mapping_mape
    assert reports["Ithemal"].spearman < min(reports[n].spearman for n in mapping_based)

    # Timed kernel: PMEvo mapping prediction over the benchmark set.
    benchmark(lambda: [pmevo.predict(e) for e in bench.experiments[:50]])
