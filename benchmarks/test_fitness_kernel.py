"""Fitness-kernel throughput: legacy per-genome dict path vs packed kernel.

PR 6 replaced the evolver's fitness evaluation — per-genome ``uop_matrix``
scatters and per-genome Python ``genome_volume`` sums — with the packed
structure-of-arrays kernel (:class:`repro.pmevo.packed.PackedPopulation` +
:meth:`~repro.throughput.batched.BatchedThroughputEvaluator.throughputs_from_packed`
+ vectorized :meth:`~repro.pmevo.packed.PackedPopulation.volumes`).
Section 4.5 of the paper motivates exactly this: fitness-evaluation speed
"directly corresponds to the quality of the obtained solution", which is
why the original PMEvo drops to a C++ core for it.

Both paths produce bit-identical fitness values (pinned by
``tests/test_packed.py`` and ``tests/test_backend_equivalence.py``); the
interesting numbers here are genomes/second through each path, on two
problem shapes:

* ``a72`` — a real machine subsample (7 ports, pair experiments).  Here
  the dense einsum/zeta math over the ``2^|P|`` mask space dominates both
  paths equally, so the packed win is the workspace reuse and the removal
  of per-genome allocation churn — real but modest.
* ``wide-isa`` — many instruction forms over a small port count (the
  Figure 8a low-port regime).  Here the per-genome Python traffic is the
  wall, and packing removes it wholesale; this is the regime the >= 3x
  acceptance bar targets.

Results are *appended* to ``benchmarks/results/fitness_kernel.txt`` so
speedups accumulate as history across runs.
"""

from __future__ import annotations

import time

import numpy as np

from bench_lib import append_result, scaled, stratified_forms
from repro.core import Experiment, ExperimentSet
from repro.machine import MeasurementConfig, a72_machine
from repro.pmevo import (
    EvolutionConfig,
    PackedPopulation,
    PortMappingEvolver,
    random_population,
)
from repro.pmevo.expgen import pair_experiments, singleton_experiments
from repro.pmevo.population import genome_volume
from repro.throughput import BatchedThroughputEvaluator

POPULATION = 256
CHUNK = 64
REPEATS = 3
EVOLVER_GENERATIONS = 8
MIN_SPEEDUP = 3.0


def _a72_problem():
    """A real-machine shape: 7 ports, subsampled forms, pair experiments."""
    machine = a72_machine(measurement=MeasurementConfig(noisy=False))
    names = stratified_forms(machine, per_class=1, limit=16)
    measured = ExperimentSet()
    singles: dict[str, float] = {}
    for experiment in singleton_experiments(names):
        throughput = machine.measure(experiment)
        measured.add(experiment, throughput)
        singles[experiment.support[0]] = throughput
    for experiment in pair_experiments(names, singles):
        measured.add(experiment, machine.measure(experiment))
    return machine.config.ports.num_ports, measured, singles


def _wide_isa_problem(num_instructions=160, num_experiments=48, num_ports=4):
    """A wide-ISA shape: many forms, few ports, few experiments.

    Synthetic, like the Figure 8 scaling benches: the point is the shape of
    the work, not any particular machine's numbers.
    """
    rng = np.random.default_rng(1)
    names = tuple(f"op{i}" for i in range(num_instructions))
    singles = {name: float(rng.uniform(0.5, 3.0)) for name in names}
    measured = ExperimentSet()
    for i in range(num_experiments):
        left = names[(2 * i) % num_instructions]
        right = names[(2 * i + 1) % num_instructions]
        experiment = Experiment({left: 1, right: 1})
        measured.add(experiment, float(rng.uniform(0.5, 4.0)))
    return num_ports, measured, singles


def _legacy_fitness(evaluator, genomes, chunk):
    """The pre-packed ``_evaluate``: per-genome dict scatter + Python sums."""
    predicted = np.empty(
        (len(genomes), evaluator.num_experiments), dtype=np.float64
    )
    for start in range(0, len(genomes), chunk):
        part = genomes[start : start + chunk]
        matrices = np.stack([evaluator.uop_matrix(genome) for genome in part])
        predicted[start : start + len(part)] = (
            evaluator.throughputs_from_matrices(matrices)
        )
    davgs = evaluator.davg_from_throughputs(predicted)
    volumes = np.empty(len(genomes), dtype=np.float64)
    for i, genome in enumerate(genomes):
        volumes[i] = genome_volume(genome)
    return davgs, volumes


def _packed_fitness(evaluator, genomes, names, workspace):
    """The PR 6 ``_evaluate``: pack once, evaluate population-wide."""
    packed = PackedPopulation.from_genomes(genomes, names)
    predicted = evaluator.throughputs_from_packed(packed, workspace=workspace)
    davgs = evaluator.davg_from_throughputs(predicted)
    volumes = packed.volumes().astype(np.float64)
    return davgs, volumes


def _best_seconds(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _legacy_kernel(evaluator, genomes, chunk):
    """Legacy throughput kernel alone: per-genome scatter + chunked einsum."""
    predicted = np.empty(
        (len(genomes), evaluator.num_experiments), dtype=np.float64
    )
    for start in range(0, len(genomes), chunk):
        part = genomes[start : start + chunk]
        matrices = np.stack([evaluator.uop_matrix(genome) for genome in part])
        predicted[start : start + len(part)] = (
            evaluator.throughputs_from_matrices(matrices)
        )
    return predicted


def _time_shape(label, num_ports, measured, singles, names=None):
    if names is None:
        names = tuple(measured.instruction_names())
    evaluator = BatchedThroughputEvaluator(measured, names, num_ports)
    population_size = scaled(POPULATION, minimum=CHUNK)
    rng = np.random.default_rng(0)
    genomes = random_population(rng, population_size, names, num_ports, singles)
    workspace = evaluator.packed_workspace(CHUNK)

    # Kernel proper: dense scatter + evaluation, population already packed.
    packed = PackedPopulation.from_genomes(genomes, names)
    kernel_legacy_seconds, kernel_legacy_out = _best_seconds(
        lambda: _legacy_kernel(evaluator, genomes, CHUNK)
    )
    kernel_packed_seconds, kernel_packed_out = _best_seconds(
        lambda: evaluator.throughputs_from_packed(packed, workspace=workspace)
    )
    assert np.array_equal(kernel_legacy_out, kernel_packed_out)

    # End to end, as `_evaluate` runs it: pack + kernel + D_avg + volumes.
    legacy_seconds, legacy_out = _best_seconds(
        lambda: _legacy_fitness(evaluator, genomes, CHUNK)
    )
    packed_seconds, packed_out = _best_seconds(
        lambda: _packed_fitness(evaluator, genomes, names, workspace)
    )
    assert np.array_equal(legacy_out[0], packed_out[0])
    assert np.array_equal(legacy_out[1], packed_out[1])

    kernel_speedup = kernel_legacy_seconds / kernel_packed_seconds
    fitness_speedup = legacy_seconds / packed_seconds
    lines = [
        f"  {label:9s} pop={population_size} instr={len(names)} "
        f"ports={num_ports} experiments={evaluator.num_experiments}",
        f"    throughput kernel : "
        f"{population_size / kernel_legacy_seconds:10.1f} -> "
        f"{population_size / kernel_packed_seconds:10.1f} genomes/s "
        f"({kernel_speedup:.1f}x)",
        f"    full fitness      : "
        f"{population_size / legacy_seconds:10.1f} -> "
        f"{population_size / packed_seconds:10.1f} genomes/s "
        f"({fitness_speedup:.1f}x, includes dict->packed conversion)",
    ]
    return kernel_speedup, lines


def test_fitness_kernel_speedup():
    report = ["fitness-kernel (legacy dict path -> packed kernel)"]

    a72_speedup, lines = _time_shape("a72", *_a72_problem())
    report.extend(lines)
    num_ports, measured, singles = _wide_isa_problem()
    wide_names = tuple(f"op{i}" for i in range(160))
    wide_speedup, lines = _time_shape(
        "wide-isa", num_ports, measured, singles, names=wide_names
    )
    report.extend(lines)

    # Whole-evolver rate on the packed hot path (fitness + operators).
    num_ports, measured, singles = _wide_isa_problem(num_instructions=48)
    from repro.core import PortSpace

    evolver = PortMappingEvolver(
        PortSpace.numbered(num_ports),
        measured,
        singles,
        EvolutionConfig(
            population_size=scaled(POPULATION, minimum=CHUNK),
            max_generations=EVOLVER_GENERATIONS,
            seed=0,
        ),
    )
    state = evolver.init_state()
    epoch_start = time.perf_counter()
    evolver.advance(state, EVOLVER_GENERATIONS)
    epochs_per_second = EVOLVER_GENERATIONS / (time.perf_counter() - epoch_start)
    report.append(
        f"  evolver (48 instr, packed hot path): "
        f"{epochs_per_second:.2f} epochs/s (generations/s)"
    )

    append_result("fitness_kernel", "\n".join(report))

    best = max(a72_speedup, wide_speedup)
    assert best >= MIN_SPEEDUP, (
        f"packed kernel peaks at {best:.2f}x the legacy path "
        f"(need >= {MIN_SPEEDUP}x)"
    )
