"""Table 4: prediction accuracy on ZEN and A72 (PMEvo vs llvm-mca).

Paper values:

                  MAPE    Pearson  Spearman
PMEvo (ZEN)       13.5%   0.94     0.87
llvm-mca (ZEN)    50.8%   0.86     0.54
PMEvo (A72)       21.4%   0.68     0.77
llvm-mca (A72)    65.3%   0.67     0.68

Shape to reproduce: PMEvo beats llvm-mca's hand-tuned models by a wide
margin on both non-Intel machines; llvm-mca over-estimates heavily; A72 is
the harder target (weaker OOO engine makes experiments less representative
of the port mapping).
"""

import numpy as np

from repro.analysis import evaluate_predictor, format_table
from repro.baselines import LLVMMCAPredictor
from repro.throughput import MappingPredictor

from bench_lib import write_result


def test_table4_zen_a72_accuracy(machines, pmevo_results, benchmark_sets, benchmark):
    rows = []
    reports = {}
    for name in ("ZEN", "A72"):
        machine = machines[name]
        bench = benchmark_sets[name]
        pmevo = MappingPredictor(pmevo_results[name].mapping, name="PMEvo")
        mca = LLVMMCAPredictor(machine)
        for predictor in (pmevo, mca):
            report = evaluate_predictor(predictor, bench, name)
            reports[(predictor.name, name)] = report
            rows.append(
                [
                    f"{report.predictor} ({name})",
                    f"{report.mape:.1f}%",
                    f"{report.pearson:.2f}",
                    f"{report.spearman:.2f}",
                ]
            )

    text = format_table(
        ["predictor", "MAPE", "Pearson CC", "Spearman CC"],
        rows,
        title="Table 4: accuracy on ZEN and A72",
    )
    write_result("table4_zen_a72_accuracy", text)

    for name in ("ZEN", "A72"):
        pmevo_report = reports[("PMEvo", name)]
        mca_report = reports[("llvm-mca", name)]
        # The headline result: PMEvo's inferred mapping is considerably
        # more accurate than llvm-mca's hand-tuned model.  (Absolute PMEvo
        # accuracy at this scale varies with the noise/EA seeds — observed
        # 14-36% MAPE on ZEN across runs — but the gap to llvm-mca never
        # closes; see EXPERIMENTS.md.)
        assert pmevo_report.mape < 0.6 * mca_report.mape, name
        assert pmevo_report.mape < 40.0, name
        assert mca_report.mape > 25.0, name
        # llvm-mca's failure mode is over-estimation (Figure 7).
        over = np.mean(
            np.array(mca_report.predicted) > np.array(mca_report.measured) * 1.05
        )
        assert over > 0.4, name

    # Timed kernel: PMEvo prediction on ZEN.
    pmevo = MappingPredictor(pmevo_results["ZEN"].mapping, name="PMEvo")
    experiments = benchmark_sets["ZEN"].experiments[:50]
    benchmark(lambda: [pmevo.predict(e) for e in experiments])
