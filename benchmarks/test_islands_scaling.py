"""Island-model scaling: time-to-target-quality versus a single population.

The paper parallelizes its evolutionary algorithm because evaluation speed
"directly corresponds to the quality of the obtained solution" (Section
4.5).  This bench quantifies the reproduction's island model on the SKL
preset:

* a sequential single-population baseline (population ``4p``) establishes a
  target fitness (its best training D_avg),
* 4 islands of ``p`` (same total gene pool) run in time-to-target mode and
  must reach that fitness with at most the baseline's evaluation count —
  so with ``W`` workers on ``W`` cores the wall-clock to baseline quality
  is at most ``1/W`` of the work ratio; with 4 workers and the measured
  ratio this is well under the 0.5x bound,
* the same root seed is re-run with 1 and 4 workers to record that the
  parallel path is bit-reproducible.

Wall-clock is asserted directly only when the host actually has multiple
cores (CI containers often pin one); the work ratio, which wall-clock
tracks, is asserted unconditionally.
"""

from __future__ import annotations

import os
import time

import pytest

from bench_lib import stratified_forms, write_result
from repro.machine import MeasurementConfig, skl_machine
from repro.pmevo import EvolutionConfig, PMEvoConfig, infer_port_mapping

ISLANDS = 4
ISLAND_POPULATION = 40
BASELINE_GENERATIONS = 40
ROOT_SEED = 0


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def skl_preset():
    machine = skl_machine(measurement=MeasurementConfig(noisy=False))
    return machine, stratified_forms(machine, per_class=1, limit=8)


def _run(machine, names, *, population, islands, workers, target=None,
         max_generations=BASELINE_GENERATIONS):
    config = PMEvoConfig(
        evolution=EvolutionConfig(
            population_size=population,
            max_generations=max_generations,
            seed=ROOT_SEED,
            islands=islands,
            workers=workers,
            migration_interval=4,
            migration_size=3,
            target_davg=target,
        )
    )
    start = time.perf_counter()
    result = infer_port_mapping(machine, names=names, config=config)
    return result, time.perf_counter() - start


def _history_best(evolution) -> float:
    histories = getattr(evolution, "island_histories", None) or [evolution.history]
    return min(min(s.best_davg for s in h) for h in histories)


def test_islands_reach_baseline_fitness_faster(skl_preset):
    machine, names = skl_preset
    cpus = _available_cpus()

    baseline, baseline_wall = _run(
        machine, names, population=ISLANDS * ISLAND_POPULATION, islands=1, workers=1
    )
    target = _history_best(baseline.evolution)

    parallel, parallel_wall = _run(
        machine, names, population=ISLAND_POPULATION, islands=ISLANDS,
        workers=min(ISLANDS, cpus), target=target, max_generations=100,
    )
    serial, serial_wall = _run(
        machine, names, population=ISLAND_POPULATION, islands=ISLANDS,
        workers=1, target=target, max_generations=100,
    )

    reached = _history_best(parallel.evolution) <= target
    work_ratio = parallel.evolution.evaluations / baseline.evolution.evaluations
    wall_ratio = parallel_wall / baseline_wall
    # Perfect-scaling bound: epochs advance the islands independently, so W
    # cores divide the serial island time by W between migration barriers.
    projected_ratio = (serial_wall / ISLANDS) / baseline_wall
    reproducible = (
        serial.evolution.mapping == parallel.evolution.mapping
        and serial.evolution.history == parallel.evolution.history
    )

    lines = [
        "island-model scaling vs single population (SKL preset, "
        f"{len(names)} forms, root seed {ROOT_SEED})",
        f"baseline: population {ISLANDS * ISLAND_POPULATION}, "
        f"{baseline.evolution.generations} generations, "
        f"{baseline.evolution.evaluations} evaluations, {baseline_wall:.2f}s, "
        f"best training D_avg {target:.4f}",
        f"islands:  {ISLANDS} x {ISLAND_POPULATION}, time-to-target mode, "
        f"{parallel.evolution.generations} generations, "
        f"{parallel.evolution.evaluations} evaluations, {parallel_wall:.2f}s "
        f"({parallel.evolution.workers} workers, {cpus} cpus visible)",
        f"target fitness reached: {reached}",
        f"evaluations-to-target ratio: {work_ratio:.2f}",
        f"measured wall-clock ratio: {wall_ratio:.2f}",
        f"projected wall-clock ratio on {ISLANDS} cores: {projected_ratio:.2f}",
        f"migrations: {parallel.evolution.migrations} "
        f"(every {4} generations, ring of {ISLANDS})",
        f"bit-reproducible across worker counts: {reproducible}",
    ]
    write_result("islands_scaling", "\n".join(lines))

    assert reached, "islands never reached the baseline's best fitness"
    assert reproducible, "worker count changed the inferred mapping"
    # Reaching target quality with at most the baseline's evaluation count
    # means ISLANDS truly parallel workers have at least a 2x margin under
    # the 0.5x wall bound (work_ratio / ISLANDS <= 0.25 at perfect scaling).
    # Only assert the measured wall when that many cores really exist;
    # fewer cores (work_ratio / cpus plus pool overhead) could straddle the
    # bound and make the bench flaky on small runners.
    assert work_ratio <= 1.0
    if cpus >= ISLANDS:
        assert wall_ratio <= 0.5, (
            f"islands took {wall_ratio:.2f}x the baseline wall-clock "
            f"with {cpus} cpus available"
        )
