"""Figure 8b: bottleneck simulation algorithm vs LP solver — length scaling.

Times both back ends at a fixed 10 ports for experiment lengths 1..10
(Section 5.4).  Paper shape: the bottleneck algorithm outperforms the LP
solver by roughly two orders of magnitude across all lengths, with both
methods growing mildly (sub-exponentially) in experiment length.
"""

import numpy as np

from repro.analysis import format_table
from repro.throughput import lp_throughput_masses
from repro.throughput.bottleneck import bottleneck_throughput_dense

from bench_lib import scaled, write_result
from test_fig8a_ports_scaling import _time_per_experiment, random_workload

NUM_PORTS = 10
LENGTHS = tuple(range(1, 11))


def test_fig8b_bottleneck_vs_lp_length_scaling(benchmark):
    rng = np.random.default_rng(21)
    rows = []
    ratios = []
    bn_times = []
    lp_times = []
    for length in LENGTHS:
        workload = random_workload(
            NUM_PORTS,
            length=length,
            rng=rng,
            num_mappings=scaled(4, minimum=2),
            num_experiments=scaled(16, minimum=4),
        )
        bn_time = _time_per_experiment(
            bottleneck_throughput_dense, workload, NUM_PORTS, 5
        )
        lp_time = _time_per_experiment(lp_throughput_masses, workload, NUM_PORTS, 1)
        bn_times.append(bn_time)
        lp_times.append(lp_time)
        ratios.append(lp_time / bn_time)
        rows.append(
            [length, f"{bn_time:.2e}", f"{lp_time:.2e}", f"{lp_time / bn_time:.1f}x"]
        )

    text = format_table(
        ["length", "bn algorithm (s/exp)", "LP solver (s/exp)", "LP/bn ratio"],
        rows,
        title="Figure 8b: time per experiment vs experiment length (10 ports)",
    )
    write_result("fig8b_length_scaling", text)

    # The bottleneck advantage holds across every length.
    assert all(r > 10.0 for r in ratios)
    # Both methods grow mildly with length: no explosion from 1 to 10.
    assert bn_times[-1] < bn_times[0] * 20
    assert lp_times[-1] < lp_times[0] * 20

    # Timed kernel: length-10 bottleneck evaluations.
    rng = np.random.default_rng(3)
    workload = random_workload(NUM_PORTS, length=10, rng=rng, num_mappings=2, num_experiments=8)
    benchmark(lambda: [bottleneck_throughput_dense(m, NUM_PORTS) for m in workload])
