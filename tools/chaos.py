#!/usr/bin/env python3
"""Chaos runner: SIGKILL a live cluster and check the mapping survives.

This is the subprocess half of the fault-injection harness (the in-process
half is :mod:`repro.pmevo.faults`).  It drives a real ``repro-pmevo infer
--transport socket`` cluster through a scripted kill:

1. run a serial baseline (``infer`` with no transport) to get the ground
   truth mapping bytes,
2. start a socket coordinator with ``--checkpoint`` (interval 1) and the
   requested number of worker processes,
3. poll the checkpoint until the run reaches ``--at-epoch``,
4. SIGKILL the victim: ``--kill coordinator`` (then restart it with
   ``--resume`` at the *same* ``--bind`` address, so the surviving workers
   re-attach to it) or ``--kill worker`` (the coordinator requeues the
   dead worker's leases),
5. compare the final mapping bytes against the baseline.

Exit status 0 means the interrupted run produced byte-identical output;
anything else is a recovery bug.  Used manually by operators rehearsing
failure drills and by ``tests/test_chaos.py`` (the ``chaos`` marker).

Usage::

    python tools/chaos.py --kill coordinator --at-epoch 2
    python tools/chaos.py --kill worker --at-epoch 1 --workers 3 --seed 1
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _free_port() -> int:
    with socket.create_server(("127.0.0.1", 0)) as listener:
        return listener.getsockname()[1]


def _env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _infer_command(args: argparse.Namespace, output: Path, extra: list[str]) -> list[str]:
    return [
        sys.executable,
        "-m",
        "repro.cli",
        "infer",
        args.machine,
        "-o",
        str(output),
        "--forms",
        str(args.forms),
        "--population",
        str(args.population),
        "--generations",
        str(args.generations),
        "--islands",
        str(args.islands),
        "--migration-interval",
        str(args.migration_interval),
        "--seed",
        str(args.seed),
        *extra,
    ]


def _poll_epochs(checkpoint: Path, target: int, deadline: float) -> None:
    """Block until the checkpoint reports ``epochs >= target``."""
    while time.monotonic() < deadline:
        try:
            if json.loads(checkpoint.read_text()).get("epochs", 0) >= target:
                return
        except (OSError, json.JSONDecodeError):
            pass  # not written yet, or caught mid-replace
        time.sleep(0.05)
    raise TimeoutError(f"checkpoint never reached epoch {target}")


def _spawn_workers(args: argparse.Namespace, address: str, count: int) -> list:
    return [
        subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "worker",
                "--connect",
                address,
                "--heartbeat-interval",
                str(args.heartbeat_interval),
                "--reconnect-window",
                str(args.reconnect_window),
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=_env(),
            cwd=REPO_ROOT,
        )
        for _ in range(count)
    ]


def run_drill(args: argparse.Namespace, scratch: Path) -> int:
    env = _env()
    deadline = time.monotonic() + args.timeout

    baseline = scratch / "baseline.json"
    print("chaos: running serial baseline", flush=True)
    subprocess.run(
        _infer_command(args, baseline, []),
        check=True,
        stdout=subprocess.DEVNULL,
        env=env,
        cwd=REPO_ROOT,
        timeout=args.timeout,
    )

    bind = f"127.0.0.1:{_free_port()}"
    checkpoint = scratch / "snapshot.json"
    cluster_out = scratch / "cluster.json"
    cluster_flags = [
        "--transport",
        "socket",
        "--bind",
        bind,
        "--min-workers",
        str(args.workers),
        "--checkpoint",
        str(checkpoint),
        "--checkpoint-interval",
        "1",
        "--heartbeat-timeout",
        str(args.heartbeat_timeout),
    ]
    print(f"chaos: starting coordinator on {bind}", flush=True)
    coordinator = subprocess.Popen(
        _infer_command(args, cluster_out, cluster_flags),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=env,
        cwd=REPO_ROOT,
    )
    workers = _spawn_workers(args, bind, args.workers)
    procs = [coordinator, *workers]
    try:
        _poll_epochs(checkpoint, args.at_epoch, deadline)

        if args.kill == "worker":
            victim = workers[0]
            print(f"chaos: SIGKILL worker pid {victim.pid}", flush=True)
            victim.send_signal(signal.SIGKILL)
            victim.wait()
        else:
            print(f"chaos: SIGKILL coordinator pid {coordinator.pid}", flush=True)
            coordinator.send_signal(signal.SIGKILL)
            coordinator.wait()
            # Restart at the SAME address with --resume: the surviving
            # workers' reconnect loops re-attach to the new process.
            print("chaos: restarting coordinator with --resume", flush=True)
            coordinator = subprocess.Popen(
                _infer_command(
                    args, cluster_out, [*cluster_flags, "--resume", str(checkpoint)]
                ),
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
                env=env,
                cwd=REPO_ROOT,
            )
            procs.append(coordinator)

        code = coordinator.wait(timeout=max(1.0, deadline - time.monotonic()))
        if code != 0:
            print(f"chaos: FAIL — coordinator exited {code}", flush=True)
            return 1
        for worker in workers[1 if args.kill == "worker" else 0 :]:
            code = worker.wait(timeout=max(1.0, deadline - time.monotonic()))
            if code != 0:
                print(f"chaos: FAIL — worker exited {code}", flush=True)
                return 1
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()

    if cluster_out.read_bytes() != baseline.read_bytes():
        print("chaos: FAIL — interrupted run diverged from the baseline", flush=True)
        return 1
    print(
        f"chaos: OK — {args.kill} killed at epoch {args.at_epoch}, "
        "mapping byte-identical to the serial baseline",
        flush=True,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--kill",
        choices=["coordinator", "worker"],
        required=True,
        help="which process receives SIGKILL",
    )
    parser.add_argument(
        "--at-epoch",
        type=int,
        default=1,
        help="kill once the checkpoint reports this many epochs (default 1)",
    )
    parser.add_argument("--machine", default="SKL", choices=["SKL", "ZEN", "A72"])
    parser.add_argument("--forms", type=int, default=6)
    parser.add_argument("--population", type=int, default=16)
    parser.add_argument("--generations", type=int, default=8)
    parser.add_argument("--islands", type=int, default=2)
    parser.add_argument("--migration-interval", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=2, help="worker processes")
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=0.5,
        help="worker heartbeat period (small, so drills finish fast)",
    )
    parser.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=5.0,
        help="coordinator silence threshold before dropping a worker",
    )
    parser.add_argument(
        "--reconnect-window",
        type=float,
        default=60.0,
        help="how long workers keep trying to re-attach after a drop",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="overall drill budget in seconds",
    )
    parser.add_argument(
        "--scratch",
        type=Path,
        default=None,
        help="directory for baseline/checkpoint/output files "
        "(default: a fresh temporary directory)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.scratch is not None:
        args.scratch.mkdir(parents=True, exist_ok=True)
        return run_drill(args, args.scratch)
    import tempfile

    with tempfile.TemporaryDirectory(prefix="pmevo-chaos-") as tmp:
        return run_drill(args, Path(tmp))


if __name__ == "__main__":
    sys.exit(main())
