#!/usr/bin/env python3
"""Link checker for the repository's markdown documentation.

Validates, without any third-party dependency:

* relative links and images (``[text](path)``) point at files or
  directories that exist (anchors are stripped; external ``http(s)``,
  ``mailto`` and bare-anchor links are skipped),
* backtick-quoted repo paths that look like files (``docs/cli.md``,
  ``src/repro/pmevo/transport.py``, ``tests/test_islands.py``) exist, so
  prose references cannot rot silently.

Usage: ``python tools/check_links.py [FILES...]`` — defaults to README.md
plus everything under docs/.  Exits non-zero listing every broken
reference.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: [text](target) — excluding images' alt text is irrelevant, same syntax.
_MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: `path/with/slash.ext` mentioned in prose or tables.
_BACKTICK_PATH = re.compile(r"`([A-Za-z0-9_./-]+/[A-Za-z0-9_.-]+\.[A-Za-z0-9]{1,5})`")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def _strip_code_blocks(text: str) -> str:
    """Remove fenced code blocks — paths in shell examples may be outputs."""
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def check_file(path: Path) -> list[str]:
    errors: list[str] = []
    text = path.read_text(encoding="utf-8")
    prose = _strip_code_blocks(text)

    for match in _MARKDOWN_LINK.finditer(prose):
        target = match.group(1)
        if target.startswith(_SKIP_PREFIXES):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            errors.append(f"{path}: broken link -> {target}")

    for match in _BACKTICK_PATH.finditer(prose):
        candidate = match.group(1)
        if candidate.startswith(_SKIP_PREFIXES) or candidate.startswith("~"):
            continue
        # Resolve relative to the repo root (how prose references read) and
        # to the file's own directory; either existing is fine.
        if not (REPO_ROOT / candidate).exists() and not (
            path.parent / candidate
        ).exists():
            errors.append(f"{path}: dangling path reference -> {candidate}")

    return errors


def main(argv: list[str]) -> int:
    if argv:
        files = [Path(arg) for arg in argv]
    else:
        files = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    missing = [f for f in files if not f.exists()]
    if missing:
        for f in missing:
            print(f"no such file: {f}", file=sys.stderr)
        return 2
    errors: list[str] = []
    for f in files:
        errors.extend(check_file(f))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} file(s): {len(errors)} broken reference(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
