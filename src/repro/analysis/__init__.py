"""Accuracy metrics, heat maps, mapping comparison/export, and tables."""

from repro.analysis.compare import (
    MappingComparison,
    canonical_experiments,
    find_port_permutation,
    mapping_diff,
    permutation_equivalent,
    throughput_distance,
)
from repro.analysis.export import (
    reciprocal_throughputs,
    to_llvm_sched_model,
    to_osaca_table,
)
from repro.analysis.heatmap import Heatmap, build_heatmap, diagonal_mass
from repro.analysis.metrics import (
    AccuracyReport,
    evaluate_predictor,
    mape,
    pearson_cc,
    spearman_cc,
)
from repro.analysis.tables import format_kv_rows, format_table

__all__ = [
    "mape",
    "pearson_cc",
    "spearman_cc",
    "AccuracyReport",
    "evaluate_predictor",
    "Heatmap",
    "build_heatmap",
    "diagonal_mass",
    "format_table",
    "format_kv_rows",
    "throughput_distance",
    "find_port_permutation",
    "permutation_equivalent",
    "canonical_experiments",
    "mapping_diff",
    "MappingComparison",
    "to_llvm_sched_model",
    "to_osaca_table",
    "reciprocal_throughputs",
]
