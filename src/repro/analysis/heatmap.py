"""Heat-map binning and text rendering (Figure 7).

Figure 7 relates predicted and measured throughput per experiment in a
35×35 grid of equally sized bins; each bin's shade is the (log-scaled)
number of experiments falling into it.  We reproduce the underlying data
exactly and render it as ASCII art, since the environment has no plotting
stack.  Benches persist both the counts and the rendering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ReproError

__all__ = ["Heatmap", "build_heatmap", "diagonal_mass"]

#: Bin count per axis, as in the paper.
DEFAULT_BINS = 35

#: Shade ramp for ASCII rendering, light to dark.
_SHADES = " .:-=+*#%@"


@dataclass(frozen=True)
class Heatmap:
    """Binned predicted-vs-measured data for one (predictor, machine)."""

    counts: np.ndarray  # [bins, bins]; rows = predicted, columns = measured
    limit: float  # both axes span [0, limit]
    predictor: str
    machine: str

    @property
    def bins(self) -> int:
        return self.counts.shape[0]

    def render(self, width: int = 2) -> str:
        """ASCII rendering, predicted on the vertical axis (top = high)."""
        nonzero = self.counts[self.counts > 0]
        if nonzero.size == 0:
            raise ReproError("empty heat map")
        log_max = float(np.log1p(nonzero.max()))
        lines = []
        for row in range(self.bins - 1, -1, -1):
            cells = []
            for col in range(self.bins):
                count = self.counts[row, col]
                if count == 0:
                    shade = " " if row != col else "·"
                else:
                    level = np.log1p(count) / log_max
                    shade = _SHADES[min(int(level * (len(_SHADES) - 1)), len(_SHADES) - 1)]
                cells.append(shade * width)
            lines.append("|" + "".join(cells) + "|")
        header = (
            f"{self.predictor} on {self.machine} "
            f"(predicted vs measured cycles, 0..{self.limit:.0f})"
        )
        bar = "+" + "-" * (self.bins * width) + "+"
        return "\n".join([header, bar, *lines, bar])


def build_heatmap(
    predicted: np.ndarray,
    measured: np.ndarray,
    predictor: str = "",
    machine: str = "",
    bins: int = DEFAULT_BINS,
    limit: float | None = None,
) -> Heatmap:
    """Bin predicted/measured pairs into a ``bins × bins`` grid.

    ``limit`` defaults to the maximum of both series (the paper scales each
    heat map's axes to its own data, e.g. llvm-mca on A72 runs to 150).
    Values at or above the limit land in the last bin.
    """
    predicted = np.asarray(predicted, dtype=np.float64)
    measured = np.asarray(measured, dtype=np.float64)
    if predicted.shape != measured.shape or predicted.ndim != 1:
        raise ReproError("prediction and measurement arrays must be 1-D and equal-length")
    if predicted.size == 0:
        raise ReproError("need at least one data point")
    if bins < 2:
        raise ReproError("need at least two bins")
    if limit is None:
        limit = float(max(predicted.max(), measured.max()))
    if limit <= 0:
        raise ReproError("heat-map limit must be positive")

    scale = bins / limit
    rows = np.clip((predicted * scale).astype(int), 0, bins - 1)
    cols = np.clip((measured * scale).astype(int), 0, bins - 1)
    counts = np.zeros((bins, bins), dtype=np.int64)
    np.add.at(counts, (rows, cols), 1)
    return Heatmap(counts=counts, limit=limit, predictor=predictor, machine=machine)


def diagonal_mass(heatmap: Heatmap, radius: int = 1) -> float:
    """Fraction of experiments within ``radius`` bins of the diagonal.

    A scalar summary of "points close to the ideal line"; used by tests and
    EXPERIMENTS.md to compare heat maps without eyeballing ASCII art.
    """
    total = heatmap.counts.sum()
    if total == 0:
        raise ReproError("empty heat map")
    mass = 0
    bins = heatmap.bins
    for row in range(bins):
        lo = max(0, row - radius)
        hi = min(bins, row + radius + 1)
        mass += heatmap.counts[row, lo:hi].sum()
    return float(mass / total)
