"""Comparing port mappings: behavioural distance and structural equivalence.

Throughput measurements cannot distinguish mappings that differ only by a
*renaming of ports* (the paper: "the found compact mappings are not
necessarily identical to the port mappings that are really used in the
processor"), and many structurally different mappings induce identical
throughput functions.  This module provides the two useful notions of
"same mapping":

* :func:`throughput_distance` — behavioural: how differently two mappings
  predict a set of experiments (what PMEvo optimizes; 0 means the mappings
  are indistinguishable on those experiments);
* :func:`find_port_permutation` / :func:`permutation_equivalent` —
  structural: is one mapping exactly the other with ports renamed?  This
  is what "PMEvo recovered the ground truth" means in the strongest sense.

:func:`mapping_diff` renders a per-instruction comparison for humans.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.errors import MappingError
from repro.core.experiment import Experiment
from repro.core.mapping import ThreeLevelMapping
from repro.core.ports import indices_from_mask, mask_from_indices, mask_size
from repro.throughput.bottleneck import bottleneck_throughput

__all__ = [
    "throughput_distance",
    "find_port_permutation",
    "permutation_equivalent",
    "canonical_experiments",
    "mapping_diff",
    "MappingComparison",
]


def _check_comparable(a: ThreeLevelMapping, b: ThreeLevelMapping) -> None:
    if a.ports.num_ports != b.ports.num_ports:
        raise MappingError(
            f"mappings have different port counts: "
            f"{a.ports.num_ports} vs {b.ports.num_ports}"
        )
    if set(a.instructions) != set(b.instructions):
        only_a = set(a.instructions) - set(b.instructions)
        only_b = set(b.instructions) - set(a.instructions)
        raise MappingError(
            f"mappings cover different instructions "
            f"(only in first: {sorted(only_a)[:3]}..., "
            f"only in second: {sorted(only_b)[:3]}...)"
        )


def canonical_experiments(names: Sequence[str]) -> list[Experiment]:
    """The experiment family PMEvo observes: singletons, pairs, and 1:3
    weighted pairs.

    Two mappings agreeing on these agree on everything PMEvo can measure
    about them with its standard experiment design.
    """
    experiments = [Experiment({name: 1}) for name in names]
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            experiments.append(Experiment({a: 1, b: 1}))
            experiments.append(Experiment({a: 1, b: 3}))
            experiments.append(Experiment({a: 3, b: 1}))
    return experiments


def throughput_distance(
    first: ThreeLevelMapping,
    second: ThreeLevelMapping,
    experiments: Iterable[Experiment] | None = None,
) -> float:
    """Mean relative throughput disagreement over ``experiments``.

    Defaults to :func:`canonical_experiments` over the common instruction
    set.  Returns 0.0 iff the mappings are observationally identical on
    the experiment family.
    """
    _check_comparable(first, second)
    if experiments is None:
        experiments = canonical_experiments(sorted(first.instructions))
    num_ports = first.ports.num_ports
    differences = []
    for experiment in experiments:
        t1 = bottleneck_throughput(first.uop_masses(experiment), num_ports)
        t2 = bottleneck_throughput(second.uop_masses(experiment), num_ports)
        reference = max(t1, t2)
        differences.append(abs(t1 - t2) / reference if reference else 0.0)
    if not differences:
        raise MappingError("no experiments to compare on")
    return float(np.mean(differences))


def _port_signature(mapping: ThreeLevelMapping, port: int) -> tuple:
    """Permutation-invariant description of one port's role.

    For every instruction, collect the (µop width, multiplicity) pairs of
    the µops executable on this port.  Any port renaming preserves widths
    and multiplicities, so matched ports must have equal signatures.
    """
    entries = []
    for name in mapping.instructions:
        uops = mapping.uops_of(name)
        touching = sorted(
            (mask_size(mask), count)
            for mask, count in uops.items()
            if mask & (1 << port)
        )
        if touching:
            entries.append((name, tuple(touching)))
    return tuple(entries)


def _apply_permutation(mask: int, permutation: Sequence[int]) -> int:
    return mask_from_indices(permutation[i] for i in indices_from_mask(mask))


def find_port_permutation(
    first: ThreeLevelMapping, second: ThreeLevelMapping
) -> tuple[int, ...] | None:
    """A port permutation turning ``first`` into ``second``, or ``None``.

    The returned tuple maps first-mapping port index ``i`` to second-mapping
    port index ``perm[i]``.  The search is brute force over permutations,
    but only within groups of ports with equal signatures, which keeps it
    tiny for realistic machines.
    """
    _check_comparable(first, second)
    num_ports = first.ports.num_ports

    signatures_first = [_port_signature(first, p) for p in range(num_ports)]
    signatures_second = [_port_signature(second, p) for p in range(num_ports)]

    # Candidate targets per source port: ports with the same signature.
    candidates: list[list[int]] = []
    for p in range(num_ports):
        matches = [q for q in range(num_ports) if signatures_second[q] == signatures_first[p]]
        if not matches:
            return None
        candidates.append(matches)

    names = first.instructions

    def matches_mapping(permutation: Sequence[int]) -> bool:
        for name in names:
            transformed = {}
            for mask, count in first.uops_of(name).items():
                new_mask = _apply_permutation(mask, permutation)
                transformed[new_mask] = transformed.get(new_mask, 0) + count
            if transformed != second.uops_of(name):
                return False
        return True

    def backtrack(position: int, used: set[int], current: list[int]):
        if position == num_ports:
            if matches_mapping(current):
                return tuple(current)
            return None
        for target in candidates[position]:
            if target in used:
                continue
            used.add(target)
            current.append(target)
            found = backtrack(position + 1, used, current)
            if found is not None:
                return found
            current.pop()
            used.remove(target)
        return None

    return backtrack(0, set(), [])


def permutation_equivalent(
    first: ThreeLevelMapping, second: ThreeLevelMapping
) -> bool:
    """True iff the mappings are identical up to a renaming of ports."""
    return find_port_permutation(first, second) is not None


@dataclass(frozen=True)
class MappingComparison:
    """Summary of a mapping-vs-mapping comparison."""

    behavioural_distance: float
    structurally_equivalent: bool
    permutation: tuple[int, ...] | None
    diff_text: str


def mapping_diff(
    first: ThreeLevelMapping,
    second: ThreeLevelMapping,
    first_label: str = "first",
    second_label: str = "second",
) -> MappingComparison:
    """Full comparison: behavioural distance, structural check, and a
    per-instruction textual diff (only instructions that differ)."""
    _check_comparable(first, second)
    permutation = find_port_permutation(first, second)
    distance = throughput_distance(first, second)

    lines = []
    for name in first.instructions:
        uops_a = first.uops_of(name)
        uops_b = second.uops_of(name)
        if uops_a == uops_b:
            continue
        render_a = " + ".join(
            f"{c}x{first.ports.format_mask(m)}" for m, c in uops_a.items()
        )
        render_b = " + ".join(
            f"{c}x{second.ports.format_mask(m)}" for m, c in uops_b.items()
        )
        lines.append(f"{name}:")
        lines.append(f"  {first_label}:  {render_a}")
        lines.append(f"  {second_label}: {render_b}")
    if not lines:
        diff_text = "mappings are identical"
    else:
        diff_text = "\n".join(lines)

    return MappingComparison(
        behavioural_distance=distance,
        structurally_equivalent=permutation is not None,
        permutation=permutation,
        diff_text=diff_text,
    )
