"""Exporting inferred port mappings for downstream tools.

The paper's motivation for *interpretable* mappings (vs. black-box learned
models) is that performance tools can consume them directly: "Both,
llvm-mca and OSACA, can benefit from port mappings by PMEvo for
microarchitectures without available port mapping" (Section 6.2).

This module renders a :class:`~repro.core.mapping.ThreeLevelMapping` in
three downstream-friendly shapes:

* :func:`to_llvm_sched_model` — an LLVM ``SchedModel``-flavoured TableGen
  snippet: one ``ProcResource`` per port, one ``ProcResGroup`` per distinct
  µop, one ``WriteRes`` per instruction form;
* :func:`to_osaca_table` — an OSACA-style per-port occupancy CSV (average
  port pressure per instruction, assuming an optimal scheduler);
* :func:`reciprocal_throughputs` — per-form reciprocal throughput, the
  single number instruction tables report.
"""

from __future__ import annotations

import io

from repro.core.mapping import ThreeLevelMapping
from repro.core.ports import indices_from_mask, mask_size
from repro.throughput.bottleneck import bottleneck_throughput
from repro.core.experiment import Experiment

__all__ = ["to_llvm_sched_model", "to_osaca_table", "reciprocal_throughputs"]


def _sanitize(name: str) -> str:
    """An identifier safe for TableGen-ish output."""
    return "".join(ch if ch.isalnum() else "_" for ch in name)


def reciprocal_throughputs(mapping: ThreeLevelMapping) -> dict[str, float]:
    """Reciprocal throughput (cycles per instruction) per covered form."""
    num_ports = mapping.ports.num_ports
    return {
        name: bottleneck_throughput(
            mapping.uop_masses(Experiment({name: 1})), num_ports
        )
        for name in mapping.instructions
    }


def to_llvm_sched_model(mapping: ThreeLevelMapping, model_name: str = "PMEvoModel") -> str:
    """Render the mapping as an LLVM-scheduling-model-like snippet.

    The output is *flavoured* TableGen, intended as a starting point for a
    human integrating the mapping into an actual LLVM target, not as a
    drop-in ``.td`` file (instruction names are this library's form names,
    not LLVM opcodes).
    """
    ports = mapping.ports
    out = io.StringIO()
    out.write(f"// Port mapping inferred by PMEvo — {len(mapping)} instruction forms,\n")
    out.write(f"// {ports.num_ports} ports, {len(mapping.distinct_uops())} distinct µops.\n")
    out.write(f'def {model_name} : SchedMachineModel;\n\n')
    for name in ports.names:
        out.write(f'def {model_name}Port{_sanitize(name)} : ProcResource<1>;\n')
    out.write("\n")

    group_names: dict[int, str] = {}
    for mask in mapping.distinct_uops():
        members = ", ".join(
            f"{model_name}Port{_sanitize(ports.names[i])}"
            for i in indices_from_mask(mask)
        )
        if mask_size(mask) == 1:
            group_names[mask] = (
                f"{model_name}Port{_sanitize(ports.mask_names(mask)[0])}"
            )
        else:
            group = f"{model_name}Group{mask:X}"
            group_names[mask] = group
            out.write(f"def {group} : ProcResGroup<[{members}]>;\n")
    out.write("\n")

    for name in mapping.instructions:
        uops = mapping.uops_of(name)
        resources = ", ".join(group_names[mask] for mask in uops)
        cycles = ", ".join(str(count) for count in uops.values())
        num_uops = sum(uops.values())
        out.write(
            f"def : WriteRes<Write{_sanitize(name)}, [{resources}]> {{\n"
            f"  let ReleaseAtCycles = [{cycles}];\n"
            f"  let NumMicroOps = {num_uops};\n"
            f"}}\n"
        )
    return out.getvalue()


def to_osaca_table(mapping: ThreeLevelMapping) -> str:
    """Render per-port pressure per instruction as a CSV (OSACA style).

    Pressure is the optimal-scheduler port occupancy for the singleton
    experiment of each form: µop mass spread evenly over the least-loaded
    allowed ports (computed exactly via the LP/bottleneck equivalence per
    µop is overkill here — we report the uniform spread, which is what
    OSACA's port-pressure tables show).
    """
    ports = mapping.ports
    out = io.StringIO()
    out.write("instruction," + ",".join(ports.names) + ",cycles\n")
    throughputs = reciprocal_throughputs(mapping)
    for name in mapping.instructions:
        pressure = [0.0] * ports.num_ports
        for mask, count in mapping.uops_of(name).items():
            share = count / mask_size(mask)
            for index in indices_from_mask(mask):
                pressure[index] += share
        row = ",".join(f"{value:.3f}" for value in pressure)
        out.write(f"{name},{row},{throughputs[name]:.3f}\n")
    return out.getvalue()
