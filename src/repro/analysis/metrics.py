"""Prediction accuracy metrics (Section 5.3).

The paper reports three metrics per (predictor, machine):

* **MAPE** — mean absolute percentage error of predictions over
  measurements,
* **Pearson CC** — linear correlation between predictions and measurements,
* **Spearman CC** — rank correlation (does the predictor order experiments
  correctly?).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core.errors import ReproError
from repro.core.experiment import Experiment, ExperimentSet
from repro.throughput.predictor import ThroughputPredictor

__all__ = ["mape", "pearson_cc", "spearman_cc", "AccuracyReport", "evaluate_predictor"]


def _validate(predicted: np.ndarray, measured: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    predicted = np.asarray(predicted, dtype=np.float64)
    measured = np.asarray(measured, dtype=np.float64)
    if predicted.shape != measured.shape or predicted.ndim != 1:
        raise ReproError("prediction and measurement arrays must be 1-D and equal-length")
    if predicted.size == 0:
        raise ReproError("need at least one data point")
    if np.any(measured <= 0):
        raise ReproError("measured throughputs must be positive")
    return predicted, measured


def mape(predicted: Iterable[float], measured: Iterable[float]) -> float:
    """Mean absolute percentage error, in percent."""
    p, m = _validate(np.fromiter(predicted, float), np.fromiter(measured, float))
    return float(100.0 * np.mean(np.abs(p - m) / m))


def pearson_cc(predicted: Iterable[float], measured: Iterable[float]) -> float:
    """Pearson correlation coefficient in [-1, 1].

    Degenerate (constant or numerically near-constant) series yield 0.0
    rather than NaN, so reports stay well-defined.
    """
    p, m = _validate(np.fromiter(predicted, float), np.fromiter(measured, float))
    if np.std(p) == 0 or np.std(m) == 0:
        return 0.0
    with np.errstate(invalid="ignore"):
        value = float(stats.pearsonr(p, m).statistic)
    return value if np.isfinite(value) else 0.0


def spearman_cc(predicted: Iterable[float], measured: Iterable[float]) -> float:
    """Spearman rank correlation coefficient in [-1, 1].

    Degenerate series yield 0.0 rather than NaN (see :func:`pearson_cc`).
    """
    p, m = _validate(np.fromiter(predicted, float), np.fromiter(measured, float))
    if np.std(p) == 0 or np.std(m) == 0:
        return 0.0
    with np.errstate(invalid="ignore"):
        value = float(stats.spearmanr(p, m).statistic)
    return value if np.isfinite(value) else 0.0


@dataclass(frozen=True)
class AccuracyReport:
    """One row of Table 3/4: a predictor's accuracy on a benchmark set."""

    predictor: str
    machine: str
    mape: float
    pearson: float
    spearman: float
    num_experiments: int
    predicted: tuple[float, ...]
    measured: tuple[float, ...]

    def row(self) -> dict[str, str]:
        """Formatted table row matching the paper's layout."""
        return {
            "predictor": self.predictor,
            "MAPE": f"{self.mape:.1f}%",
            "Pearson CC": f"{self.pearson:.2f}",
            "Spearman CC": f"{self.spearman:.2f}",
        }


def evaluate_predictor(
    predictor: ThroughputPredictor,
    benchmark: ExperimentSet,
    machine_name: str = "",
) -> AccuracyReport:
    """Evaluate a predictor against measured experiments."""
    experiments: Sequence[Experiment] = benchmark.experiments
    measured = np.array(benchmark.throughputs)
    predicted = np.array([predictor.predict(e) for e in experiments])
    p, m = _validate(predicted, measured)
    return AccuracyReport(
        predictor=predictor.name,
        machine=machine_name,
        mape=mape(p, m),
        pearson=pearson_cc(p, m),
        spearman=spearman_cc(p, m),
        num_experiments=len(experiments),
        predicted=tuple(float(x) for x in p),
        measured=tuple(float(x) for x in m),
    )
