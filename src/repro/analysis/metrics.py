"""Prediction accuracy metrics (Section 5.3).

The paper reports three metrics per (predictor, machine):

* **MAPE** — mean absolute percentage error of predictions over
  measurements,
* **Pearson CC** — linear correlation between predictions and measurements,
* **Spearman CC** — rank correlation (does the predictor order experiments
  correctly?).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core.errors import ReproError
from repro.core.experiment import Experiment, ExperimentSet
from repro.throughput.predictor import ThroughputPredictor

__all__ = ["mape", "pearson_cc", "spearman_cc", "AccuracyReport", "evaluate_predictor"]


def _validate(predicted: np.ndarray, measured: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    predicted = np.asarray(predicted, dtype=np.float64)
    measured = np.asarray(measured, dtype=np.float64)
    if predicted.shape != measured.shape or predicted.ndim != 1:
        raise ReproError("prediction and measurement arrays must be 1-D and equal-length")
    if predicted.size == 0:
        raise ReproError("need at least one data point")
    if np.any(measured <= 0):
        raise ReproError("measured throughputs must be positive")
    return predicted, measured


def mape(predicted: Iterable[float], measured: Iterable[float]) -> float:
    """Mean absolute percentage error, in percent."""
    p, m = _validate(np.fromiter(predicted, float), np.fromiter(measured, float))
    return float(100.0 * np.mean(np.abs(p - m) / m))


def _unit_scaled(values: np.ndarray) -> np.ndarray:
    """Divide by the max magnitude so constant scale factors cancel early.

    Correlations are scale-invariant in exact arithmetic, but a predictor
    that is off by an extreme constant factor pushes the raw values toward
    the edges of the float range where centering and squaring lose digits.
    Normalizing first keeps both series in [-1, 1].
    """
    scale = float(np.max(np.abs(values)))
    return values / scale if scale > 0.0 else values


def _pearson(x: np.ndarray, y: np.ndarray) -> float:
    xc = x - x.mean()
    yc = y - y.mean()
    denominator = float(np.linalg.norm(xc) * np.linalg.norm(yc))
    if denominator == 0.0:
        return 0.0
    return float(np.clip(np.dot(xc, yc) / denominator, -1.0, 1.0))


def pearson_cc(predicted: Iterable[float], measured: Iterable[float]) -> float:
    """Pearson correlation coefficient in [-1, 1].

    Degenerate series (constant, or containing non-finite predictions)
    yield 0.0 rather than NaN, so reports stay well-defined.  Each series
    is normalized to unit scale before the dot product so extreme constant
    scale factors cannot degrade the result.
    """
    p, m = _validate(np.fromiter(predicted, float), np.fromiter(measured, float))
    if not (np.isfinite(p).all() and np.isfinite(m).all()):
        return 0.0
    return _pearson(_unit_scaled(p), _unit_scaled(m))


def _robust_ranks(values: np.ndarray) -> np.ndarray:
    """Average ranks after snapping away float-noise distinctions.

    Each value is rounded to 12 significant digits (per value, so wide
    dynamic ranges keep their genuine order): multiplying a series by a
    constant factor can round two almost-equal measurements onto the same
    float (or pull exact ties apart), which would otherwise change the
    rank structure and break the scale invariance of the rank correlation.
    """
    snapped = np.zeros_like(values)
    nonzero = values != 0.0
    exponent = np.floor(np.log10(np.abs(values[nonzero])))
    # Clamp so 10**(exponent - 11) stays a normal float: subnormal values
    # (below ~1e-296) snap onto an absolute 1e-307 grid instead of
    # underflowing the scale to zero and producing NaN ranks.
    exponent = np.maximum(exponent, -296.0)
    scale = 10.0 ** (exponent - 11)
    snapped[nonzero] = np.round(values[nonzero] / scale) * scale
    return stats.rankdata(snapped)


def spearman_cc(predicted: Iterable[float], measured: Iterable[float]) -> float:
    """Spearman rank correlation coefficient in [-1, 1].

    Degenerate series (constant, or containing non-finite predictions)
    yield 0.0 rather than NaN, and ranks are computed on noise-snapped
    values (see :func:`_robust_ranks`) so a constant-factor predictor
    scores exactly 1.
    """
    p, m = _validate(np.fromiter(predicted, float), np.fromiter(measured, float))
    if not (np.isfinite(p).all() and np.isfinite(m).all()):
        return 0.0
    return _pearson(_robust_ranks(p), _robust_ranks(m))


@dataclass(frozen=True)
class AccuracyReport:
    """One row of Table 3/4: a predictor's accuracy on a benchmark set."""

    predictor: str
    machine: str
    mape: float
    pearson: float
    spearman: float
    num_experiments: int
    predicted: tuple[float, ...]
    measured: tuple[float, ...]

    def row(self) -> dict[str, str]:
        """Formatted table row matching the paper's layout."""
        return {
            "predictor": self.predictor,
            "MAPE": f"{self.mape:.1f}%",
            "Pearson CC": f"{self.pearson:.2f}",
            "Spearman CC": f"{self.spearman:.2f}",
        }


def evaluate_predictor(
    predictor: ThroughputPredictor,
    benchmark: ExperimentSet,
    machine_name: str = "",
) -> AccuracyReport:
    """Evaluate a predictor against measured experiments."""
    experiments: Sequence[Experiment] = benchmark.experiments
    measured = np.array(benchmark.throughputs)
    predicted = np.array([predictor.predict(e) for e in experiments])
    p, m = _validate(predicted, measured)
    return AccuracyReport(
        predictor=predictor.name,
        machine=machine_name,
        mape=mape(p, m),
        pearson=pearson_cc(p, m),
        spearman=spearman_cc(p, m),
        num_experiments=len(experiments),
        predicted=tuple(float(x) for x in p),
        measured=tuple(float(x) for x in m),
    )
