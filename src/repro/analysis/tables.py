"""Plain-text table rendering for bench output.

Every bench prints the same rows the paper's tables report; this module
keeps the formatting consistent and dependency-free.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.errors import ReproError

__all__ = ["format_table", "format_kv_rows"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width table with a header rule.

    >>> print(format_table(["a", "b"], [[1, 2]]))
    a | b
    --+--
    1 | 2
    """
    if not headers:
        raise ReproError("need at least one column")
    cells = [[str(c) for c in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ReproError("row width does not match header width")
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def format_kv_rows(rows: Mapping[str, Mapping[str, object]], title: str = "") -> str:
    """Render ``{column -> {row-label -> value}}`` as a table.

    Matches the paper's Table 2 layout: one column per machine, one row per
    statistic.
    """
    if not rows:
        raise ReproError("need at least one column")
    columns = list(rows.keys())
    labels: list[str] = []
    for column in columns:
        for label in rows[column]:
            if label not in labels:
                labels.append(label)
    table_rows = [
        [label] + [str(rows[column].get(label, "-")) for column in columns]
        for label in labels
    ]
    return format_table([""] + columns, table_rows, title=title)
