"""Loop body construction for throughput experiments (Section 4.2).

The paper unrolls several iterations of an experiment before operand
allocation so that (a) more registers can be allocated, increasing dependence
distance, (b) loop-carried dependencies are avoided, and (c) loop overhead is
amortized.  A body length of ~50 instructions was found appropriate for all
evaluated architectures, keeping the loop resident in the µop cache.

:func:`build_loop_body` performs that unrolling and allocates operands for
the whole unrolled region with a single allocator, exactly as described.
"""

from __future__ import annotations

import math

from repro.codegen.assembly import InstructionInstance
from repro.codegen.regalloc import AllocationConfig, RegisterAllocator
from repro.core.errors import ExperimentError, ISAError
from repro.core.experiment import Experiment
from repro.core.isa import ISA, InstructionForm

__all__ = ["build_loop_body", "interleaved_forms", "TARGET_BODY_LENGTH"]

#: Default unrolled loop body length in instructions (Section 4.2).
TARGET_BODY_LENGTH = 50


def interleaved_forms(isa: ISA, experiment: Experiment) -> list[InstructionForm]:
    """One iteration of the experiment as an interleaved form sequence.

    Instructions of different forms are interleaved (round-robin over the
    remaining counts) rather than emitted in blocks, so that the in-order
    frontend feeds the scheduler a balanced mix — like the paper's generated
    benchmarks, which the scheduler must be able to reorder freely.
    """
    remaining = {name: count for name, count in experiment}
    order = list(remaining)
    sequence: list[InstructionForm] = []
    while remaining:
        for name in list(order):
            if name not in remaining:
                continue
            sequence.append(isa[name])
            remaining[name] -= 1
            if remaining[name] == 0:
                del remaining[name]
    return sequence


def build_loop_body(
    isa: ISA,
    experiment: Experiment,
    target_length: int = TARGET_BODY_LENGTH,
    allocation: AllocationConfig | None = None,
) -> tuple[list[InstructionInstance], int]:
    """Unroll ``experiment`` to roughly ``target_length`` instructions.

    Returns the allocated instruction instances and the unroll factor (the
    number of experiment copies in the body).  The body contains exactly
    ``unroll_factor * experiment.size`` instructions; the factor is chosen as
    ``ceil(target_length / size)`` so the body is at least ``target_length``
    long (never shorter, so tiny experiments still amortize loop overhead).
    """
    if target_length <= 0:
        raise ExperimentError(f"target length must be positive, got {target_length}")
    for name in experiment.support:
        if name not in isa:
            raise ISAError(f"experiment uses {name!r}, unknown in ISA {isa.name!r}")

    unroll_factor = max(1, math.ceil(target_length / experiment.size))
    allocator = RegisterAllocator(allocation)
    one_iteration = interleaved_forms(isa, experiment)
    body: list[InstructionInstance] = []
    for _ in range(unroll_factor):
        body.extend(allocator.allocate_sequence(one_iteration))
    return body, unroll_factor
