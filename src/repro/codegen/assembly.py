"""Concrete instruction instances ("assembly").

The machine simulator does not execute instruction *forms* — it executes
*instances*: forms whose register/memory/immediate placeholders have been
filled with concrete operands.  Dependencies between instances arise solely
from registers (including memory base registers), mirroring how the paper's
generated microbenchmarks behave once operands are allocated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ISAError
from repro.core.isa import InstructionForm, OperandKind

__all__ = ["Register", "MemoryRef", "Immediate", "InstructionInstance"]


@dataclass(frozen=True)
class Register:
    """A concrete architectural register: class + index, e.g. ``gpr:3``."""

    kind: OperandKind
    index: int

    def __post_init__(self) -> None:
        if self.kind not in (OperandKind.GPR, OperandKind.VEC):
            raise ISAError(f"register kind must be GPR or VEC, got {self.kind}")
        if self.index < 0:
            raise ISAError(f"register index must be non-negative, got {self.index}")

    def render(self) -> str:
        prefix = "r" if self.kind is OperandKind.GPR else "v"
        return f"{prefix}{self.index}"


@dataclass(frozen=True)
class MemoryRef:
    """A memory operand: base register plus constant byte offset."""

    base: Register
    offset: int

    def render(self) -> str:
        return f"[{self.base.render()}+{self.offset}]"


@dataclass(frozen=True)
class Immediate:
    """An immediate constant operand."""

    value: int

    def render(self) -> str:
        return f"#{self.value}"


Operand = Register | MemoryRef | Immediate


@dataclass(frozen=True)
class InstructionInstance:
    """An instruction form with concrete operands.

    Attributes
    ----------
    form:
        The instruction form being instantiated.
    operands:
        Concrete operands, one per placeholder, kind-compatible with the
        form's :class:`~repro.core.isa.OperandSpec` list.
    """

    form: InstructionForm
    operands: tuple[Operand, ...]

    def __post_init__(self) -> None:
        specs = self.form.operands
        if len(specs) != len(self.operands):
            raise ISAError(
                f"{self.form.name}: expected {len(specs)} operands, "
                f"got {len(self.operands)}"
            )
        for spec, operand in zip(specs, self.operands):
            if spec.kind in (OperandKind.GPR, OperandKind.VEC):
                if not isinstance(operand, Register) or operand.kind is not spec.kind:
                    raise ISAError(
                        f"{self.form.name}: operand {operand!r} does not match "
                        f"register placeholder {spec.render()}"
                    )
            elif spec.kind is OperandKind.MEM:
                if not isinstance(operand, MemoryRef):
                    raise ISAError(
                        f"{self.form.name}: operand {operand!r} is not a memory ref"
                    )
            elif spec.kind is OperandKind.IMM:
                if not isinstance(operand, Immediate):
                    raise ISAError(
                        f"{self.form.name}: operand {operand!r} is not an immediate"
                    )

    def read_registers(self) -> tuple[Register, ...]:
        """Registers this instance reads, including memory base registers."""
        reads: list[Register] = []
        for spec, operand in zip(self.form.operands, self.operands):
            if isinstance(operand, MemoryRef):
                reads.append(operand.base)
            elif isinstance(operand, Register) and spec.is_read:
                reads.append(operand)
        return tuple(reads)

    def written_registers(self) -> tuple[Register, ...]:
        """Registers this instance writes."""
        return tuple(
            operand
            for spec, operand in zip(self.form.operands, self.operands)
            if isinstance(operand, Register) and spec.is_written
        )

    def render(self) -> str:
        """Assembly-like text, e.g. ``add r3, r7``."""
        if not self.operands:
            return self.form.mnemonic
        args = ", ".join(op.render() for op in self.operands)
        return f"{self.form.mnemonic} {args}"

    def __repr__(self) -> str:
        return f"InstructionInstance({self.render()!r})"
