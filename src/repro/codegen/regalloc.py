"""Dependency-avoiding operand allocation (Section 4.2).

The paper instantiates the instruction forms of an experiment with operands
"while avoiding data dependencies":

* *read* operands get the **least recently written** register, maximizing
  the distance to the producing write so long-latency producers have retired
  by the time the value is read;
* *written* operands also get a least-recently-written register (with an
  opposite tie-break), which makes destinations rotate round-robin through
  the register file.  The paper words this policy as "most recently read",
  but taken literally that self-poisons on read-modify-write operands (x86
  two-operand destinations): the most recently read register may have been
  written one instruction ago, turning the destination's implicit read into
  a latency chain.  Least-recently-written achieves the paper's stated goal
  — "using as many different registers as available ... ensures that
  instructions with long latencies have enough time to complete before
  their results are read" — for both the destination's own read and all
  future source reads (documented deviation, see DESIGN.md);
* memory operands use a dedicated base-pointer register and rotate through
  several constant offsets, so loads/stores never alias.

:class:`RegisterAllocator` keeps this recency state across an entire unrolled
loop body, exactly like the paper's allocator runs across unrolled iterations.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.codegen.assembly import (
    Immediate,
    InstructionInstance,
    MemoryRef,
    Operand,
    Register,
)
from repro.core.errors import ISAError
from repro.core.isa import InstructionForm, OperandKind

__all__ = ["RegisterAllocator", "AllocationConfig"]


class AllocationConfig:
    """Register-file shape visible to the allocator.

    Parameters
    ----------
    num_gprs:
        Allocatable general-purpose registers (excluding the base pointer).
    num_vecs:
        Allocatable vector registers.
    num_memory_offsets:
        Distinct constant offsets used round-robin for memory operands.
    memory_stride:
        Byte distance between consecutive offsets (cache-line sized by
        default so rotating offsets do not alias).
    """

    def __init__(
        self,
        num_gprs: int = 14,
        num_vecs: int = 16,
        num_memory_offsets: int = 8,
        memory_stride: int = 64,
    ):
        if num_gprs < 2 or num_vecs < 2:
            raise ISAError("need at least two registers per allocatable class")
        if num_memory_offsets < 1:
            raise ISAError("need at least one memory offset")
        self.num_gprs = num_gprs
        self.num_vecs = num_vecs
        self.num_memory_offsets = num_memory_offsets
        self.memory_stride = memory_stride


class _ClassState:
    """Recency bookkeeping for one register class."""

    def __init__(self, kind: OperandKind, count: int):
        self.kind = kind
        # Stagger initial recencies so the very first picks are spread over
        # the register file instead of all hitting register 0.
        self.last_read = {i: -2 * count + i for i in range(count)}
        self.last_write = {i: -2 * count + i for i in range(count)}

    def pick_for_read(self, banned: set[int]) -> int:
        """Least recently *written* register (longest RAW distance)."""
        candidates = [i for i in self.last_write if i not in banned]
        if not candidates:
            raise ISAError("register class exhausted during allocation")
        return min(candidates, key=lambda i: (self.last_write[i], i))

    def pick_for_write(self, banned: set[int]) -> int:
        """Least recently written register, preferring high indices.

        Rotates destinations round-robin through the register file so both
        the destination's own read (for read-modify-write operands) and all
        future source reads see the longest possible distance to the
        previous write.  See the module docstring for why this deviates
        from the paper's literal wording.
        """
        candidates = [i for i in self.last_read if i not in banned]
        if not candidates:
            raise ISAError("register class exhausted during allocation")
        return min(candidates, key=lambda i: (self.last_write[i], -i))

    def note_read(self, index: int, tick: int) -> None:
        self.last_read[index] = tick

    def note_write(self, index: int, tick: int) -> None:
        self.last_write[index] = tick


class RegisterAllocator:
    """Allocates concrete operands for a sequence of instruction forms.

    The allocator is stateful: recency information persists across calls so
    an unrolled loop body is allocated as one region, like in the paper.
    The base pointer register (GPR index ``num_gprs``) is reserved for
    memory operands and never allocated for anything else.
    """

    def __init__(self, config: AllocationConfig | None = None):
        self.config = config or AllocationConfig()
        self._gpr = _ClassState(OperandKind.GPR, self.config.num_gprs)
        self._vec = _ClassState(OperandKind.VEC, self.config.num_vecs)
        self._tick = 0
        self._next_offset = 0
        self.base_pointer = Register(OperandKind.GPR, self.config.num_gprs)

    def _state(self, kind: OperandKind) -> _ClassState:
        if kind is OperandKind.GPR:
            return self._gpr
        if kind is OperandKind.VEC:
            return self._vec
        raise ISAError(f"no register state for kind {kind}")

    def allocate(self, form: InstructionForm) -> InstructionInstance:
        """Instantiate one instruction form with concrete operands."""
        tick = self._tick
        self._tick += 1

        operands: list[Operand | None] = [None] * len(form.operands)
        # Registers already chosen for this instruction: an instruction must
        # not read and write the same register through different operands,
        # or it would create an intra-instruction dependency the experiment
        # design wants to avoid.
        used: dict[OperandKind, set[int]] = {
            OperandKind.GPR: set(),
            OperandKind.VEC: set(),
        }

        # Pass 1: reads (they constrain which registers a write may clobber
        # only via the `used` set, matching the paper's policies).
        for pos, spec in enumerate(form.operands):
            if spec.kind is OperandKind.IMM:
                operands[pos] = Immediate(value=(tick % 251) + 1)
            elif spec.kind is OperandKind.MEM:
                offset = (
                    self._next_offset % self.config.num_memory_offsets
                ) * self.config.memory_stride
                self._next_offset += 1
                operands[pos] = MemoryRef(self.base_pointer, offset)
            elif spec.is_read and not spec.is_written:
                state = self._state(spec.kind)
                index = state.pick_for_read(used[spec.kind])
                used[spec.kind].add(index)
                operands[pos] = Register(spec.kind, index)

        # Pass 2: writes (including read-write operands, which the paper
        # treats with the written-operand policy).
        for pos, spec in enumerate(form.operands):
            if operands[pos] is not None or spec.kind in (
                OperandKind.IMM,
                OperandKind.MEM,
            ):
                continue
            state = self._state(spec.kind)
            index = state.pick_for_write(used[spec.kind])
            used[spec.kind].add(index)
            operands[pos] = Register(spec.kind, index)

        # Commit recency updates only after all picks, so one operand's
        # choice does not skew a sibling operand's recency view.
        for pos, spec in enumerate(form.operands):
            operand = operands[pos]
            if isinstance(operand, Register):
                state = self._state(spec.kind)
                if spec.is_read:
                    state.note_read(operand.index, tick)
                if spec.is_written:
                    state.note_write(operand.index, tick)
            elif isinstance(operand, MemoryRef):
                pass  # base pointer is immutable; no recency update needed

        return InstructionInstance(form, tuple(operands))  # type: ignore[arg-type]

    def allocate_sequence(
        self, forms: Iterable[InstructionForm]
    ) -> list[InstructionInstance]:
        """Allocate a whole sequence, threading recency state through."""
        return [self.allocate(form) for form in forms]
