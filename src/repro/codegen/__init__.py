"""Benchmark code generation: operand allocation and loop unrolling (§4.2)."""

from repro.codegen.assembly import (
    Immediate,
    InstructionInstance,
    MemoryRef,
    Register,
)
from repro.codegen.loop import TARGET_BODY_LENGTH, build_loop_body, interleaved_forms
from repro.codegen.regalloc import AllocationConfig, RegisterAllocator

__all__ = [
    "Register",
    "MemoryRef",
    "Immediate",
    "InstructionInstance",
    "RegisterAllocator",
    "AllocationConfig",
    "build_loop_body",
    "interleaved_forms",
    "TARGET_BODY_LENGTH",
]
