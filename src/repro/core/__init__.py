"""Core data model: ports, µops, port mappings, experiments, ISAs."""

from repro.core.errors import (
    CheckpointError,
    ExperimentError,
    ISAError,
    InferenceError,
    InjectedFault,
    MappingError,
    MeasurementError,
    ReproError,
    ServingError,
    SolverError,
    TransportError,
)
from repro.core.experiment import Experiment, ExperimentSet, MeasuredExperiment
from repro.core.isa import ISA, InstructionForm, OperandKind, OperandSpec
from repro.core.mapping import ThreeLevelMapping, TwoLevelMapping
from repro.core.ports import PortSpace

__all__ = [
    "ReproError",
    "MappingError",
    "ExperimentError",
    "ISAError",
    "MeasurementError",
    "SolverError",
    "InferenceError",
    "TransportError",
    "ServingError",
    "CheckpointError",
    "InjectedFault",
    "Experiment",
    "MeasuredExperiment",
    "ExperimentSet",
    "ISA",
    "InstructionForm",
    "OperandKind",
    "OperandSpec",
    "TwoLevelMapping",
    "ThreeLevelMapping",
    "PortSpace",
]
