"""Ports and port sets.

Execution ports are the scarce resource of the out-of-order backend: each
port accepts at most one µop per cycle (Section 2 of the paper).  Throughout
the library a *port* is identified by a small non-negative integer index into
a :class:`PortSpace`, and a *set of ports* is represented as a bitmask
(``int``).  Bitmasks make the bottleneck simulation algorithm (Section 4.5)
a handful of integer operations per subset, and they vectorize cleanly.

:class:`PortSpace` is the naming layer on top: it remembers human-readable
port names (``"P0"``, ``"DIV"``, ...) and converts between names, indices,
iterables of indices, and masks.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.core.errors import MappingError

__all__ = [
    "PortSpace",
    "mask_from_indices",
    "indices_from_mask",
    "mask_size",
    "iter_subsets",
    "iter_nonempty_subsets",
]


def mask_from_indices(indices: Iterable[int]) -> int:
    """Return the bitmask with the given port indices set.

    >>> mask_from_indices([0, 2])
    5
    """
    mask = 0
    for index in indices:
        if index < 0:
            raise MappingError(f"port index must be non-negative, got {index}")
        mask |= 1 << index
    return mask


def indices_from_mask(mask: int) -> tuple[int, ...]:
    """Return the sorted tuple of port indices contained in ``mask``.

    >>> indices_from_mask(5)
    (0, 2)
    """
    if mask < 0:
        raise MappingError(f"port mask must be non-negative, got {mask}")
    indices = []
    index = 0
    while mask:
        if mask & 1:
            indices.append(index)
        mask >>= 1
        index += 1
    return tuple(indices)


def mask_size(mask: int) -> int:
    """Return the number of ports in ``mask`` (the µop *width* |u|)."""
    return mask.bit_count()


def iter_subsets(mask: int) -> Iterator[int]:
    """Iterate over all subsets of ``mask``, including 0 and ``mask`` itself.

    Uses the standard descending subset-enumeration trick; the empty set is
    yielded last.
    """
    sub = mask
    while True:
        yield sub
        if sub == 0:
            return
        sub = (sub - 1) & mask


def iter_nonempty_subsets(mask: int) -> Iterator[int]:
    """Iterate over all non-empty subsets of ``mask``."""
    for sub in iter_subsets(mask):
        if sub:
            yield sub


class PortSpace:
    """A named, ordered collection of execution ports.

    The port space fixes the universe ``P`` of Definition 2/4.  All masks in
    mappings over this space must be subsets of :attr:`full_mask`.

    Parameters
    ----------
    names:
        Port names in index order, e.g. ``["P0", "P1", ..., "DIV"]``.
        Names must be unique and non-empty.
    """

    __slots__ = ("_names", "_index_by_name")

    def __init__(self, names: Sequence[str]):
        names = tuple(names)
        if not names:
            raise MappingError("a port space needs at least one port")
        if len(set(names)) != len(names):
            raise MappingError(f"duplicate port names in {names!r}")
        if any(not name for name in names):
            raise MappingError("port names must be non-empty strings")
        self._names = names
        self._index_by_name = {name: i for i, name in enumerate(names)}

    @classmethod
    def numbered(cls, count: int, prefix: str = "P") -> "PortSpace":
        """Create a port space of ``count`` ports named ``P0 .. P{count-1}``."""
        if count <= 0:
            raise MappingError(f"port count must be positive, got {count}")
        return cls([f"{prefix}{i}" for i in range(count)])

    @property
    def names(self) -> tuple[str, ...]:
        """Port names in index order."""
        return self._names

    @property
    def num_ports(self) -> int:
        """Number of ports |P|."""
        return len(self._names)

    @property
    def full_mask(self) -> int:
        """Bitmask with all ports set."""
        return (1 << len(self._names)) - 1

    def index(self, name: str) -> int:
        """Return the index of the port called ``name``."""
        try:
            return self._index_by_name[name]
        except KeyError:
            raise MappingError(f"unknown port {name!r}; have {self._names}") from None

    def mask(self, *names: str) -> int:
        """Return the bitmask of the ports with the given names.

        >>> PortSpace.numbered(4).mask("P0", "P2")
        5
        """
        return mask_from_indices(self.index(name) for name in names)

    def mask_names(self, mask: int) -> tuple[str, ...]:
        """Return the names of the ports in ``mask``."""
        self.check_mask(mask)
        return tuple(self._names[i] for i in indices_from_mask(mask))

    def check_mask(self, mask: int) -> int:
        """Validate that ``mask`` only uses ports of this space; return it."""
        if mask < 0 or mask & ~self.full_mask:
            raise MappingError(
                f"mask {mask:#x} uses ports outside this {self.num_ports}-port space"
            )
        return mask

    def format_mask(self, mask: int) -> str:
        """Human-readable rendering of a port set, e.g. ``{P0,P5}``."""
        return "{" + ",".join(self.mask_names(mask)) + "}"

    def __len__(self) -> int:
        return len(self._names)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PortSpace):
            return NotImplemented
        return self._names == other._names

    def __hash__(self) -> int:
        return hash(self._names)

    def __repr__(self) -> str:
        return f"PortSpace({list(self._names)!r})"
