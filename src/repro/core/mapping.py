"""Port mappings in the two-level and three-level models.

Definitions 2 and 4 of the paper:

* A **two-level** port mapping is a bipartite graph between instructions and
  ports: each instruction has a set of ports that can execute it.
* A **three-level** port mapping additionally has a layer of µops: each
  instruction decomposes into a multiset of µops (labeled edges ``(i, n, u)``)
  and each µop has a set of ports it can execute on.

Following Section 4.4, a µop is *identified with the set of ports that can
execute it*, so a µop is represented here as a port bitmask and a three-level
mapping stores, per instruction, a ``mask -> multiplicity`` dictionary.

Section 3.2 observes that three-level throughput reduces to two-level
throughput over the µop multiset; :meth:`ThreeLevelMapping.uop_masses`
implements that reduction and is what both throughput back ends consume.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass

from repro.core.errors import MappingError
from repro.core.experiment import Experiment
from repro.core.ports import PortSpace, mask_size

__all__ = ["TwoLevelMapping", "ThreeLevelMapping"]


class TwoLevelMapping:
    """A two-level port mapping: instruction name -> port mask (Definition 2).

    Parameters
    ----------
    ports:
        The port space ``P``.
    assignment:
        Mapping from instruction form name to the bitmask of ports that can
        execute that instruction.  Every mask must be non-empty: an
        instruction that no port can execute has no defined throughput.
    """

    def __init__(self, ports: PortSpace, assignment: Mapping[str, int]):
        self.ports = ports
        checked: dict[str, int] = {}
        for name, mask in assignment.items():
            ports.check_mask(mask)
            if mask == 0:
                raise MappingError(f"instruction {name!r} is mapped to no port")
            checked[name] = mask
        if not checked:
            raise MappingError("a port mapping must cover at least one instruction")
        self._assignment = dict(sorted(checked.items()))

    @property
    def instructions(self) -> tuple[str, ...]:
        """Covered instruction names, sorted."""
        return tuple(self._assignment.keys())

    def port_mask(self, name: str) -> int:
        """``Ports(m, i)`` as a bitmask."""
        try:
            return self._assignment[name]
        except KeyError:
            raise MappingError(f"instruction {name!r} not covered by this mapping") from None

    def __contains__(self, name: object) -> bool:
        return name in self._assignment

    def __len__(self) -> int:
        return len(self._assignment)

    def items(self) -> Iterator[tuple[str, int]]:
        return iter(self._assignment.items())

    def uop_masses(self, experiment: Experiment) -> dict[int, float]:
        """Mass per port mask for ``experiment`` (trivial in the two-level
        model: each instruction is one µop of mass ``e(i)``)."""
        masses: dict[int, float] = {}
        for name, count in experiment:
            mask = self.port_mask(name)
            masses[mask] = masses.get(mask, 0.0) + float(count)
        return masses

    def to_three_level(self) -> "ThreeLevelMapping":
        """Lift to a three-level mapping with one single-occurrence µop per
        instruction."""
        return ThreeLevelMapping(
            self.ports, {name: {mask: 1} for name, mask in self._assignment.items()}
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TwoLevelMapping):
            return NotImplemented
        return self.ports == other.ports and self._assignment == other._assignment

    def __repr__(self) -> str:
        return f"TwoLevelMapping({len(self)} instructions, {self.ports.num_ports} ports)"


@dataclass(frozen=True)
class _UopEdge:
    """One labeled edge ``(i, n, u)`` of a three-level mapping, resolved to
    the instruction it belongs to."""

    instruction: str
    multiplicity: int
    mask: int


class ThreeLevelMapping:
    """A three-level port mapping (Definition 4).

    Parameters
    ----------
    ports:
        The port space ``P``.
    assignment:
        ``instruction name -> {port mask -> multiplicity}``.  Every
        instruction must have at least one µop, every µop a non-empty mask
        and a positive multiplicity.
    """

    def __init__(self, ports: PortSpace, assignment: Mapping[str, Mapping[int, int]]):
        self.ports = ports
        checked: dict[str, dict[int, int]] = {}
        for name, uops in assignment.items():
            if not uops:
                raise MappingError(f"instruction {name!r} has no µops")
            clean: dict[int, int] = {}
            for mask, count in uops.items():
                ports.check_mask(mask)
                if mask == 0:
                    raise MappingError(f"instruction {name!r} has a µop with no ports")
                if count <= 0:
                    raise MappingError(
                        f"instruction {name!r} has µop multiplicity {count}; must be positive"
                    )
                clean[mask] = count
            checked[name] = dict(sorted(clean.items()))
        if not checked:
            raise MappingError("a port mapping must cover at least one instruction")
        self._assignment = dict(sorted(checked.items()))

    @property
    def instructions(self) -> tuple[str, ...]:
        """Covered instruction names, sorted."""
        return tuple(self._assignment.keys())

    def uops_of(self, name: str) -> dict[int, int]:
        """The ``mask -> multiplicity`` decomposition of instruction ``name``."""
        try:
            return dict(self._assignment[name])
        except KeyError:
            raise MappingError(f"instruction {name!r} not covered by this mapping") from None

    def __contains__(self, name: object) -> bool:
        return name in self._assignment

    def __len__(self) -> int:
        return len(self._assignment)

    def items(self) -> Iterator[tuple[str, dict[int, int]]]:
        for name, uops in self._assignment.items():
            yield name, dict(uops)

    def edges(self) -> Iterator[_UopEdge]:
        """Iterate over all labeled instruction→µop edges ``(i, n, u)``."""
        for name, uops in self._assignment.items():
            for mask, count in uops.items():
                yield _UopEdge(name, count, mask)

    def distinct_uops(self) -> tuple[int, ...]:
        """Sorted masks of all distinct µops used anywhere in the mapping.

        This is the "number of µops" statistic of Table 2.
        """
        masks = {mask for uops in self._assignment.values() for mask in uops}
        return tuple(sorted(masks))

    def uop_volume(self) -> int:
        """The µop volume ``V(m) = Σ_(i,n,u) n·|u|`` (Section 4.4)."""
        return sum(
            count * mask_size(mask)
            for uops in self._assignment.values()
            for mask, count in uops.items()
        )

    def uop_masses(self, experiment: Experiment) -> dict[int, float]:
        """The two-level reduction of Section 3.2.

        Returns the µop experiment ``e'(u) = Σ_(i,n,u) e(i)·n`` as a mapping
        from port mask to total mass.  Both throughput back ends (LP and
        bottleneck) consume this form.
        """
        masses: dict[int, float] = {}
        for name, count in experiment:
            for mask, mult in self.uops_of(name).items():
                masses[mask] = masses.get(mask, 0.0) + float(count * mult)
        return masses

    def restricted_to(self, names: Iterable[str]) -> "ThreeLevelMapping":
        """Sub-mapping covering only the given instructions."""
        wanted = set(names)
        missing = wanted - set(self._assignment)
        if missing:
            raise MappingError(f"instructions {sorted(missing)} not covered")
        return ThreeLevelMapping(
            self.ports,
            {name: uops for name, uops in self._assignment.items() if name in wanted},
        )

    def extended_by(self, translation: Mapping[str, str]) -> "ThreeLevelMapping":
        """Extend the mapping to congruent instructions.

        ``translation`` maps instruction names to the representative whose
        decomposition they share (Section 4.3); representatives must be
        covered by this mapping.
        """
        assignment = {name: dict(uops) for name, uops in self._assignment.items()}
        for name, rep in translation.items():
            if rep not in self._assignment:
                raise MappingError(
                    f"representative {rep!r} for {name!r} not covered by this mapping"
                )
            assignment[name] = dict(self._assignment[rep])
        return ThreeLevelMapping(self.ports, assignment)

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable representation using port *names*."""
        return {
            "ports": list(self.ports.names),
            "instructions": {
                name: [
                    {"ports": list(self.ports.mask_names(mask)), "count": count}
                    for mask, count in uops.items()
                ]
                for name, uops in self._assignment.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ThreeLevelMapping":
        """Inverse of :meth:`to_dict`."""
        try:
            ports = PortSpace(data["ports"])
            assignment: dict[str, dict[int, int]] = {}
            for name, uops in data["instructions"].items():
                decomposition: dict[int, int] = {}
                for entry in uops:
                    mask = ports.mask(*entry["ports"])
                    decomposition[mask] = decomposition.get(mask, 0) + int(entry["count"])
                assignment[name] = decomposition
        except (KeyError, TypeError) as exc:
            raise MappingError(f"malformed mapping dictionary: {exc}") from exc
        return cls(ports, assignment)

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ThreeLevelMapping":
        """Deserialize from a JSON string."""
        return cls.from_dict(json.loads(text))

    def fingerprint(self) -> str:
        """Stable content hash of the mapping (sha256 hex, truncated).

        Two mappings have equal fingerprints iff they have equal canonical
        serializations (port names in order, instructions and µops sorted —
        which :meth:`to_dict` already guarantees).  The serving layer uses
        this as the mapping *version*: hot reload compares fingerprints to
        decide whether cached predictions must be invalidated, and reports
        it from ``/v1/stats`` so operators can tell which artifact revision
        a server is answering with.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def describe(self) -> str:
        """Human-readable multi-line description of the mapping."""
        lines = [f"ThreeLevelMapping over {self.ports.num_ports} ports"]
        for name, uops in self._assignment.items():
            parts = [
                f"{count}x{self.ports.format_mask(mask)}" for mask, count in uops.items()
            ]
            lines.append(f"  {name}: " + " + ".join(parts))
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ThreeLevelMapping):
            return NotImplemented
        return self.ports == other.ports and self._assignment == other._assignment

    def __repr__(self) -> str:
        return (
            f"ThreeLevelMapping({len(self)} instructions, "
            f"{len(self.distinct_uops())} µops, {self.ports.num_ports} ports)"
        )
