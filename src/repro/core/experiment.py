"""Experiments: multisets of instruction forms with measured throughputs.

Per Section 3.1 of the paper, an experiment abstracts from instruction order
and is represented as a multiset ``e : I -> N`` mapping instruction forms to
their number of occurrences.  PMEvo only uses experiments whose instructions
the scheduler can reorder freely, so the multiset view loses nothing.

:class:`Experiment` is an immutable multiset keyed by instruction-form *name*
(a string), so the analytical layer does not depend on ISA objects.
:class:`ExperimentSet` pairs experiments with measured throughputs — the
``E ⊆ (I -> N) × R`` of Section 4.4 — and is the unit of data handed to the
evolutionary algorithm.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass

from repro.core.errors import ExperimentError

__all__ = ["Experiment", "MeasuredExperiment", "ExperimentSet"]


class Experiment:
    """An immutable multiset of instruction form names.

    >>> e = Experiment({"add": 2, "mul": 1})
    >>> e["add"], e["mul"], e["store"]
    (2, 1, 0)
    >>> e.size
    3
    """

    __slots__ = ("_counts", "_key")

    def __init__(self, counts: Mapping[str, int] | Iterable[tuple[str, int]]):
        items = dict(counts)
        for name, count in items.items():
            if not isinstance(count, int):
                raise ExperimentError(f"count for {name!r} must be int, got {count!r}")
            if count <= 0:
                raise ExperimentError(f"count for {name!r} must be positive, got {count}")
        if not items:
            raise ExperimentError("an experiment must contain at least one instruction")
        self._counts: dict[str, int] = dict(sorted(items.items()))
        self._key: tuple[tuple[str, int], ...] = tuple(self._counts.items())

    @classmethod
    def singleton(cls, name: str, count: int = 1) -> "Experiment":
        """The experiment ``{name -> count}``."""
        return cls({name: count})

    @classmethod
    def from_sequence(cls, names: Iterable[str]) -> "Experiment":
        """Build an experiment by counting a sequence of instruction names."""
        counts: dict[str, int] = {}
        for name in names:
            counts[name] = counts.get(name, 0) + 1
        return cls(counts)

    @property
    def counts(self) -> Mapping[str, int]:
        """The underlying name -> count mapping (sorted by name)."""
        return dict(self._counts)

    @property
    def size(self) -> int:
        """Total number of instruction instances (with multiplicity)."""
        return sum(self._counts.values())

    @property
    def support(self) -> tuple[str, ...]:
        """The distinct instruction form names, sorted."""
        return tuple(self._counts.keys())

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __contains__(self, name: object) -> bool:
        return name in self._counts

    def __iter__(self) -> Iterator[tuple[str, int]]:
        return iter(self._key)

    def __len__(self) -> int:
        """Number of *distinct* instruction forms."""
        return len(self._counts)

    def instances(self) -> Iterator[str]:
        """Iterate over instruction names with multiplicity.

        >>> list(Experiment({"a": 2, "b": 1}).instances())
        ['a', 'a', 'b']
        """
        for name, count in self._key:
            for _ in range(count):
                yield name

    def scaled(self, factor: int) -> "Experiment":
        """Return the experiment with every count multiplied by ``factor``."""
        if factor <= 0:
            raise ExperimentError(f"scale factor must be positive, got {factor}")
        return Experiment({name: count * factor for name, count in self._key})

    def merged(self, other: "Experiment") -> "Experiment":
        """Multiset union (counts add)."""
        counts = dict(self._counts)
        for name, count in other:
            counts[name] = counts.get(name, 0) + count
        return Experiment(counts)

    def rename(self, translation: Mapping[str, str]) -> "Experiment":
        """Rename instructions via ``translation`` (merging collisions).

        Used by congruence filtering to map instructions onto their class
        representatives.
        """
        counts: dict[str, int] = {}
        for name, count in self._key:
            new = translation.get(name, name)
            counts[new] = counts.get(new, 0) + count
        return Experiment(counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Experiment):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}: {count}" for name, count in self._key)
        return f"Experiment({{{inner}}})"


@dataclass(frozen=True)
class MeasuredExperiment:
    """An experiment together with its measured throughput in cycles."""

    experiment: Experiment
    throughput: float

    def __post_init__(self) -> None:
        if self.throughput <= 0.0:
            raise ExperimentError(
                f"measured throughput must be positive, got {self.throughput}"
            )


class ExperimentSet:
    """An ordered collection of measured experiments.

    This is the data handed to the evolutionary algorithm: the set ``E`` of
    Section 4.4.  Iteration order is insertion order, which keeps fitness
    evaluation deterministic.
    """

    def __init__(self, items: Iterable[MeasuredExperiment] = ()):
        self._items: list[MeasuredExperiment] = list(items)

    def add(self, experiment: Experiment, throughput: float) -> None:
        """Append a measured experiment."""
        self._items.append(MeasuredExperiment(experiment, throughput))

    @property
    def experiments(self) -> tuple[Experiment, ...]:
        return tuple(item.experiment for item in self._items)

    @property
    def throughputs(self) -> tuple[float, ...]:
        return tuple(item.throughput for item in self._items)

    def instruction_names(self) -> tuple[str, ...]:
        """Sorted names of all instructions occurring in any experiment."""
        names: set[str] = set()
        for item in self._items:
            names.update(item.experiment.support)
        return tuple(sorted(names))

    def singleton_throughput(self, name: str) -> float | None:
        """Measured throughput of the ``{name -> 1}`` experiment, if present."""
        for item in self._items:
            exp = item.experiment
            if len(exp) == 1 and exp[name] == 1 and exp.size == 1:
                return item.throughput
        return None

    def restricted_to(self, names: Iterable[str]) -> "ExperimentSet":
        """Keep only experiments whose support is within ``names``."""
        allowed = set(names)
        return ExperimentSet(
            item
            for item in self._items
            if all(name in allowed for name in item.experiment.support)
        )

    def renamed(self, translation: Mapping[str, str]) -> "ExperimentSet":
        """Apply :meth:`Experiment.rename` to every experiment, dropping
        duplicates (keeping the first measurement of each renamed multiset)."""
        seen: set[Experiment] = set()
        out = ExperimentSet()
        for item in self._items:
            renamed = item.experiment.rename(translation)
            if renamed in seen:
                continue
            seen.add(renamed)
            out.add(renamed, item.throughput)
        return out

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[MeasuredExperiment]:
        return iter(self._items)

    def __getitem__(self, index: int) -> MeasuredExperiment:
        return self._items[index]

    def __repr__(self) -> str:
        return f"ExperimentSet({len(self._items)} experiments)"
