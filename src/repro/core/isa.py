"""Instruction set architecture descriptions.

The input of PMEvo's first stage (Section 4.1) is a set of *instruction
forms*: instructions with typed placeholders for their operands.  The
placeholder type fixes the operand kind (general purpose register, vector
register, memory, immediate) and width.  There can be multiple instruction
forms for the same operation with different operand types, e.g.
``add R64, R64`` and ``add R32, R32``.

Instruction forms are the atoms of everything downstream: experiments are
multisets of instruction forms, port mappings map instruction forms to µops,
and the machine simulator instantiates forms with concrete operands.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.core.errors import ISAError

__all__ = ["OperandKind", "OperandSpec", "InstructionForm", "ISA"]


class OperandKind(enum.Enum):
    """The kind of an instruction operand placeholder."""

    GPR = "gpr"  #: general purpose register
    VEC = "vec"  #: vector register
    MEM = "mem"  #: memory operand (base register + constant offset)
    IMM = "imm"  #: immediate constant

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class OperandSpec:
    """A typed operand placeholder of an instruction form.

    Attributes
    ----------
    kind:
        The operand kind (register class, memory, or immediate).
    width:
        Operand width in bits (e.g. 32/64 for GPRs, 128/256 for vectors).
    is_read:
        Whether the instruction reads this operand.
    is_written:
        Whether the instruction writes this operand.  Immediates and, in this
        library, memory operands are never written (stores are modeled as
        reading their memory operand's address registers; the stored data
        travels through a read register operand).
    """

    kind: OperandKind
    width: int
    is_read: bool = True
    is_written: bool = False

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ISAError(f"operand width must be positive, got {self.width}")
        if not (self.is_read or self.is_written):
            raise ISAError("an operand must be read, written, or both")
        if self.kind is OperandKind.IMM and self.is_written:
            raise ISAError("immediate operands cannot be written")

    @property
    def is_register(self) -> bool:
        """True for register-class operands (GPR or VEC)."""
        return self.kind in (OperandKind.GPR, OperandKind.VEC)

    def render(self) -> str:
        """Short placeholder syntax, e.g. ``R64``, ``V256``, ``M64``, ``I32``."""
        letter = {
            OperandKind.GPR: "R",
            OperandKind.VEC: "V",
            OperandKind.MEM: "M",
            OperandKind.IMM: "I",
        }[self.kind]
        marks = ""
        if self.is_written and self.is_read:
            marks = "rw"
        elif self.is_written:
            marks = "w"
        return f"{letter}{self.width}{marks}"


# Convenience constructors used heavily by the machine presets.
def gpr(width: int, *, read: bool = True, write: bool = False) -> OperandSpec:
    """A general-purpose register operand."""
    return OperandSpec(OperandKind.GPR, width, is_read=read, is_written=write)


def vec(width: int, *, read: bool = True, write: bool = False) -> OperandSpec:
    """A vector register operand."""
    return OperandSpec(OperandKind.VEC, width, is_read=read, is_written=write)


def mem(width: int) -> OperandSpec:
    """A memory operand (always counted as read: its address registers)."""
    return OperandSpec(OperandKind.MEM, width, is_read=True, is_written=False)


def imm(width: int = 32) -> OperandSpec:
    """An immediate operand."""
    return OperandSpec(OperandKind.IMM, width, is_read=True, is_written=False)


@dataclass(frozen=True)
class InstructionForm:
    """An instruction with typed operand placeholders.

    Instruction forms are identified by :attr:`name`, which must be unique
    within an ISA; equality and hashing use only the name so that forms can
    be used as dictionary keys cheaply.

    Attributes
    ----------
    name:
        Unique identifier, conventionally ``{mnemonic}_{operand sig}``.
    mnemonic:
        The operation name shared by sibling forms (``add``, ``vmulps``...).
    operands:
        The typed operand placeholders in assembly order.
    semantic_class:
        A free-form tag grouping forms that a machine implements with the
        same execution resources (e.g. ``"int_alu"``).  Machine presets key
        their ground-truth µop decompositions and latencies on this tag; the
        inference pipeline never looks at it.
    latency_class:
        Optional tag for machines that want distinct latencies within one
        semantic class; defaults to the semantic class.
    """

    name: str
    mnemonic: str
    operands: tuple[OperandSpec, ...]
    semantic_class: str = "default"
    latency_class: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ISAError("instruction form name must be non-empty")
        if not self.mnemonic:
            raise ISAError(f"instruction form {self.name!r} has empty mnemonic")
        if not self.latency_class:
            object.__setattr__(self, "latency_class", self.semantic_class)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InstructionForm):
            return NotImplemented
        return self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)

    @property
    def reads(self) -> tuple[int, ...]:
        """Indices of operands read by this form."""
        return tuple(i for i, op in enumerate(self.operands) if op.is_read)

    @property
    def writes(self) -> tuple[int, ...]:
        """Indices of operands written by this form."""
        return tuple(i for i, op in enumerate(self.operands) if op.is_written)

    def render(self) -> str:
        """Assembly-like rendering, e.g. ``add R64rw, R64``."""
        if not self.operands:
            return self.mnemonic
        return f"{self.mnemonic} " + ", ".join(op.render() for op in self.operands)

    def __repr__(self) -> str:
        return f"InstructionForm({self.name!r})"


def make_form(
    mnemonic: str,
    operands: Sequence[OperandSpec],
    semantic_class: str,
    *,
    latency_class: str = "",
    name: str | None = None,
) -> InstructionForm:
    """Build an :class:`InstructionForm` with a canonical generated name.

    The canonical name is ``{mnemonic}_{rendered operand signature}``, e.g.
    ``add_r64rw_r64``; it is what ISA tables and serialized mappings use.
    """
    if name is None:
        sig = "_".join(op.render().lower() for op in operands)
        name = f"{mnemonic}_{sig}" if sig else mnemonic
    return InstructionForm(
        name=name,
        mnemonic=mnemonic,
        operands=tuple(operands),
        semantic_class=semantic_class,
        latency_class=latency_class,
    )


class ISA:
    """A named, ordered collection of instruction forms.

    Provides name-based lookup and stable iteration order (the order forms
    were added), which downstream code relies on for reproducibility.
    """

    def __init__(self, name: str, forms: Iterable[InstructionForm] = ()):
        if not name:
            raise ISAError("ISA name must be non-empty")
        self.name = name
        self._forms: dict[str, InstructionForm] = {}
        for form in forms:
            self.add(form)

    def add(self, form: InstructionForm) -> None:
        """Add a form; raises :class:`ISAError` on duplicate names."""
        if form.name in self._forms:
            raise ISAError(f"duplicate instruction form {form.name!r} in ISA {self.name!r}")
        self._forms[form.name] = form

    @property
    def forms(self) -> tuple[InstructionForm, ...]:
        """All instruction forms in insertion order."""
        return tuple(self._forms.values())

    @property
    def names(self) -> tuple[str, ...]:
        """Names of all instruction forms in insertion order."""
        return tuple(self._forms.keys())

    def __getitem__(self, name: str) -> InstructionForm:
        try:
            return self._forms[name]
        except KeyError:
            raise ISAError(f"unknown instruction form {name!r} in ISA {self.name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._forms

    def __len__(self) -> int:
        return len(self._forms)

    def __iter__(self) -> Iterator[InstructionForm]:
        return iter(self._forms.values())

    def restrict(self, names: Iterable[str], new_name: str | None = None) -> "ISA":
        """Return a sub-ISA containing only the given form names.

        The relative order of the retained forms is preserved.
        """
        wanted = set(names)
        missing = wanted - set(self._forms)
        if missing:
            raise ISAError(f"unknown forms {sorted(missing)} in ISA {self.name!r}")
        sub = ISA(new_name or f"{self.name}-subset")
        for form in self._forms.values():
            if form.name in wanted:
                sub.add(form)
        return sub

    def by_semantic_class(self) -> dict[str, list[InstructionForm]]:
        """Group forms by their semantic class tag."""
        groups: dict[str, list[InstructionForm]] = {}
        for form in self._forms.values():
            groups.setdefault(form.semantic_class, []).append(form)
        return groups

    def __repr__(self) -> str:
        return f"ISA({self.name!r}, {len(self)} forms)"
