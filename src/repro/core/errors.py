"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class MappingError(ReproError):
    """Raised for structurally invalid port mappings.

    Examples: an instruction with no µops, a µop that can execute on no
    port, an edge referring to an unknown instruction or port.
    """


class ExperimentError(ReproError):
    """Raised for invalid experiments (empty multisets, negative counts)."""


class ISAError(ReproError):
    """Raised for inconsistent ISA descriptions or unknown instruction forms."""


class MeasurementError(ReproError):
    """Raised when a machine measurement cannot be carried out."""


class SolverError(ReproError):
    """Raised when the LP solver fails to produce an optimal solution."""


class InferenceError(ReproError):
    """Raised when the evolutionary inference is misconfigured."""


class TransportError(ReproError):
    """Raised when a migration transport cannot make progress.

    Examples: the socket coordinator timed out waiting for the minimum
    number of workers, a worker sent a malformed or oversized frame, or a
    worker's protocol version does not match the coordinator's.
    """


class CheckpointError(ReproError):
    """Raised for unreadable, corrupted, or mismatched checkpoints.

    Examples: a truncated or non-JSON snapshot file, an unknown format tag,
    or resuming with a configuration (or instruction universe) different
    from the one the checkpoint was written under.
    """
