"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class MappingError(ReproError):
    """Raised for structurally invalid port mappings.

    Examples: an instruction with no µops, a µop that can execute on no
    port, an edge referring to an unknown instruction or port.
    """


class ExperimentError(ReproError):
    """Raised for invalid experiments (empty multisets, negative counts)."""


class ISAError(ReproError):
    """Raised for inconsistent ISA descriptions or unknown instruction forms."""


class MeasurementError(ReproError):
    """Raised when a machine measurement cannot be carried out."""


class SolverError(ReproError):
    """Raised when the LP solver fails to produce an optimal solution."""


class InferenceError(ReproError):
    """Raised when the evolutionary inference is misconfigured."""


class TransportError(ReproError):
    """Raised when a migration transport cannot make progress.

    Examples: the socket coordinator timed out waiting for the minimum
    number of workers, a worker sent a malformed or oversized frame, or a
    worker's protocol version does not match the coordinator's.
    """


class InjectedFault(ReproError, ConnectionError):
    """Raised by the fault-injection harness (:mod:`repro.pmevo.faults`).

    Never raised in production paths: :class:`~repro.pmevo.faults.FaultyTransport`
    and :class:`~repro.pmevo.faults.FaultySocket` raise it at scripted points
    to simulate crashes, so chaos tests can tell an injected failure from a
    genuine bug (a genuine bug raises anything *but* this).

    Also a :class:`ConnectionError` (hence :class:`OSError`) on purpose:
    an injected connection drop then takes exactly the code path a real
    dead socket would — the recovery logic under test cannot tell the
    difference — while scripted crashes that nothing is supposed to catch
    (e.g. :class:`~repro.pmevo.faults.FaultyTransport` killing a
    coordinator) still surface under their own type.
    """


class ServingError(ReproError):
    """Raised for prediction-serving misconfiguration and registry failures.

    Examples: a mapping registry spec with duplicate ids, an unreadable or
    malformed mapping artifact, or a hot reload against a file that no
    longer parses.  Client-side protocol violations use the subclass
    :class:`repro.serving.protocol.ProtocolError`, which additionally
    carries an HTTP status and a machine-readable error code.
    """


class CheckpointError(ReproError):
    """Raised for unreadable, corrupted, or mismatched checkpoints.

    Examples: a truncated or non-JSON snapshot file, an unknown format tag,
    or resuming with a configuration (or instruction universe) different
    from the one the checkpoint was written under.
    """
