"""Batched throughput evaluation for the evolutionary algorithm.

Fitness evaluation speed "directly corresponds to the quality of the obtained
solution" (Section 4.5).  This module is our analogue of the paper's
aggressively vectorized bottleneck implementation: it evaluates one or many
candidate mappings against a whole experiment set with numpy.

The pipeline per candidate is

1. genome → µop matrix ``M[instruction, mask]`` of multiplicities,
2. mass matrix ``W = X @ M`` where ``X[experiment, instruction]`` holds the
   multiset counts (built once per experiment set),
3. zeta transform of ``W`` along the mask axis (superset sums),
4. ``t*[e] = max_Q W[e, Q] / |Q|``.

Step 2 is a single BLAS matrix product, steps 3–4 are ``|P|`` slice-adds and
one reduction, so the per-candidate cost is far below solving hundreds of
LPs — the property that makes population-scale search practical.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.errors import ExperimentError, MappingError
from repro.core.experiment import Experiment, ExperimentSet
from repro.core.mapping import ThreeLevelMapping
from repro.throughput.bottleneck import popcounts, zeta_transform

__all__ = ["BatchedThroughputEvaluator"]


class BatchedThroughputEvaluator:
    """Evaluates candidate mappings against a fixed experiment set.

    Parameters
    ----------
    experiments:
        The experiments (and, if an :class:`ExperimentSet` is given, their
        measured throughputs, enabling :meth:`davg`).
    instruction_names:
        The instruction universe in a fixed order.  Every experiment must be
        supported on these names.
    num_ports:
        Number of ports |P|; masks in genomes must fit in this many bits.
    """

    def __init__(
        self,
        experiments: ExperimentSet | Sequence[Experiment],
        instruction_names: Sequence[str],
        num_ports: int,
    ):
        if num_ports <= 0:
            raise MappingError(f"number of ports must be positive, got {num_ports}")
        self.num_ports = num_ports
        self.instruction_names = tuple(instruction_names)
        self._index = {name: i for i, name in enumerate(self.instruction_names)}
        if len(self._index) != len(self.instruction_names):
            raise MappingError("duplicate instruction names")

        if isinstance(experiments, ExperimentSet):
            exps: Sequence[Experiment] = experiments.experiments
            self.measured = np.array(experiments.throughputs, dtype=np.float64)
        else:
            exps = list(experiments)
            self.measured = None
        if not exps:
            raise ExperimentError("need at least one experiment")

        self.experiments = tuple(exps)
        counts = np.zeros((len(exps), len(self.instruction_names)), dtype=np.float64)
        for row, experiment in enumerate(exps):
            for name, count in experiment:
                col = self._index.get(name)
                if col is None:
                    raise ExperimentError(
                        f"experiment uses {name!r}, not in the instruction universe"
                    )
                counts[row, col] = float(count)
        self._counts = counts
        self._popcounts = popcounts(num_ports).copy()
        self._popcounts[0] = np.inf  # the empty set never wins the max

    @property
    def num_experiments(self) -> int:
        return len(self.experiments)

    def uop_matrix(self, genome: Mapping[str, Mapping[int, int]]) -> np.ndarray:
        """Scatter a genome (``name -> {mask -> multiplicity}``) into a dense
        ``[instruction, 2^|P|]`` multiplicity matrix."""
        size = 1 << self.num_ports
        matrix = np.zeros((len(self.instruction_names), size), dtype=np.float64)
        for name, uops in genome.items():
            row = self._index.get(name)
            if row is None:
                continue  # genomes may cover more instructions than the universe
            for mask, mult in uops.items():
                if mask <= 0 or mask >= size:
                    raise MappingError(f"mask {mask:#x} invalid for {self.num_ports} ports")
                matrix[row, mask] += float(mult)
        return matrix

    def _validate_covers(self, matrix: np.ndarray) -> None:
        # Every instruction used by some experiment must have at least one µop.
        used = self._counts.sum(axis=0) > 0
        has_uop = matrix.sum(axis=1) > 0
        missing = used & ~has_uop
        if missing.any():
            names = [self.instruction_names[i] for i in np.nonzero(missing)[0]]
            raise MappingError(f"instructions without µops: {names}")

    def throughputs_from_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Predicted throughput per experiment for a µop matrix."""
        self._validate_covers(matrix)
        masses = self._counts @ matrix  # [experiment, mask]
        zeta_transform(masses, self.num_ports)
        np.divide(masses, self._popcounts, out=masses)
        return masses.max(axis=1)

    def throughputs_from_matrices(self, matrices: np.ndarray) -> np.ndarray:
        """Predicted throughputs for a stack of µop matrices.

        ``matrices`` has shape ``[population, instruction, 2^|P|]``; the
        result has shape ``[population, experiment]``.  This is the hot path
        of the evolutionary algorithm.
        """
        if matrices.ndim != 3:
            raise MappingError("expected a [population, instruction, mask] array")
        masses = np.einsum("ei,piu->peu", self._counts, matrices, optimize=True)
        zeta_transform(masses, self.num_ports)
        np.divide(masses, self._popcounts, out=masses)
        return masses.max(axis=2)

    def throughputs(
        self, mapping: ThreeLevelMapping | Mapping[str, Mapping[int, int]]
    ) -> np.ndarray:
        """Predicted throughput per experiment for a mapping or raw genome."""
        if isinstance(mapping, ThreeLevelMapping):
            genome = {name: uops for name, uops in mapping.items()}
        else:
            genome = mapping
        return self.throughputs_from_matrix(self.uop_matrix(genome))

    def davg(
        self, mapping: ThreeLevelMapping | Mapping[str, Mapping[int, int]]
    ) -> float:
        """Average relative prediction error ``D_avg`` (Section 4.4)."""
        if self.measured is None:
            raise ExperimentError("this evaluator has no measured throughputs")
        predicted = self.throughputs(mapping)
        return float(np.mean(np.abs(predicted - self.measured) / self.measured))

    def davg_from_throughputs(self, predicted: np.ndarray) -> np.ndarray:
        """``D_avg`` for precomputed prediction rows (vectorized over a
        leading population axis if present)."""
        if self.measured is None:
            raise ExperimentError("this evaluator has no measured throughputs")
        return np.mean(np.abs(predicted - self.measured) / self.measured, axis=-1)
