"""Batched throughput evaluation for the evolutionary algorithm.

Fitness evaluation speed "directly corresponds to the quality of the obtained
solution" (Section 4.5).  This module is our analogue of the paper's
aggressively vectorized bottleneck implementation: it evaluates one or many
candidate mappings against a whole experiment set with numpy.

The pipeline per candidate is

1. genome → µop matrix ``M[instruction, mask]`` of multiplicities,
2. mass matrix ``W = X @ M`` where ``X[experiment, instruction]`` holds the
   multiset counts (built once per experiment set),
3. zeta transform of ``W`` along the mask axis (superset sums),
4. ``t*[e] = max_Q W[e, Q] / |Q|``.

Step 2 is a single BLAS matrix product, steps 3–4 are ``|P|`` slice-adds and
one reduction, so the per-candidate cost is far below solving hundreds of
LPs — the property that makes population-scale search practical.

Population-scale path
---------------------
The per-genome pipeline above still pays Python dict traffic per candidate
(:meth:`BatchedThroughputEvaluator.uop_matrix` scatters one genome at a
time).  The evolutionary hot loop therefore uses the *packed* path instead:
a whole :class:`repro.pmevo.packed.PackedPopulation` is scattered into a
preallocated dense workspace with one ``np.add.at`` per µop-slot axis — no
per-genome Python loops — and then flows through the same fused kernel
(mass product → in-place zeta transform → divide → max).  Workspaces
(:class:`PackedWorkspace`) are allocated once and reused across generations,
so steady-state evaluation does no large allocations at all.  When
``numba`` is importable, :meth:`throughputs_from_packed` can JIT the fused
kernel (``engine="numba"``/``"auto"``); the numpy path is always available
and is the bit-exact reference.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.core.errors import ExperimentError, MappingError
from repro.core.experiment import Experiment, ExperimentSet
from repro.core.mapping import ThreeLevelMapping
from repro.throughput.bottleneck import popcounts, zeta_transform

if TYPE_CHECKING:  # import would cycle through repro.pmevo at runtime
    from repro.pmevo.packed import PackedPopulation

__all__ = [
    "BatchedThroughputEvaluator",
    "FixedMappingEvaluator",
    "PackedWorkspace",
    "SequenceWorkspace",
    "HAVE_NUMBA",
]

try:  # optional JIT acceleration; the numpy kernel is the reference
    import numba as _numba
except ImportError:  # pragma: no cover - exercised on numba-less installs
    _numba = None

#: Whether the optional numba-jitted fused kernel is available.
HAVE_NUMBA = _numba is not None

_NUMBA_KERNEL = None


def _numba_kernel():
    """Build (once) the jitted fused kernel: scatter → zeta → divide → max.

    Matches the numpy kernel within floating-point reassociation (the numpy
    path is the bit-exact reference; this one contracts the instruction axis
    µop-by-µop instead of through BLAS).
    """
    global _NUMBA_KERNEL
    if _NUMBA_KERNEL is None:

        @_numba.njit(cache=True)
        def kernel(counts, masks, mults, num_ports, popcount_table, out):
            population, n_instr, n_slots = masks.shape
            n_exp = counts.shape[0]
            size = 1 << num_ports
            mass = np.empty((n_exp, size), dtype=np.float64)
            for p in range(population):
                mass[:, :] = 0.0
                for i in range(n_instr):
                    for s in range(n_slots):
                        mask = masks[p, i, s]
                        if mask == 0:
                            break
                        mult = float(mults[p, i, s])
                        for e in range(n_exp):
                            mass[e, mask] += counts[e, i] * mult
                for k in range(num_ports):
                    bit = 1 << k
                    for q in range(size):
                        if q & bit:
                            lo = q ^ bit
                            for e in range(n_exp):
                                mass[e, q] += mass[e, lo]
                for e in range(n_exp):
                    best = 0.0
                    for q in range(1, size):
                        value = mass[e, q] / popcount_table[q]
                        if value > best:
                            best = value
                    out[p, e] = best

        _NUMBA_KERNEL = kernel
    return _NUMBA_KERNEL


class PackedWorkspace:
    """Preallocated buffers for packed-population evaluation.

    Owns the dense scatter target (``[capacity, instruction, 2^|P|]``), the
    mass workspace (``[capacity, experiment, 2^|P|]``), and the broadcast
    index grids the per-slot ``np.add.at`` scatter uses.  One workspace is
    allocated per evolver and reused for every generation; populations
    larger than ``capacity`` are evaluated in capacity-sized chunks through
    the same buffers.

    ``masses`` is a ``[capacity, experiment, 2^|P|]`` *view* of a buffer
    whose memory order is ``[capacity, 2^|P|, experiment]`` — the layout the
    contraction in :func:`numpy.einsum` naturally produces, which keeps the
    zeta transform's strided half-block adds on long contiguous runs
    (measurably faster than the C-order view, with bit-identical results).
    """

    __slots__ = ("capacity", "uops", "masses", "genome_index", "instruction_index")

    def __init__(self, capacity: int, num_instructions: int, num_experiments: int, num_ports: int):
        if capacity < 1:
            raise MappingError("workspace capacity must be positive")
        size = 1 << num_ports
        self.capacity = capacity
        self.uops = np.zeros((capacity, num_instructions, size), dtype=np.float64)
        masses_buffer = np.empty((capacity, size, num_experiments), dtype=np.float64)
        self.masses = masses_buffer.transpose(0, 2, 1)
        self.genome_index = np.arange(capacity, dtype=np.intp)[:, None]
        self.instruction_index = np.arange(num_instructions, dtype=np.intp)[None, :]


class BatchedThroughputEvaluator:
    """Evaluates candidate mappings against a fixed experiment set.

    Parameters
    ----------
    experiments:
        The experiments (and, if an :class:`ExperimentSet` is given, their
        measured throughputs, enabling :meth:`davg`).
    instruction_names:
        The instruction universe in a fixed order.  Every experiment must be
        supported on these names.
    num_ports:
        Number of ports |P|; masks in genomes must fit in this many bits.
    """

    def __init__(
        self,
        experiments: ExperimentSet | Sequence[Experiment],
        instruction_names: Sequence[str],
        num_ports: int,
    ):
        if num_ports <= 0:
            raise MappingError(f"number of ports must be positive, got {num_ports}")
        self.num_ports = num_ports
        self.instruction_names = tuple(instruction_names)
        self._index = {name: i for i, name in enumerate(self.instruction_names)}
        if len(self._index) != len(self.instruction_names):
            raise MappingError("duplicate instruction names")

        if isinstance(experiments, ExperimentSet):
            exps: Sequence[Experiment] = experiments.experiments
            self.measured = np.array(experiments.throughputs, dtype=np.float64)
            # Precomputed once: D_avg divides by the measured throughputs on
            # every evaluation, which the hot loop turns into a multiply.
            self._inv_measured = 1.0 / self.measured
        else:
            exps = list(experiments)
            self.measured = None
            self._inv_measured = None
        if not exps:
            raise ExperimentError("need at least one experiment")

        self.experiments = tuple(exps)
        counts = np.zeros((len(exps), len(self.instruction_names)), dtype=np.float64)
        for row, experiment in enumerate(exps):
            for name, count in experiment:
                col = self._index.get(name)
                if col is None:
                    raise ExperimentError(
                        f"experiment uses {name!r}, not in the instruction universe"
                    )
                counts[row, col] = float(count)
        self._counts = counts
        self._popcounts = popcounts(num_ports).copy()
        self._popcounts[0] = np.inf  # the empty set never wins the max

    @property
    def num_experiments(self) -> int:
        return len(self.experiments)

    def uop_matrix(self, genome: Mapping[str, Mapping[int, int]]) -> np.ndarray:
        """Scatter a genome (``name -> {mask -> multiplicity}``) into a dense
        ``[instruction, 2^|P|]`` multiplicity matrix."""
        size = 1 << self.num_ports
        matrix = np.zeros((len(self.instruction_names), size), dtype=np.float64)
        for name, uops in genome.items():
            row = self._index.get(name)
            if row is None:
                continue  # genomes may cover more instructions than the universe
            for mask, mult in uops.items():
                if mask <= 0 or mask >= size:
                    raise MappingError(f"mask {mask:#x} invalid for {self.num_ports} ports")
                matrix[row, mask] += float(mult)
        return matrix

    def _validate_covers(self, matrix: np.ndarray) -> None:
        # Every instruction used by some experiment must have at least one µop.
        used = self._counts.sum(axis=0) > 0
        has_uop = matrix.sum(axis=1) > 0
        missing = used & ~has_uop
        if missing.any():
            names = [self.instruction_names[i] for i in np.nonzero(missing)[0]]
            raise MappingError(f"instructions without µops: {names}")

    def throughputs_from_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Predicted throughput per experiment for a µop matrix."""
        self._validate_covers(matrix)
        masses = self._counts @ matrix  # [experiment, mask]
        zeta_transform(masses, self.num_ports)
        np.divide(masses, self._popcounts, out=masses)
        return masses.max(axis=1)

    def throughputs_from_matrices(self, matrices: np.ndarray) -> np.ndarray:
        """Predicted throughputs for a stack of µop matrices.

        ``matrices`` has shape ``[population, instruction, 2^|P|]``; the
        result has shape ``[population, experiment]``.  This is the hot path
        of the evolutionary algorithm.
        """
        if matrices.ndim != 3:
            raise MappingError("expected a [population, instruction, mask] array")
        masses = np.einsum("ei,piu->peu", self._counts, matrices, optimize=True)
        zeta_transform(masses, self.num_ports)
        np.divide(masses, self._popcounts, out=masses)
        return masses.max(axis=2)

    # -- the packed population path (the EA hot loop) ------------------------

    def packed_workspace(self, capacity: int) -> PackedWorkspace:
        """Allocate reusable evaluation buffers for ``capacity`` genomes."""
        return PackedWorkspace(
            capacity, len(self.instruction_names), self.num_experiments, self.num_ports
        )

    def _check_packed(self, packed: "PackedPopulation") -> None:
        if packed.names != self.instruction_names:
            raise MappingError(
                "packed population instructions do not match this evaluator's "
                "instruction universe"
            )
        if len(packed) and int(packed.masks.max()) >= (1 << self.num_ports):
            raise MappingError(
                f"packed population holds masks invalid for {self.num_ports} ports"
            )

    def _scatter_packed(
        self, workspace: PackedWorkspace, masks: np.ndarray, mults: np.ndarray
    ) -> np.ndarray:
        """Scatter a chunk of packed genomes into the dense µop workspace.

        One vectorized scatter-add per µop-slot axis, no Python per-genome
        loops.  Within one slot the targets ``(genome, instruction, mask)``
        are all distinct — every ``(genome, instruction)`` pair appears
        exactly once — so the buffered fancy-index ``+=`` is exact (equal to
        ``np.add.at``, which exists for the duplicate-index case, at a
        fraction of its cost).  Unused slots carry mask 0 *and* multiplicity
        0, so they add zero to the empty-set column, which therefore stays
        zero — exactly as in :meth:`uop_matrix`.
        """
        chunk = masks.shape[0]
        target = workspace.uops[:chunk]
        target[:] = 0.0
        genome_index = workspace.genome_index[:chunk]
        instruction_index = workspace.instruction_index
        for slot in range(masks.shape[2]):
            target[genome_index, instruction_index, masks[:, :, slot]] += mults[
                :, :, slot
            ]
        return target

    def throughputs_from_packed(
        self,
        packed: "PackedPopulation",
        workspace: PackedWorkspace | None = None,
        engine: str = "auto",
    ) -> np.ndarray:
        """Predicted throughputs for a whole packed population.

        Returns a ``[population, experiment]`` array equal (bit for bit, for
        the numpy engine) to stacking :meth:`uop_matrix` over the unpacked
        genomes and calling :meth:`throughputs_from_matrices` — without the
        per-genome Python scatter that makes the dict path the EA's wall.

        ``workspace`` holds the preallocated buffers (created on the fly
        when omitted); populations beyond its capacity are processed in
        chunks.  ``engine`` selects the kernel: ``"numpy"`` (the bit-exact
        reference), ``"numba"`` (requires the optional dependency; same
        results within floating-point reassociation), or ``"auto"`` (numba
        when available, else numpy).
        """
        self._check_packed(packed)
        population = len(packed)
        if engine == "auto":
            engine = "numba" if HAVE_NUMBA else "numpy"
        if engine == "numba":
            if not HAVE_NUMBA:
                raise MappingError("numba engine requested but numba is not installed")
            out = np.empty((population, self.num_experiments), dtype=np.float64)
            _numba_kernel()(
                self._counts,
                packed.masks,
                packed.mults,
                self.num_ports,
                self._popcounts,
                out,
            )
            return out
        if engine != "numpy":
            raise MappingError(f"unknown packed evaluation engine {engine!r}")

        if workspace is None:
            workspace = self.packed_workspace(min(population, 64))
        out = np.empty((population, self.num_experiments), dtype=np.float64)
        for start in range(0, population, workspace.capacity):
            chunk = min(workspace.capacity, population - start)
            stop = start + chunk
            uops = self._scatter_packed(
                workspace, packed.masks[start:stop], packed.mults[start:stop]
            )
            masses = workspace.masses[:chunk]
            np.einsum("ei,piu->peu", self._counts, uops, out=masses, optimize=True)
            zeta_transform(masses, self.num_ports)
            np.divide(masses, self._popcounts, out=masses)
            masses.max(axis=2, out=out[start:stop])
        return out

    def fixed_mapping_evaluator(
        self, mapping: ThreeLevelMapping
    ) -> "FixedMappingEvaluator":
        """A :class:`FixedMappingEvaluator` over this evaluator's instruction
        universe — the batch-entry API for callers (like the serving layer)
        that hold the mapping fixed and stream experiments through it."""
        return FixedMappingEvaluator(mapping, self.instruction_names)

    def throughputs(
        self, mapping: ThreeLevelMapping | Mapping[str, Mapping[int, int]]
    ) -> np.ndarray:
        """Predicted throughput per experiment for a mapping or raw genome."""
        if isinstance(mapping, ThreeLevelMapping):
            genome = {name: uops for name, uops in mapping.items()}
        else:
            genome = mapping
        return self.throughputs_from_matrix(self.uop_matrix(genome))

    def davg(
        self, mapping: ThreeLevelMapping | Mapping[str, Mapping[int, int]]
    ) -> float:
        """Average relative prediction error ``D_avg`` (Section 4.4)."""
        if self.measured is None:
            raise ExperimentError("this evaluator has no measured throughputs")
        predicted = self.throughputs(mapping)
        return float(np.mean(np.abs(predicted - self.measured) * self._inv_measured))

    def davg_from_throughputs(self, predicted: np.ndarray) -> np.ndarray:
        """``D_avg`` for precomputed prediction rows (vectorized over a
        leading population axis if present)."""
        if self.measured is None:
            raise ExperimentError("this evaluator has no measured throughputs")
        return np.mean(np.abs(predicted - self.measured) * self._inv_measured, axis=-1)


class SequenceWorkspace:
    """Preallocated buffers for :class:`FixedMappingEvaluator` batches.

    Owns the counts buffer (``[capacity, instruction]``) and the mass buffer
    (``[capacity, 2^|P|]``).  One workspace per served mapping is allocated
    once and reused for every prediction batch; batches larger than
    ``capacity`` are processed in capacity-sized chunks through the same
    buffers.
    """

    __slots__ = ("capacity", "counts", "masses")

    def __init__(self, capacity: int, num_instructions: int, num_ports: int):
        if capacity < 1:
            raise MappingError("workspace capacity must be positive")
        self.capacity = capacity
        self.counts = np.zeros((capacity, num_instructions), dtype=np.float64)
        self.masses = np.empty((capacity, 1 << num_ports), dtype=np.float64)


class FixedMappingEvaluator:
    """Evaluates batches of experiments against one fixed mapping.

    The transpose of :class:`BatchedThroughputEvaluator`: there the
    experiment set is fixed at construction and candidate mappings stream
    through; here the *mapping* is fixed — its µop matrix is scattered once —
    and batches of instruction sequences stream through.  This is the hot
    path of the prediction serving layer (:mod:`repro.serving`).

    Bit-identity contract
    ---------------------
    Each batch entry is computed with exactly the arithmetic a direct
    single-experiment :meth:`BatchedThroughputEvaluator.throughputs` call
    performs: the mass product is one ``[1, instruction] @ [instruction,
    2^|P|]`` matmul per entry (BLAS matmul results are *not* stable across
    batch widths, so a whole-batch matmul would make a prediction depend on
    which other sequences happened to share its batch), and the zeta
    transform / popcount divide / max stages — whose per-row results are
    batch-independent by construction — run vectorized over the batch.
    Consequently a prediction for a sequence is one specific float, no
    matter how it was batched or cached; ``tests/test_serving_equivalence.py``
    pins this.

    Parameters
    ----------
    mapping:
        The three-level mapping to predict with.
    instruction_names:
        The instruction universe in a fixed order (defaults to the mapping's
        own sorted instruction tuple).  Every name must be covered by the
        mapping, and every experiment must be supported on these names.
    """

    def __init__(
        self,
        mapping: ThreeLevelMapping,
        instruction_names: Sequence[str] | None = None,
    ):
        self.mapping = mapping
        self.num_ports = mapping.ports.num_ports
        if instruction_names is None:
            instruction_names = mapping.instructions
        self.instruction_names = tuple(instruction_names)
        self._index = {name: i for i, name in enumerate(self.instruction_names)}
        if len(self._index) != len(self.instruction_names):
            raise MappingError("duplicate instruction names")
        missing = [name for name in self.instruction_names if name not in mapping]
        if missing:
            raise MappingError(f"instructions not covered by the mapping: {missing}")

        # The mapping's µop matrix, scattered once (each (row, mask) pair is
        # touched at most once, so the accumulation order is irrelevant).
        size = 1 << self.num_ports
        matrix = np.zeros((len(self.instruction_names), size), dtype=np.float64)
        for name, row in self._index.items():
            for mask, mult in mapping.uops_of(name).items():
                matrix[row, mask] += float(mult)
        self._matrix = matrix
        self._popcounts = popcounts(self.num_ports).copy()
        self._popcounts[0] = np.inf  # the empty set never wins the max

    @property
    def num_instructions(self) -> int:
        return len(self.instruction_names)

    def workspace(self, capacity: int) -> SequenceWorkspace:
        """Allocate reusable batch buffers for up to ``capacity`` sequences."""
        return SequenceWorkspace(capacity, self.num_instructions, self.num_ports)

    def missing_instructions(self, experiment: Experiment) -> list[str]:
        """Names the experiment uses that this evaluator does not cover.

        Lets callers (the serving protocol layer) reject an unsupported
        sequence up front with a precise error instead of failing an entire
        evaluation batch.
        """
        return [name for name, _ in experiment if name not in self._index]

    def _fill_counts(self, experiments: Sequence[Experiment], counts: np.ndarray) -> None:
        counts[: len(experiments)] = 0.0
        for row, experiment in enumerate(experiments):
            for name, count in experiment:
                col = self._index.get(name)
                if col is None:
                    raise ExperimentError(
                        f"experiment uses {name!r}, not in the instruction universe"
                    )
                counts[row, col] = float(count)

    def throughputs(
        self,
        experiments: Sequence[Experiment],
        workspace: SequenceWorkspace | None = None,
    ) -> np.ndarray:
        """Predicted throughput for each experiment, as a ``[batch]`` array.

        ``workspace`` holds the preallocated buffers (created on the fly
        when omitted); batches beyond its capacity are processed in chunks.
        """
        batch = len(experiments)
        if workspace is None:
            workspace = self.workspace(max(1, min(batch, 256)))
        out = np.empty(batch, dtype=np.float64)
        for start in range(0, batch, workspace.capacity):
            part = experiments[start : start + workspace.capacity]
            chunk = len(part)
            counts = workspace.counts[:chunk]
            masses = workspace.masses[:chunk]
            self._fill_counts(part, counts)
            for row in range(chunk):
                # One [1, I] @ [I, 2^|P|] product per entry: the same shapes
                # (hence the same BLAS kernel and the same bits) as a direct
                # single-experiment BatchedThroughputEvaluator call.
                np.matmul(counts[row : row + 1], self._matrix, out=masses[row : row + 1])
            zeta_transform(masses, self.num_ports)
            np.divide(masses, self._popcounts, out=masses)
            masses.max(axis=1, out=out[start : start + chunk])
        return out

    def throughput(self, experiment: Experiment) -> float:
        """Predicted throughput of a single experiment."""
        return float(self.throughputs([experiment])[0])

    def __repr__(self) -> str:
        return (
            f"FixedMappingEvaluator({self.num_instructions} instructions, "
            f"{self.num_ports} ports)"
        )
