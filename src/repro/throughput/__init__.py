"""Analytical throughput models: LP (Definition 3) and bottleneck (Eq. 1)."""

from repro.throughput.batched import (
    HAVE_NUMBA,
    BatchedThroughputEvaluator,
    FixedMappingEvaluator,
    PackedWorkspace,
    SequenceWorkspace,
)
from repro.throughput.bottleneck import (
    bottleneck_throughput,
    bottleneck_throughput_dense,
    bottleneck_throughput_reference,
    bottleneck_throughput_unions,
)
from repro.throughput.lp import LPProblem, build_lp, lp_throughput, lp_throughput_masses
from repro.throughput.predictor import (
    MappingPredictor,
    ThroughputPredictor,
    predict_many,
)

__all__ = [
    "bottleneck_throughput",
    "bottleneck_throughput_dense",
    "bottleneck_throughput_reference",
    "bottleneck_throughput_unions",
    "lp_throughput",
    "lp_throughput_masses",
    "build_lp",
    "LPProblem",
    "BatchedThroughputEvaluator",
    "FixedMappingEvaluator",
    "PackedWorkspace",
    "SequenceWorkspace",
    "HAVE_NUMBA",
    "MappingPredictor",
    "ThroughputPredictor",
    "predict_many",
]
