"""Linear-programming throughput model (Definition 3 and Section 3.2).

The throughput of an experiment under a port mapping is the optimum of::

    minimize t
    s.t.  Σ_k x_{u,k}  = mass(u)   for every µop u          (A)
          Σ_u x_{u,k} ≤ t          for every port k          (B)
          x_{u,k} ≥ 0              for (u,k) ∈ M              (C)
          x_{u,k} = 0              for (u,k) ∉ M              (D)

Constraint (D) is enforced structurally: variables only exist for edges in
``M``.  The LP is built sparsely and solved with scipy's HiGHS backend.

This module is the reference implementation the bottleneck simulation
algorithm (:mod:`repro.throughput.bottleneck`) is validated against, and the
"LP solver" side of the paper's Figure 8 performance comparison.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.core.errors import ExperimentError, MappingError, SolverError
from repro.core.experiment import Experiment
from repro.core.mapping import ThreeLevelMapping, TwoLevelMapping
from repro.core.ports import indices_from_mask

__all__ = ["lp_throughput", "lp_throughput_masses", "build_lp", "LPProblem"]


class LPProblem:
    """A constructed (not yet solved) throughput LP.

    Exposed separately so benchmarks can time model construction and solving
    together, mirroring the paper's measurement of "model construction via
    the Gurobi C++ API as well as the actual solving".
    """

    def __init__(
        self,
        cost: np.ndarray,
        a_eq: csr_matrix,
        b_eq: np.ndarray,
        a_ub: csr_matrix,
        b_ub: np.ndarray,
    ):
        self.cost = cost
        self.a_eq = a_eq
        self.b_eq = b_eq
        self.a_ub = a_ub
        self.b_ub = b_ub

    def solve(self) -> float:
        """Solve the LP and return the optimal throughput ``t``."""
        result = linprog(
            c=self.cost,
            A_eq=self.a_eq,
            b_eq=self.b_eq,
            A_ub=self.a_ub,
            b_ub=self.b_ub,
            bounds=(0, None),
            method="highs",
        )
        if not result.success:
            raise SolverError(f"LP solver failed: {result.message}")
        return float(result.fun)


def build_lp(masses: Mapping[int, float], num_ports: int) -> LPProblem:
    """Construct the throughput LP for a µop-mass dictionary.

    Variables are ordered ``[x_{u0,k0}, x_{u0,k1}, ..., t]`` with one ``x``
    per (µop, allowed port) edge and the makespan ``t`` last.
    """
    if num_ports <= 0:
        raise MappingError(f"number of ports must be positive, got {num_ports}")
    if not masses:
        raise ExperimentError("cannot build an LP for an empty experiment")
    full = (1 << num_ports) - 1
    uops = sorted(masses.keys())
    for mask in uops:
        if mask <= 0 or mask & ~full:
            raise MappingError(f"µop mask {mask:#x} invalid for {num_ports} ports")

    edges: list[tuple[int, int]] = []  # (µop row, port index) per variable
    for row, mask in enumerate(uops):
        for port in indices_from_mask(mask):
            edges.append((row, port))
    num_x = len(edges)
    t_index = num_x

    cost = np.zeros(num_x + 1)
    cost[t_index] = 1.0

    # (A): one equality row per µop.
    eq_rows = [row for (row, _port) in edges]
    eq_cols = list(range(num_x))
    eq_data = [1.0] * num_x
    a_eq = csr_matrix(
        (eq_data, (eq_rows, eq_cols)), shape=(len(uops), num_x + 1)
    )
    b_eq = np.array([float(masses[mask]) for mask in uops])

    # (B): one inequality row per port:  Σ_u x_{u,k} - t ≤ 0.
    ub_rows = [port for (_row, port) in edges] + list(range(num_ports))
    ub_cols = list(range(num_x)) + [t_index] * num_ports
    ub_data = [1.0] * num_x + [-1.0] * num_ports
    a_ub = csr_matrix(
        (ub_data, (ub_rows, ub_cols)), shape=(num_ports, num_x + 1)
    )
    b_ub = np.zeros(num_ports)

    return LPProblem(cost, a_eq, b_eq, a_ub, b_ub)


def lp_throughput_masses(masses: Mapping[int, float], num_ports: int) -> float:
    """Throughput of a µop-mass dictionary by building and solving the LP."""
    return build_lp(masses, num_ports).solve()


def lp_throughput(
    mapping: TwoLevelMapping | ThreeLevelMapping, experiment: Experiment
) -> float:
    """Throughput of ``experiment`` under ``mapping`` via the LP model.

    Three-level mappings are reduced to µop masses per Section 3.2 first.
    """
    masses = mapping.uop_masses(experiment)
    return lp_throughput_masses(masses, mapping.ports.num_ports)
