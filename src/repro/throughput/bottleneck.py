"""The bottleneck simulation algorithm (Section 4.5, Equation 1).

For a two-level mapping ``m`` and experiment ``e`` the throughput is::

    t*_m(e) = max_{Q ⊆ P}  Σ{ e(i) | Ports(m, i) ⊆ Q }  /  |Q|

i.e. the most congested *set* of bottleneck ports determines the throughput.
Three-level mappings reduce to this via the µop-multiset construction of
Section 3.2 (``uop_masses``), so every function here takes a ``mask -> mass``
dictionary.

Three implementations with identical results:

* :func:`bottleneck_throughput_reference` — the literal double loop over all
  ``2^|P|`` subsets with a per-mask subset test.  Θ(2^|P|·k) for ``k``
  distinct masks; exists to make tests and the correctness argument obvious.
* :func:`bottleneck_throughput_dense` — the same enumeration, expressed as a
  superset-sum (zeta transform) over the dense ``2^|P|`` mask space using
  numpy.  Θ(|P|·2^|P|) with small constants; this is the vectorized
  algorithm whose scaling the paper's Figure 8 measures.
* :func:`bottleneck_throughput_unions` — exploits that an optimal bottleneck
  set can be assumed to be a *union of occurring µop masks* (dropping a port
  that completes no occurring mask only shrinks ``|Q|`` without losing
  mass).  Θ(2^k·k) for ``k`` distinct masks, independent of ``|P|``; the
  fastest choice for the short experiments PMEvo uses.

:func:`bottleneck_throughput` picks between the dense and union variants
based on problem size.
"""

from __future__ import annotations

import functools
from collections.abc import Mapping

import numpy as np

from repro.core.errors import ExperimentError, MappingError
from repro.core.ports import iter_nonempty_subsets, mask_size

__all__ = [
    "bottleneck_throughput",
    "bottleneck_throughput_reference",
    "bottleneck_throughput_dense",
    "bottleneck_throughput_unions",
    "dense_mass_vector",
    "zeta_transform",
    "popcounts",
]

# Cache keyed by the number of ports; these arrays are tiny for realistic
# port counts and shared by every dense evaluation.
_POPCOUNT_CACHE: dict[int, np.ndarray] = {}


def _check(masses: Mapping[int, float], num_ports: int) -> None:
    if num_ports <= 0:
        raise MappingError(f"number of ports must be positive, got {num_ports}")
    if not masses:
        raise ExperimentError("cannot compute throughput of an empty experiment")
    full = (1 << num_ports) - 1
    for mask, mass in masses.items():
        if mask <= 0 or mask & ~full:
            raise MappingError(f"µop mask {mask:#x} invalid for {num_ports} ports")
        if mass < 0:
            raise ExperimentError(f"µop mass must be non-negative, got {mass}")


def popcounts(num_ports: int) -> np.ndarray:
    """Popcount of every mask in ``[0, 2^num_ports)`` (cached)."""
    table = _POPCOUNT_CACHE.get(num_ports)
    if table is None:
        size = 1 << num_ports
        masks = np.arange(size, dtype=np.uint32)
        table = np.zeros(size, dtype=np.float64)
        for k in range(num_ports):
            table += (masks >> k) & 1
        _POPCOUNT_CACHE[num_ports] = table
    return table


@functools.lru_cache(maxsize=None)
def _zeta_indices(num_ports: int) -> tuple[tuple[np.ndarray, np.ndarray], ...]:
    """Per-bit (target, source) index pairs for the in-place zeta transform.

    Cached per ``num_ports`` so the index arrays are built once per port
    count, not on every :func:`zeta_transform` call in the evaluation hot
    loop.
    """
    size = 1 << num_ports
    masks = np.arange(size, dtype=np.intp)
    pairs = []
    for k in range(num_ports):
        bit = 1 << k
        hi = masks[(masks & bit) != 0]
        pairs.append((hi, hi ^ bit))
    return tuple(pairs)


def zeta_transform(values: np.ndarray, num_ports: int) -> np.ndarray:
    """In-place subset-sum over the last axis: ``out[Q] = Σ_{m ⊆ Q} in[m]``.

    ``values`` must have last-axis length ``2^num_ports``; it is modified in
    place and also returned.

    For bit ``k`` the update adds every mask without the bit into its
    partner with the bit.  Those partners form contiguous blocks along the
    last axis, so the preferred implementation views the axis as
    ``[..., block, 2, 2^k]`` and adds the low half-block into the high one —
    pure strided slicing, no gather/scatter index traffic.  The view is the
    same additions in the same per-bit order as the fancy-indexed form, so
    results are bit-for-bit identical; layouts where the reshape cannot be a
    view fall back to the cached index pairs.
    """
    if values.shape[-1] != (1 << num_ports):
        raise MappingError(
            f"last axis must have length {1 << num_ports}, got {values.shape[-1]}"
        )
    head = values.shape[:-1]
    for bit, (hi, lo) in enumerate(_zeta_indices(num_ports)):
        paired = values.view()
        try:
            # In-place shape assignment never copies: it raises instead
            # when this layout cannot view the last axis as blocks.
            paired.shape = head + (-1, 2, 1 << bit)
        except AttributeError:
            values[..., hi] += values[..., lo]
            continue
        paired[..., 1, :] += paired[..., 0, :]
    return values


def dense_mass_vector(masses: Mapping[int, float], num_ports: int) -> np.ndarray:
    """Scatter a ``mask -> mass`` dict into a dense ``2^num_ports`` vector."""
    vector = np.zeros(1 << num_ports, dtype=np.float64)
    for mask, mass in masses.items():
        vector[mask] += mass
    return vector


def bottleneck_throughput_reference(
    masses: Mapping[int, float], num_ports: int
) -> float:
    """Literal evaluation of Equation 1 — every subset, every mask.

    Intended for tests and documentation; use the other variants for speed.
    """
    _check(masses, num_ports)
    full = (1 << num_ports) - 1
    best = 0.0
    for q in iter_nonempty_subsets(full):
        total = sum(mass for mask, mass in masses.items() if mask & ~q == 0)
        best = max(best, total / mask_size(q))
    return best


def bottleneck_throughput_dense(masses: Mapping[int, float], num_ports: int) -> float:
    """Equation 1 via a dense superset-sum (vectorized subset enumeration)."""
    _check(masses, num_ports)
    sums = zeta_transform(dense_mass_vector(masses, num_ports), num_ports)
    counts = popcounts(num_ports)
    # Index 0 is the empty set: zero mass (all µop masks are non-empty), so
    # excluding it by starting at 1 is safe and avoids a 0/0.
    return float(np.max(sums[1:] / counts[1:]))


def bottleneck_throughput_unions(masses: Mapping[int, float], num_ports: int) -> float:
    """Equation 1 restricted to unions of occurring µop masks.

    An optimal bottleneck set ``Q*`` only needs ports that appear in some
    µop mask counted into it — removing any other port keeps the numerator
    and shrinks the denominator.  Hence it suffices to maximize over the
    union-closure of the occurring masks, which for the short experiments
    PMEvo generates is far smaller than ``2^|P|``.
    """
    _check(masses, num_ports)
    items = [(mask, mass) for mask, mass in masses.items() if mass > 0.0]
    if not items:
        raise ExperimentError("experiment carries no mass")
    distinct = sorted({mask for mask, _ in items})
    # Enumerate unions of subsets of the distinct masks, deduplicated.
    unions: set[int] = set()
    frontier = [0]
    for mask in distinct:
        frontier += [u | mask for u in frontier]
        frontier = list(set(frontier))
    unions = {u for u in frontier if u}
    best = 0.0
    for q in unions:
        total = sum(mass for mask, mass in items if mask & ~q == 0)
        best = max(best, total / mask_size(q))
    return best


# Above roughly this many ports the dense 2^|P| tables stop being cheap and
# the union-closure variant (independent of |P|) wins for sparse experiments.
_DENSE_PORT_LIMIT = 14


def bottleneck_throughput(masses: Mapping[int, float], num_ports: int) -> float:
    """Compute Equation 1, picking a suitable implementation.

    Uses the dense vectorized enumeration for realistic port counts and the
    union-closure variant for very wide machines where ``2^|P|`` tables
    would dominate.
    """
    distinct = len(masses)
    if num_ports <= _DENSE_PORT_LIMIT and (1 << num_ports) <= (1 << distinct):
        return bottleneck_throughput_dense(masses, num_ports)
    return bottleneck_throughput_unions(masses, num_ports)
