"""Throughput predictor interface.

Everything that can predict a throughput (cycles per steady-state iteration)
for an experiment — inferred port mappings, ground-truth oracles, the
IACA/llvm-mca/Ithemal-style baselines — implements :class:`ThroughputPredictor`
so the evaluation harness (Tables 3/4, Figures 6/7) can treat them uniformly.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.experiment import Experiment
from repro.core.mapping import ThreeLevelMapping, TwoLevelMapping
from repro.throughput.bottleneck import bottleneck_throughput
from repro.throughput.lp import lp_throughput_masses

__all__ = ["ThroughputPredictor", "MappingPredictor", "predict_many"]


@runtime_checkable
class ThroughputPredictor(Protocol):
    """Anything that maps an experiment to a predicted throughput."""

    name: str

    def predict(self, experiment: Experiment) -> float:
        """Predicted throughput in cycles per experiment iteration."""
        ...


def predict_many(
    predictor: ThroughputPredictor, experiments: Iterable[Experiment]
) -> np.ndarray:
    """Vector of predictions for a sequence of experiments."""
    return np.array([predictor.predict(e) for e in experiments], dtype=np.float64)


class MappingPredictor:
    """Predicts throughput from a port mapping via the analytical model.

    Parameters
    ----------
    mapping:
        A two- or three-level port mapping.
    name:
        Display name used in reports (defaults to ``"mapping"``).
    backend:
        ``"bottleneck"`` (default) or ``"lp"`` — which solver evaluates the
        analytical model.  Both compute the same optimum.
    """

    def __init__(
        self,
        mapping: TwoLevelMapping | ThreeLevelMapping,
        name: str = "mapping",
        backend: str = "bottleneck",
    ):
        if backend not in ("bottleneck", "lp"):
            raise ValueError(f"unknown backend {backend!r}")
        self.mapping = mapping
        self.name = name
        self.backend = backend

    def predict(self, experiment: Experiment) -> float:
        masses = self.mapping.uop_masses(experiment)
        num_ports = self.mapping.ports.num_ports
        if self.backend == "lp":
            return lp_throughput_masses(masses, num_ports)
        return bottleneck_throughput(masses, num_ports)

    def __repr__(self) -> str:
        return f"MappingPredictor({self.name!r}, backend={self.backend!r})"
