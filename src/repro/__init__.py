"""repro — a reproduction of PMEvo (Ritter & Hack, PLDI 2020).

PMEvo infers the port mapping of an out-of-order processor from throughput
measurements of short, dependency-free instruction sequences, using an
evolutionary algorithm whose fitness function is an analytical throughput
model evaluated by a fast bottleneck simulation algorithm.

Quick tour of the public API:

* :mod:`repro.core` — ports, µops, two-/three-level port mappings,
  experiments, instruction set descriptions.
* :mod:`repro.throughput` — the analytical throughput model: LP formulation
  and the bottleneck simulation algorithm, plus batched evaluation.
* :mod:`repro.machine` — cycle-level out-of-order processor simulator with
  SKL-/ZEN-/A72-like presets; stands in for the paper's physical machines.
* :mod:`repro.codegen` — dependency-avoiding operand allocation and loop
  unrolling for benchmark kernels.
* :mod:`repro.pmevo` — the inference pipeline: experiment generation,
  congruence filtering, evolutionary optimization, local search.
* :mod:`repro.baselines` — uops.info-, IACA-, llvm-mca- and Ithemal-style
  comparison predictors.
* :mod:`repro.analysis` — accuracy metrics (MAPE/PCC/SCC), heat maps,
  report tables.
"""

from repro.core import (
    ISA,
    Experiment,
    ExperimentSet,
    InstructionForm,
    MeasuredExperiment,
    OperandKind,
    OperandSpec,
    PortSpace,
    ReproError,
    ThreeLevelMapping,
    TwoLevelMapping,
)
from repro.throughput import (
    BatchedThroughputEvaluator,
    MappingPredictor,
    bottleneck_throughput,
    lp_throughput,
)

__version__ = "1.0.0"

__all__ = [
    "ISA",
    "Experiment",
    "ExperimentSet",
    "InstructionForm",
    "MeasuredExperiment",
    "OperandKind",
    "OperandSpec",
    "PortSpace",
    "ReproError",
    "ThreeLevelMapping",
    "TwoLevelMapping",
    "BatchedThroughputEvaluator",
    "MappingPredictor",
    "bottleneck_throughput",
    "lp_throughput",
    "__version__",
]
