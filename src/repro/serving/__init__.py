"""Prediction serving: an async HTTP/JSON API over inferred port mappings.

Inference produces a mapping once; downstream consumers (compilers,
llvm-mca-style analyzers, the baselines in ``src/repro/baselines/``) want
cheap per-basic-block throughput queries against it.  This package is that
serving path:

* :mod:`repro.serving.registry` — loads mapping artifacts under stable ids,
  precomputing each mapping's evaluation state; hot-reloadable.
* :mod:`repro.serving.cache` — a bounded LRU of per-sequence predictions.
* :mod:`repro.serving.protocol` — request validation, sequence
  canonicalization, structured 4xx errors.
* :mod:`repro.serving.server` — the stdlib-asyncio HTTP server with
  single-flight miss coalescing and batched evaluation.

Run it with ``repro-pmevo serve --mapping skl.json``; see
``docs/serving.md``.
"""

from repro.serving.cache import PredictionCache
from repro.serving.protocol import ProtocolError, canonical_sequence, parse_predict_request
from repro.serving.registry import (
    MappingRegistry,
    ServedMapping,
    load_mapping_artifact,
    parse_mapping_spec,
)
from repro.serving.server import PredictionServer, parse_bind

__all__ = [
    "MappingRegistry",
    "PredictionCache",
    "PredictionServer",
    "ProtocolError",
    "ServedMapping",
    "canonical_sequence",
    "load_mapping_artifact",
    "parse_bind",
    "parse_mapping_spec",
    "parse_predict_request",
]
