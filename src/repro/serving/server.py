"""The asyncio prediction server: HTTP/JSON over a mapping registry.

``repro-pmevo serve`` wraps this module; ``docs/serving.md`` is the operator
and API reference.  Everything is stdlib — ``asyncio.start_server`` plus a
deliberately small HTTP/1.1 implementation (request line, headers,
``Content-Length`` bodies, keep-alive) — so serving adds no dependencies.

Hot-path design
---------------
A ``POST /v1/predict`` batch is answered from three tiers:

1. **Cache hits** — a bounded LRU keyed by ``(mapping id, canonical
   sequence)`` (:mod:`repro.serving.cache`); hits never touch numpy.
2. **Coalesced misses** — sequences some concurrent request is already
   computing; this request awaits the in-flight future instead of
   recomputing (single-flight per key).
3. **Fresh misses** — deduplicated and evaluated as *one*
   :class:`repro.throughput.batched.FixedMappingEvaluator` batch through the
   mapping's reusable :class:`~repro.throughput.batched.SequenceWorkspace`,
   on a single-threaded executor so the event loop keeps accepting
   connections and serving cached hits while numpy runs.  Per-request cost
   is therefore amortized over batch width, not paid per sequence.

Because the fixed-mapping kernel is bit-identical regardless of batch
composition, the three tiers return the same floats for the same sequence —
cold, warm, and coalesced answers are indistinguishable
(``tests/test_serving_equivalence.py``).

Error and shutdown discipline
-----------------------------
Every client error is a structured 4xx JSON body (never a 500, never a hung
connection — malformed framing gets a 400 and a close; idle and read
timeouts bound every await).  On SIGTERM/SIGINT the server stops accepting,
drains requests already in flight — a request counts from its first byte on
the wire, so one whose body is still arriving completes too (bounded by the
grace period) — then closes remaining idle connections and exits.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor

from repro.core.errors import ReproError, ServingError
from repro.core.experiment import Experiment
from repro.serving.cache import PredictionCache
from repro.serving.protocol import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_SEQUENCE,
    ProtocolError,
    error_body,
    parse_predict_request,
)
from repro.serving.registry import MappingRegistry

__all__ = ["PredictionServer", "parse_bind"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
}

#: Bounds on HTTP framing, beyond which a connection is summarily rejected.
_MAX_REQUEST_LINE = 8 * 1024
_MAX_HEADER_BYTES = 32 * 1024


def parse_bind(text: str) -> tuple[str, int]:
    """Parse a ``--bind`` address: ``HOST:PORT`` or ``:PORT``.

    An empty host means loopback; port 0 asks the kernel for an ephemeral
    port (the bound address is printed at startup for clients to parse).
    """
    host, sep, port_text = text.rpartition(":")
    if not sep:
        raise ServingError(f"bind address must be HOST:PORT or :PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ServingError(f"invalid port in bind address {text!r}") from None
    if not 0 <= port <= 65535:
        raise ServingError(f"port out of range in bind address {text!r}")
    return host or "127.0.0.1", port


class _Stats:
    """Operational counters behind ``GET /v1/stats``."""

    def __init__(self, latency_window: int = 2048):
        self.started_at = time.monotonic()
        self.requests = 0
        self.predict_requests = 0
        self.error_responses = 0
        self.predictions = 0
        self.coalesced = 0
        self.batches = 0
        self.batch_entries = 0
        self.max_batch = 0
        self.latencies = deque(maxlen=latency_window)

    def record_batch(self, size: int) -> None:
        self.batches += 1
        self.batch_entries += size
        self.max_batch = max(self.max_batch, size)

    @staticmethod
    def _percentile(ordered: list[float], q: float) -> float:
        index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[index]

    def describe(self, cache: PredictionCache, registry: MappingRegistry) -> dict:
        ordered = sorted(self.latencies)
        latency = {"count": len(ordered)}
        if ordered:
            latency["p50_ms"] = round(1000.0 * self._percentile(ordered, 0.50), 3)
            latency["p99_ms"] = round(1000.0 * self._percentile(ordered, 0.99), 3)
        return {
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "requests": {
                "total": self.requests,
                "predict": self.predict_requests,
                "errors": self.error_responses,
            },
            "predictions": {"total": self.predictions, "coalesced": self.coalesced},
            "cache": cache.stats(),
            "batches": {
                "count": self.batches,
                "entries": self.batch_entries,
                "max": self.max_batch,
                "mean": (self.batch_entries / self.batches) if self.batches else 0.0,
            },
            "latency": latency,
            "mappings": registry.describe(),
        }


class PredictionServer:
    """Serves throughput predictions for a :class:`MappingRegistry`.

    Parameters
    ----------
    registry:
        The mappings to answer for.
    cache_size:
        LRU capacity in predictions (0 disables caching).
    max_batch / max_sequence:
        Per-request limits; violations are structured 413 errors.
    max_body_bytes:
        Request body ceiling (413 beyond it).
    idle_timeout:
        Seconds a keep-alive connection may sit between requests (also the
        per-read bound, so half-sent requests cannot hang the server).
    grace:
        Seconds the shutdown path waits for received requests to finish.
    """

    def __init__(
        self,
        registry: MappingRegistry,
        *,
        cache_size: int = 4096,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_sequence: int = DEFAULT_MAX_SEQUENCE,
        max_body_bytes: int = 1024 * 1024,
        idle_timeout: float = 30.0,
        grace: float = 10.0,
    ):
        self.registry = registry
        self.cache = PredictionCache(cache_size)
        self.max_batch = max_batch
        self.max_sequence = max_sequence
        self.max_body_bytes = max_body_bytes
        self.idle_timeout = idle_timeout
        self.grace = grace
        self.stats = _Stats()
        self._inflight: dict[tuple[str, int, Experiment], asyncio.Future] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="predict-eval"
        )
        self._server: asyncio.base_events.Server | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._busy = 0
        self._drained = asyncio.Event()
        self._draining = False
        self._shutdown_requested = asyncio.Event()

    # -- request handling (transport-independent) --------------------------

    async def handle_predict(self, payload: object) -> tuple[int, dict]:
        """Answer a decoded ``/v1/predict`` payload.

        Returns ``(status, response body)``.  Public and socket-free so the
        property-test wall can drive cold/warm/coalesced paths directly.
        """
        request = parse_predict_request(
            payload, max_batch=self.max_batch, max_sequence=self.max_sequence
        )
        mapping_id = request.mapping_id
        if mapping_id is None:
            mapping_id = self.registry.default_id
            if mapping_id is None:
                raise ProtocolError(
                    400,
                    "ambiguous_mapping",
                    "several mappings are served; the request must name one "
                    f"of {sorted(self.registry.ids)} in its \"mapping\" field",
                )
        if mapping_id not in self.registry:
            raise ProtocolError(
                404,
                "unknown_mapping",
                f"unknown mapping id {mapping_id!r}; serving {sorted(self.registry.ids)}",
            )
        entry = self.registry.get(mapping_id)
        for sequence in request.sequences:
            missing = entry.evaluator.missing_instructions(sequence)
            if missing:
                raise ProtocolError(
                    400,
                    "unknown_instruction",
                    f"mapping {mapping_id!r} does not cover instruction "
                    f"{missing[0]!r}",
                )

        generation = entry.generation
        results: list[float | None] = [None] * len(request.sequences)
        cached = [False] * len(request.sequences)
        pending: list[tuple[int, asyncio.Future]] = []
        fresh: dict[Experiment, asyncio.Future] = {}
        loop = asyncio.get_running_loop()
        for i, sequence in enumerate(request.sequences):
            hit = self.cache.get(mapping_id, sequence)
            if hit is not None:
                results[i] = hit
                cached[i] = True
                continue
            key = (mapping_id, generation, sequence)
            future = self._inflight.get(key)
            if future is not None:
                # Some concurrent request is already computing this very
                # sequence: await its result instead of recomputing.
                self.stats.coalesced += 1
                pending.append((i, future))
                continue
            future = fresh.get(sequence)
            if future is None:
                future = loop.create_future()
                self._inflight[key] = future
                fresh[sequence] = future
            pending.append((i, future))

        if fresh:
            sequences = list(fresh)
            self.stats.record_batch(len(sequences))
            try:
                values = await loop.run_in_executor(
                    self._executor,
                    entry.evaluator.throughputs,
                    sequences,
                    entry.workspace,
                )
            except BaseException as exc:
                for sequence, future in fresh.items():
                    self._inflight.pop((mapping_id, generation, sequence), None)
                    if not future.done():
                        future.set_exception(exc)
                        # This request re-raises below instead of awaiting its
                        # own futures; mark the exception retrieved so asyncio
                        # does not warn.  Coalesced waiters in other requests
                        # still receive it from their awaits.
                        future.exception()
                raise
            current = self.registry.get(mapping_id)
            for sequence, value in zip(sequences, values):
                value = float(value)
                future = fresh[sequence]
                self._inflight.pop((mapping_id, generation, sequence), None)
                future.set_result(value)
                # A hot reload may have swapped the mapping while numpy ran;
                # never let a stale generation repopulate the fresh cache.
                if current.generation == generation:
                    self.cache.put(mapping_id, sequence, value)

        for i, future in pending:
            results[i] = await future

        self.stats.predictions += len(results)
        return 200, {
            "mapping": mapping_id,
            "generation": generation,
            "throughputs": results,
            "cached": cached,
        }

    def handle_reload(self) -> tuple[int, dict]:
        """Answer ``POST /v1/reload``: re-read artifacts, invalidate caches."""
        reloaded, unchanged = self.registry.reload()
        invalidated = 0
        for mapping_id in reloaded:
            invalidated += self.cache.invalidate_mapping(mapping_id)
        return 200, {
            "reloaded": reloaded,
            "unchanged": unchanged,
            "cache_entries_invalidated": invalidated,
        }

    def handle_healthz(self) -> tuple[int, dict]:
        return 200, {
            "status": "ok",
            "mappings": sorted(self.registry.ids),
            "draining": self._draining,
        }

    def handle_stats(self) -> tuple[int, dict]:
        return 200, self.stats.describe(self.cache, self.registry)

    async def _route(self, method: str, path: str, body: bytes) -> tuple[int, dict]:
        path = path.split("?", 1)[0]
        routes = {"/healthz": "GET", "/v1/stats": "GET", "/v1/predict": "POST", "/v1/reload": "POST"}
        expected = routes.get(path)
        if expected is None:
            raise ProtocolError(404, "not_found", f"no such endpoint: {path}")
        if method != expected:
            raise ProtocolError(
                405, "method_not_allowed", f"{path} only supports {expected}"
            )
        if path == "/healthz":
            return self.handle_healthz()
        if path == "/v1/stats":
            return self.handle_stats()
        if path == "/v1/reload":
            return self.handle_reload()
        try:
            payload = json.loads(body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ProtocolError(400, "bad_json", f"request body is not JSON: {exc}") from None
        start = time.monotonic()
        self.stats.predict_requests += 1
        status, response = await self.handle_predict(payload)
        self.stats.latencies.append(time.monotonic() - start)
        return status, response

    # -- HTTP/1.1 transport -------------------------------------------------

    @staticmethod
    def _render(status: int, body: dict, *, keep_alive: bool) -> bytes:
        payload = json.dumps(body).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        return head.encode("ascii") + payload

    async def _read_request(
        self, line: bytes, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes]:
        """Parse one framed request whose first line has already arrived."""
        if len(line) > _MAX_REQUEST_LINE:
            raise ProtocolError(400, "bad_http", "request line too long")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise ProtocolError(400, "bad_http", "malformed HTTP request line")
        method, target, _version = parts
        headers: dict[str, str] = {}
        header_bytes = 0
        while True:
            line = await asyncio.wait_for(reader.readline(), self.idle_timeout)
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise ProtocolError(400, "bad_http", "connection closed inside headers")
            header_bytes += len(line)
            if header_bytes > _MAX_HEADER_BYTES:
                raise ProtocolError(400, "bad_http", "request headers too large")
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise ProtocolError(400, "bad_http", f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise ProtocolError(
                400, "bad_http", f"invalid Content-Length {length_text!r}"
            ) from None
        if length < 0:
            raise ProtocolError(400, "bad_http", "negative Content-Length")
        if length > self.max_body_bytes:
            raise ProtocolError(
                413,
                "body_too_large",
                f"request body of {length} bytes exceeds the {self.max_body_bytes} limit",
            )
        body = await asyncio.wait_for(reader.readexactly(length), self.idle_timeout)
        return method, target, headers, body

    async def _serve_one(
        self, line: bytes, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Read the rest of one request and answer it; returns keep-alive."""
        try:
            method, target, headers, body = await self._read_request(line, reader)
        except ProtocolError as exc:
            # Malformed framing: answer once, then close — a parser this
            # confused cannot safely find the next request.
            self.stats.error_responses += 1
            writer.write(
                self._render(exc.status, error_body(exc.code, exc.message), keep_alive=False)
            )
            await writer.drain()
            return False
        except (asyncio.TimeoutError, asyncio.IncompleteReadError, ConnectionError):
            return False
        self.stats.requests += 1
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        try:
            status, response = await self._route(method, target, body)
        except ProtocolError as exc:
            status, response = exc.status, error_body(exc.code, exc.message)
        except ReproError as exc:
            status, response = 500, error_body("internal", str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            print(f"serving: internal error: {exc!r}", file=sys.stderr, flush=True)
            status, response = 500, error_body("internal", "internal server error")
        if status >= 400:
            self.stats.error_responses += 1
        keep_alive = keep_alive and not self._draining
        writer.write(self._render(status, response, keep_alive=keep_alive))
        await writer.drain()
        return keep_alive

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                if self._draining:
                    break
                try:
                    line = await asyncio.wait_for(reader.readline(), self.idle_timeout)
                except (asyncio.TimeoutError, ConnectionError):
                    break
                if not line:
                    break
                # A request is in flight from its first byte on the wire:
                # shutdown drains it even if the body is still arriving.
                self._busy += 1
                try:
                    keep_alive = await self._serve_one(line, reader, writer)
                finally:
                    self._busy -= 1
                    if self._draining and self._busy == 0:
                        self._drained.set()
                if not keep_alive:
                    break
        except ConnectionError:
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    # -- lifecycle ----------------------------------------------------------

    async def start(self, host: str, port: int) -> tuple[str, int]:
        """Bind and start accepting; returns the actual (host, port)."""
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    def request_shutdown(self) -> None:
        """Signal-safe trigger for graceful shutdown."""
        self._shutdown_requested.set()

    async def shutdown(self) -> None:
        """Stop accepting, drain received requests, close connections."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Clear first: the last busy request may finish (and set the event)
        # between these two statements' scheduling otherwise.
        self._drained.clear()
        if self._busy > 0:
            try:
                await asyncio.wait_for(self._drained.wait(), self.grace)
            except asyncio.TimeoutError:
                print(
                    f"serving: grace period of {self.grace:g}s expired with "
                    f"{self._busy} request(s) still in flight",
                    file=sys.stderr,
                    flush=True,
                )
        for writer in list(self._writers):
            writer.close()
        self._executor.shutdown(wait=True)

    async def run(self, host: str, port: int) -> int:
        """Serve until SIGTERM/SIGINT; returns a process exit code.

        Prints ``serving on HOST:PORT`` (flushed) once bound, so wrappers
        and tests can parse the ephemeral port.
        """
        bound_host, bound_port = await self.start(host, port)
        print(f"serving on {bound_host}:{bound_port}", flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                pass
        await self._shutdown_requested.wait()
        print("serving: shutdown requested, draining", flush=True)
        await self.shutdown()
        print("serving: drained, bye", flush=True)
        return 0
