"""Wire protocol of the prediction server: requests, responses, errors.

The serving API is JSON over HTTP (see ``docs/serving.md`` for the full
reference).  This module is the *pure* part of that surface — parsing and
validating request payloads, canonicalizing instruction sequences, and the
structured error type — so every protocol rule is unit-testable without a
socket in sight.

Design rules:

* **Every client mistake is a structured 4xx.**  Malformed JSON, an unknown
  mapping id, an unknown instruction form, an oversized batch — each maps to
  a :class:`ProtocolError` carrying an HTTP status and a machine-readable
  ``code``, rendered as ``{"error": {"code": ..., "message": ...}}``.
  Nothing a client can send produces a 500 or a hung connection.
* **Sequences canonicalize to multisets.**  A sequence may be spelled as a
  list of instruction names (with repeats) or as a ``name -> count`` object;
  both canonicalize to the same :class:`repro.core.experiment.Experiment`
  multiset, which is the cache key — ``["a", "b", "a"]`` and ``{"a": 2,
  "b": 1}`` hit the same cache line.  (PMEvo's throughput model abstracts
  from instruction order, so the multiset view loses nothing.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import ServingError
from repro.core.experiment import Experiment

__all__ = [
    "ProtocolError",
    "PredictRequest",
    "canonical_sequence",
    "parse_predict_request",
    "error_body",
]

#: Hard ceilings a request may not exceed (overridable per server).
DEFAULT_MAX_BATCH = 256
DEFAULT_MAX_SEQUENCE = 1024


class ProtocolError(ServingError):
    """A client-side protocol violation, mapped to one HTTP 4xx response.

    Parameters
    ----------
    status:
        The HTTP status code (always 4xx).
    code:
        A stable machine-readable identifier (``"bad_json"``,
        ``"unknown_mapping"``, ...); clients should dispatch on this, not on
        the human-readable message.
    message:
        A human-readable description of what was wrong with the request.
    """

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


def error_body(code: str, message: str) -> dict:
    """The JSON body every error response carries."""
    return {"error": {"code": code, "message": message}}


def canonical_sequence(raw: Any, *, max_sequence: int = DEFAULT_MAX_SEQUENCE) -> Experiment:
    """Canonicalize one request sequence into an :class:`Experiment`.

    Accepts a list of instruction names (repeats allowed) or a ``name ->
    count`` object; rejects everything else with a :class:`ProtocolError`.
    """
    if isinstance(raw, list):
        if not raw:
            raise ProtocolError(400, "bad_sequence", "a sequence must not be empty")
        if len(raw) > max_sequence:
            raise ProtocolError(
                413,
                "sequence_too_long",
                f"sequence has {len(raw)} instructions; the limit is {max_sequence}",
            )
        counts: dict[str, int] = {}
        for name in raw:
            if not isinstance(name, str) or not name:
                raise ProtocolError(
                    400,
                    "bad_sequence",
                    f"sequence entries must be instruction names, got {name!r}",
                )
            counts[name] = counts.get(name, 0) + 1
        return Experiment(counts)
    if isinstance(raw, dict):
        if not raw:
            raise ProtocolError(400, "bad_sequence", "a sequence must not be empty")
        counts = {}
        total = 0
        for name, count in raw.items():
            if not isinstance(name, str) or not name:
                raise ProtocolError(
                    400,
                    "bad_sequence",
                    f"sequence keys must be instruction names, got {name!r}",
                )
            if not isinstance(count, int) or isinstance(count, bool) or count <= 0:
                raise ProtocolError(
                    400,
                    "bad_sequence",
                    f"count for {name!r} must be a positive integer, got {count!r}",
                )
            total += count
            counts[name] = count
        if total > max_sequence:
            raise ProtocolError(
                413,
                "sequence_too_long",
                f"sequence has {total} instructions; the limit is {max_sequence}",
            )
        return Experiment(counts)
    raise ProtocolError(
        400,
        "bad_sequence",
        "each sequence must be a list of instruction names or a "
        f"name -> count object, got {type(raw).__name__}",
    )


@dataclass
class PredictRequest:
    """A validated ``POST /v1/predict`` payload."""

    mapping_id: str | None
    sequences: list[Experiment] = field(default_factory=list)


def parse_predict_request(
    payload: Any,
    *,
    max_batch: int = DEFAULT_MAX_BATCH,
    max_sequence: int = DEFAULT_MAX_SEQUENCE,
) -> PredictRequest:
    """Validate a decoded ``/v1/predict`` JSON document.

    ``payload`` is the result of ``json.loads`` on the request body (JSON
    decoding errors are the transport's ``bad_json``); everything structural
    is checked here.
    """
    if not isinstance(payload, dict):
        raise ProtocolError(
            400, "bad_request", f"request body must be a JSON object, got {type(payload).__name__}"
        )
    unknown = set(payload) - {"mapping", "sequences"}
    if unknown:
        raise ProtocolError(
            400, "bad_request", f"unknown request fields: {sorted(unknown)}"
        )
    mapping_id = payload.get("mapping")
    if mapping_id is not None and not isinstance(mapping_id, str):
        raise ProtocolError(
            400, "bad_request", f'"mapping" must be a string, got {type(mapping_id).__name__}'
        )
    try:
        raw_sequences = payload["sequences"]
    except KeyError:
        raise ProtocolError(400, "bad_request", 'missing required field "sequences"') from None
    if not isinstance(raw_sequences, list):
        raise ProtocolError(
            400,
            "bad_request",
            f'"sequences" must be a list, got {type(raw_sequences).__name__}',
        )
    if not raw_sequences:
        raise ProtocolError(400, "bad_request", '"sequences" must not be empty')
    if len(raw_sequences) > max_batch:
        raise ProtocolError(
            413,
            "batch_too_large",
            f"batch has {len(raw_sequences)} sequences; the limit is {max_batch}",
        )
    sequences = [
        canonical_sequence(raw, max_sequence=max_sequence) for raw in raw_sequences
    ]
    return PredictRequest(mapping_id=mapping_id, sequences=sequences)
