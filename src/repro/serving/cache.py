"""Bounded LRU cache of per-sequence throughput predictions.

The cache is keyed by ``(mapping id, canonical sequence)`` — the canonical
sequence being the :class:`repro.core.experiment.Experiment` multiset, so
``["a", "b", "a"]`` and ``{"a": 2, "b": 1}`` share one line.  Values are the
exact floats the fixed-mapping kernel produced; because that kernel is
batch-independent bit for bit (see
:class:`repro.throughput.batched.FixedMappingEvaluator`), serving a hit is
indistinguishable from recomputing.

The server runs on one asyncio event loop and touches the cache only from
loop callbacks, never from executor threads, so the implementation needs no
locking — an ``OrderedDict`` with move-to-end is the whole mechanism.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.experiment import Experiment

__all__ = ["PredictionCache"]


class PredictionCache:
    """A bounded LRU of ``(mapping id, Experiment) -> float`` predictions.

    ``capacity`` 0 disables caching entirely (every lookup misses, nothing
    is stored) — useful for benchmarking the cold path and as an operator
    escape hatch.
    """

    __slots__ = ("capacity", "_entries", "hits", "misses", "evictions", "invalidations")

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[tuple[str, Experiment], float] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, mapping_id: str, sequence: Experiment) -> float | None:
        """The cached prediction, refreshed to most-recently-used, or None."""
        key = (mapping_id, sequence)
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, mapping_id: str, sequence: Experiment, value: float) -> None:
        """Store a prediction, evicting the least recently used beyond capacity."""
        if self.capacity == 0:
            return
        key = (mapping_id, sequence)
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def invalidate_mapping(self, mapping_id: str) -> int:
        """Drop every entry of one mapping (hot reload); returns the count."""
        stale = [key for key in self._entries if key[0] == mapping_id]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)
        return len(stale)

    def stats(self) -> dict:
        """Counters for ``/v1/stats``."""
        lookups = self.hits + self.misses
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / lookups) if lookups else 0.0,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
