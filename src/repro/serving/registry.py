"""Registry of served mappings: load, identify, hot-reload.

A registry owns one or more inferred port mappings — the JSON artifacts
written by ``repro-pmevo infer -o`` or ``repro-pmevo export --format json``
— each under a stable *mapping id* that requests address.  Per mapping it
precomputes the :class:`repro.throughput.batched.FixedMappingEvaluator`
(the mapping's µop matrix, scattered once) and a reusable
:class:`repro.throughput.batched.SequenceWorkspace`, so the per-request
work is counts-fill + kernel only.

Hot reload (:meth:`MappingRegistry.reload`) re-reads every artifact path
and swaps in mappings whose :meth:`~repro.core.mapping.ThreeLevelMapping.fingerprint`
changed, bumping their *generation*; the server invalidates the prediction
cache for exactly those ids.  A reload that fails to parse leaves the
previously loaded registry fully intact — operators can fix the file and
retry without a restart.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.errors import MappingError, ServingError
from repro.core.mapping import ThreeLevelMapping
from repro.throughput.batched import FixedMappingEvaluator, SequenceWorkspace

__all__ = ["ServedMapping", "MappingRegistry", "load_mapping_artifact", "parse_mapping_spec"]


def parse_mapping_spec(spec: str) -> tuple[str, Path]:
    """Parse a ``--mapping`` argument: ``PATH`` or ``ID=PATH``.

    Without an explicit id the file's stem is used, so ``--mapping
    results/skl.json`` serves as mapping ``skl``.
    """
    ident, sep, path_text = spec.partition("=")
    if sep and ident:
        path = Path(path_text)
        mapping_id = ident
    else:
        path = Path(spec)
        mapping_id = path.stem
    if not mapping_id:
        raise ServingError(f"cannot derive a mapping id from {spec!r}")
    return mapping_id, path


def load_mapping_artifact(path: Path) -> ThreeLevelMapping:
    """Load a mapping from an exported artifact.

    Accepts the canonical mapping JSON (``ThreeLevelMapping.to_dict``) and,
    tolerantly, a document wrapping it under a top-level ``"mapping"`` key.
    Anything else raises :class:`ServingError` naming the path.
    """
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ServingError(f"cannot read mapping artifact {path}: {exc}") from exc
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ServingError(f"mapping artifact {path} is not JSON: {exc}") from exc
    if isinstance(document, dict) and "mapping" in document and "instructions" not in document:
        document = document["mapping"]
    try:
        return ThreeLevelMapping.from_dict(document)
    except MappingError as exc:
        raise ServingError(f"mapping artifact {path} is malformed: {exc}") from exc


@dataclass
class ServedMapping:
    """One mapping under serving, with its precomputed evaluation state."""

    mapping_id: str
    path: Path
    mapping: ThreeLevelMapping
    evaluator: FixedMappingEvaluator
    workspace: SequenceWorkspace
    fingerprint: str
    generation: int = 1
    loaded_at: float = field(default_factory=time.time)

    def describe(self) -> dict:
        """The per-mapping block of ``/v1/stats``."""
        return {
            "path": str(self.path),
            "instructions": len(self.mapping),
            "ports": self.mapping.ports.num_ports,
            "fingerprint": self.fingerprint,
            "generation": self.generation,
        }


class MappingRegistry:
    """The set of mappings a server answers for, addressable by id.

    Parameters
    ----------
    specs:
        ``(mapping id, artifact path)`` pairs, as produced by
        :func:`parse_mapping_spec`.  Ids must be unique.
    workspace_capacity:
        Batch width of the per-mapping reusable workspace (requests beyond
        it are evaluated in chunks).
    """

    def __init__(self, specs: list[tuple[str, Path]], workspace_capacity: int = 256):
        if not specs:
            raise ServingError("a mapping registry needs at least one mapping")
        seen: set[str] = set()
        for mapping_id, _ in specs:
            if mapping_id in seen:
                raise ServingError(f"duplicate mapping id {mapping_id!r}")
            seen.add(mapping_id)
        self._specs = list(specs)
        self._workspace_capacity = workspace_capacity
        self._entries: dict[str, ServedMapping] = {}
        for mapping_id, path in self._specs:
            self._entries[mapping_id] = self._load_entry(mapping_id, path)

    def _load_entry(self, mapping_id: str, path: Path, generation: int = 1) -> ServedMapping:
        mapping = load_mapping_artifact(path)
        evaluator = FixedMappingEvaluator(mapping)
        return ServedMapping(
            mapping_id=mapping_id,
            path=path,
            mapping=mapping,
            evaluator=evaluator,
            workspace=evaluator.workspace(self._workspace_capacity),
            fingerprint=mapping.fingerprint(),
            generation=generation,
        )

    @property
    def ids(self) -> tuple[str, ...]:
        return tuple(self._entries.keys())

    @property
    def default_id(self) -> str | None:
        """The implied mapping id when exactly one mapping is served."""
        return self._specs[0][0] if len(self._specs) == 1 else None

    def __contains__(self, mapping_id: object) -> bool:
        return mapping_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, mapping_id: str) -> ServedMapping:
        try:
            return self._entries[mapping_id]
        except KeyError:
            raise ServingError(f"unknown mapping id {mapping_id!r}") from None

    def reload(self) -> tuple[list[str], list[str]]:
        """Re-read every artifact; swap in the ones whose content changed.

        Returns ``(reloaded ids, unchanged ids)``.  All artifacts are parsed
        *before* any entry is swapped, so a reload either applies completely
        or (on the first unreadable artifact) raises :class:`ServingError`
        leaving the registry untouched.
        """
        fresh: dict[str, ServedMapping] = {}
        for mapping_id, path in self._specs:
            current = self._entries[mapping_id]
            entry = self._load_entry(mapping_id, path, generation=current.generation)
            if entry.fingerprint != current.fingerprint:
                entry.generation = current.generation + 1
                fresh[mapping_id] = entry
        reloaded = sorted(fresh)
        unchanged = sorted(set(self._entries) - set(fresh))
        self._entries.update(fresh)
        return reloaded, unchanged

    def describe(self) -> dict:
        return {mapping_id: entry.describe() for mapping_id, entry in self._entries.items()}
