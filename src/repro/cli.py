"""Command line interface: ``repro-pmevo`` / ``python -m repro.cli``.

Subcommands (see ``docs/cli.md`` for the full reference):

* ``infer``   — run the PMEvo pipeline against a machine preset and write
  the inferred port mapping as JSON; supports island-model parallel search
  (``--islands``/``--workers``), distributed search over TCP
  (``--transport socket``), and checkpoint/resume
  (``--checkpoint``/``--resume``).
* ``worker``  — serve island epochs for a ``--transport socket`` coordinator
  (run one per core, on any machine that can reach the coordinator).
* ``serve``   — serve throughput predictions for one or more mapping files
  over an async HTTP/JSON API (``POST /v1/predict``) with a memoizing LRU
  cache and batched backend evaluation; see ``docs/serving.md``.
* ``predict`` — predict the throughput of an experiment with a mapping file.
* ``compare`` — evaluate a mapping (and the built-in baselines) on a random
  benchmark set, printing a Table 3/4-style accuracy report.
* ``show``    — pretty-print a mapping file.
* ``diff``    — compare two mapping files (behavioural + structural).
* ``export``  — emit a mapping as an LLVM/OSACA/JSON flavour.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis import evaluate_predictor, format_table
from repro.baselines import LLVMMCAPredictor
from repro.core import Experiment, ExperimentSet, ThreeLevelMapping
from repro.machine import MeasurementConfig, preset_machine
from repro.pmevo import (
    EvolutionConfig,
    PMEvoConfig,
    infer_port_mapping,
    random_experiments,
)
from repro.pmevo.transport import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_HEARTBEAT_TIMEOUT,
    DEFAULT_START_TIMEOUT,
)
from repro.throughput import MappingPredictor

__all__ = ["main", "build_parser"]


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {text}")
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def _positive_int(text: str) -> int:
    value = _nonnegative_int(text)
    if value == 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {text}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-pmevo",
        description="PMEvo reproduction: infer and evaluate port mappings.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    infer = sub.add_parser(
        "infer",
        help="infer a port mapping for a machine preset",
        epilog="Island-model defaults: --islands 1 (sequential Algorithm 1), "
        "--workers 1, --migration-interval 10, --migration-size 2; "
        "--workers is capped at the island count.  --transport auto picks "
        "serial for one worker and a multiprocessing pool otherwise; "
        "--transport socket distributes epochs to `repro-pmevo worker "
        "--connect HOST:PORT` processes.  --checkpoint writes atomic "
        "snapshots every --checkpoint-interval epochs; --resume continues "
        "a snapshot bit-identically to an uninterrupted run.",
    )
    infer.add_argument("machine", choices=["SKL", "ZEN", "A72"], help="machine preset")
    infer.add_argument("--output", "-o", type=Path, required=True, help="mapping JSON path")
    infer.add_argument("--forms", type=int, default=40, help="number of instruction forms")
    infer.add_argument("--population", type=int, default=200, help="EA population size")
    infer.add_argument("--generations", type=int, default=120, help="EA max generations")
    infer.add_argument("--epsilon", type=float, default=0.05, help="congruence tolerance")
    infer.add_argument("--seed", type=int, default=0, help="random seed")
    infer.add_argument(
        "--islands",
        type=int,
        default=1,
        help="number of island populations (>1 enables parallel island-model search)",
    )
    infer.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes evolving islands concurrently "
        "(effective only with --islands > 1; capped at the island count)",
    )
    infer.add_argument(
        "--migration-interval",
        type=int,
        default=10,
        help="generations between elite migrations around the island ring",
    )
    infer.add_argument(
        "--migration-size",
        type=int,
        default=2,
        help="elite genomes each island emigrates per migration",
    )
    infer.add_argument(
        "--transport",
        choices=["auto", "serial", "pool", "socket"],
        default="auto",
        help="where island epochs run (default auto: serial for one worker, "
        "a multiprocessing pool otherwise; socket distributes to "
        "`repro-pmevo worker` processes)",
    )
    infer.add_argument(
        "--bind",
        default="127.0.0.1:0",
        help="HOST:PORT the socket coordinator listens on (port 0 picks an "
        "ephemeral port, printed at startup; only with --transport socket)",
    )
    infer.add_argument(
        "--min-workers",
        type=int,
        default=1,
        help="workers the socket coordinator waits for before the first "
        "epoch (only with --transport socket)",
    )
    infer.add_argument(
        "--heartbeat-timeout",
        type=_positive_float,
        default=DEFAULT_HEARTBEAT_TIMEOUT,
        help="seconds of silence before the coordinator declares a worker "
        f"dead and requeues its leases (default {DEFAULT_HEARTBEAT_TIMEOUT:g}; "
        "must exceed the worker heartbeat interval; only with "
        "--transport socket)",
    )
    infer.add_argument(
        "--start-timeout",
        type=_positive_float,
        default=DEFAULT_START_TIMEOUT,
        help="seconds the coordinator waits for --min-workers before giving "
        f"up (default {DEFAULT_START_TIMEOUT:g}; only with --transport socket)",
    )
    infer.add_argument(
        "--checkpoint",
        type=Path,
        default=None,
        help="write an atomic evolution snapshot to this path at epoch "
        "barriers (the file always holds the latest snapshot)",
    )
    infer.add_argument(
        "--checkpoint-interval",
        type=int,
        default=1,
        help="epochs between checkpoint snapshots (default 1)",
    )
    infer.add_argument(
        "--resume",
        type=Path,
        default=None,
        help="resume from a checkpoint written by --checkpoint; the run "
        "must use the same machine, seed, and island settings",
    )

    worker = sub.add_parser(
        "worker",
        help="serve island epochs for a --transport socket coordinator",
        epilog="Start any number of workers (one per core), on this or "
        "other machines; they may join mid-run and may die mid-epoch — "
        "the coordinator reassigns leased epochs, and results are "
        "bit-identical regardless.",
    )
    worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="address the coordinator printed at startup",
    )
    worker.add_argument(
        "--heartbeat-interval",
        type=_positive_float,
        default=DEFAULT_HEARTBEAT_INTERVAL,
        help=f"seconds between heartbeat frames (default {DEFAULT_HEARTBEAT_INTERVAL:g})",
    )
    worker.add_argument(
        "--max-reconnect-attempts",
        type=_nonnegative_int,
        default=10,
        help="reconnect attempts (capped exponential backoff) after the "
        "coordinator connection drops before concluding it is gone "
        "(default 10; 0 disables reconnecting)",
    )
    worker.add_argument(
        "--reconnect-window",
        type=_positive_float,
        default=60.0,
        help="seconds after a connection drop during which reconnects are "
        "attempted; past this the coordinator is treated as gone and the "
        "worker exits cleanly (default 60)",
    )

    serve = sub.add_parser(
        "serve",
        help="serve throughput predictions over HTTP/JSON",
        epilog="Serves POST /v1/predict (batched sequence -> throughput), "
        "GET /healthz, GET /v1/stats, and POST /v1/reload over a mapping "
        "registry.  Predictions are memoized in a bounded LRU and concurrent "
        "cache misses are coalesced into single batched backend calls.  "
        "SIGTERM drains in-flight requests before exiting.  See "
        "docs/serving.md for the API reference.",
    )
    serve.add_argument(
        "--mapping",
        action="append",
        required=True,
        metavar="[ID=]PATH",
        help="mapping JSON artifact to serve (repeatable; id defaults to "
        "the file stem)",
    )
    serve.add_argument(
        "--bind",
        default="127.0.0.1:8123",
        help="HOST:PORT to listen on (':0' binds loopback on an ephemeral "
        "port; the bound address is printed as 'serving on HOST:PORT')",
    )
    serve.add_argument(
        "--cache-size",
        type=_nonnegative_int,
        default=4096,
        help="LRU capacity in cached predictions (0 disables caching; "
        "default 4096)",
    )
    serve.add_argument(
        "--max-batch",
        type=_positive_int,
        default=256,
        help="maximum sequences per /v1/predict request (default 256)",
    )
    serve.add_argument(
        "--max-sequence",
        type=_positive_int,
        default=1024,
        help="maximum instructions per sequence (default 1024)",
    )
    serve.add_argument(
        "--max-body-kib",
        type=_positive_int,
        default=1024,
        help="maximum request body size in KiB (default 1024)",
    )
    serve.add_argument(
        "--idle-timeout",
        type=_positive_float,
        default=30.0,
        help="seconds a keep-alive connection may idle between requests "
        "(default 30)",
    )
    serve.add_argument(
        "--grace",
        type=_positive_float,
        default=10.0,
        help="seconds shutdown waits for in-flight requests to drain "
        "(default 10)",
    )

    predict = sub.add_parser("predict", help="predict throughput of an experiment")
    predict.add_argument("mapping", type=Path, help="mapping JSON path")
    predict.add_argument(
        "experiment",
        nargs="+",
        help="experiment as name=count pairs, e.g. add_r64rw_r64=2",
    )

    compare = sub.add_parser("compare", help="evaluate a mapping against baselines")
    compare.add_argument("machine", choices=["SKL", "ZEN", "A72"])
    compare.add_argument("mapping", type=Path, help="mapping JSON path")
    compare.add_argument("--count", type=int, default=200, help="benchmark experiments")
    compare.add_argument("--size", type=int, default=5, help="experiment size")
    compare.add_argument("--seed", type=int, default=0)

    show = sub.add_parser("show", help="pretty-print a mapping file")
    show.add_argument("mapping", type=Path)

    diff = sub.add_parser("diff", help="compare two mapping files")
    diff.add_argument("first", type=Path)
    diff.add_argument("second", type=Path)

    export = sub.add_parser("export", help="export a mapping for downstream tools")
    export.add_argument("mapping", type=Path)
    export.add_argument(
        "--format",
        choices=["llvm", "osaca", "json"],
        default="llvm",
        help="output flavour (default: llvm scheduling-model snippet)",
    )
    return parser


def _subsample_names(machine, count: int, seed: int) -> list[str]:
    """A deterministic, class-diverse subsample of instruction forms."""
    import numpy as np

    names = list(machine.isa.names)
    if count >= len(names):
        return names
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(names), size=count, replace=False)
    return [names[i] for i in sorted(picks)]


def _make_transport(args: argparse.Namespace):
    """Build the transport selected by ``--transport`` (None for auto)."""
    from repro.pmevo import PoolTransport, SerialTransport, SocketTransport
    from repro.pmevo.transport import parse_address

    if args.transport == "auto":
        return None
    if args.transport == "serial":
        return SerialTransport()
    if args.transport == "pool":
        return PoolTransport(min(args.workers, args.islands))
    host, port = parse_address(args.bind)
    transport = SocketTransport(
        host,
        port,
        min_workers=args.min_workers,
        heartbeat_timeout=args.heartbeat_timeout,
        start_timeout=args.start_timeout,
    )
    # Print the actual (possibly ephemeral) address before measurement
    # starts, so workers can be pointed at it right away.
    address = transport.listen()
    print(f"socket transport listening on {address[0]}:{address[1]}", flush=True)
    return transport


def _cmd_infer(args: argparse.Namespace) -> int:
    from repro.pmevo import Checkpointer, load_checkpoint

    machine = preset_machine(args.machine, MeasurementConfig(seed=args.seed))
    names = _subsample_names(machine, args.forms, args.seed)
    config = PMEvoConfig(
        epsilon=args.epsilon,
        evolution=EvolutionConfig(
            population_size=args.population,
            max_generations=args.generations,
            seed=args.seed,
            islands=args.islands,
            workers=args.workers,
            migration_interval=args.migration_interval,
            migration_size=args.migration_size,
        ),
    )
    transport = _make_transport(args)
    checkpointer = (
        Checkpointer(args.checkpoint, args.checkpoint_interval)
        if args.checkpoint is not None
        else None
    )
    resume = load_checkpoint(args.resume) if args.resume is not None else None
    print(f"inferring port mapping for {machine.describe()}")
    print(f"instruction forms: {len(names)}")
    if args.islands > 1:
        effective_workers = min(args.workers, args.islands)
        print(
            f"islands: {args.islands} x {args.population} "
            f"(workers: {effective_workers})"
        )
    elif args.workers > 1 and args.transport != "socket":
        print(
            f"note: --workers {args.workers} has no effect with a single "
            "population; pass --islands > 1 for parallel search",
            file=sys.stderr,
        )
    if resume is not None:
        print(f"resuming from {args.resume} (epoch {resume.epochs})")
    result = infer_port_mapping(
        machine,
        names=names,
        config=config,
        transport=transport,
        checkpointer=checkpointer,
        resume=resume,
    )
    args.output.write_text(result.mapping.to_json())
    cluster = getattr(result.evolution, "transport_stats", None)
    if cluster:
        print(
            "cluster: {epochs} epochs, {leases} leases, {steals} steals, "
            "{requeued} requeued, {workers_dropped} workers dropped, "
            "{late_joiners} late joiners".format(**cluster)
        )
    stats = result.table2_row()
    print(format_table(["statistic", "value"], list(stats.items())))
    print(f"D_avg on training experiments: {result.evolution.davg:.4f}")
    print(f"mapping written to {args.output}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.pmevo import run_worker
    from repro.pmevo.transport import parse_address

    host, port = parse_address(args.connect)
    print(f"worker connecting to {host}:{port}", flush=True)
    return run_worker(
        host,
        port,
        heartbeat_interval=args.heartbeat_interval,
        max_reconnect_attempts=args.max_reconnect_attempts,
        reconnect_window=args.reconnect_window,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serving import MappingRegistry, PredictionServer, parse_bind, parse_mapping_spec

    from repro.core.errors import ServingError

    specs = [parse_mapping_spec(spec) for spec in args.mapping]
    host, port = parse_bind(args.bind)
    try:
        registry = MappingRegistry(specs, workspace_capacity=args.max_batch)
    except ServingError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for mapping_id in registry.ids:
        entry = registry.get(mapping_id)
        print(
            f"mapping {mapping_id!r}: {len(entry.mapping)} instructions, "
            f"{entry.mapping.ports.num_ports} ports, "
            f"fingerprint {entry.fingerprint} ({entry.path})"
        )
    server = PredictionServer(
        registry,
        cache_size=args.cache_size,
        max_batch=args.max_batch,
        max_sequence=args.max_sequence,
        max_body_bytes=args.max_body_kib * 1024,
        idle_timeout=args.idle_timeout,
        grace=args.grace,
    )
    return asyncio.run(server.run(host, port))


def _parse_experiment(tokens: list[str]) -> Experiment:
    counts: dict[str, int] = {}
    for token in tokens:
        name, _, count_text = token.partition("=")
        counts[name] = counts.get(name, 0) + (int(count_text) if count_text else 1)
    return Experiment(counts)


def _cmd_predict(args: argparse.Namespace) -> int:
    mapping = ThreeLevelMapping.from_json(args.mapping.read_text())
    experiment = _parse_experiment(args.experiment)
    predictor = MappingPredictor(mapping, name=str(args.mapping))
    print(f"{predictor.predict(experiment):.4f}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    machine = preset_machine(args.machine, MeasurementConfig(seed=args.seed))
    mapping = ThreeLevelMapping.from_json(args.mapping.read_text())
    names = [n for n in mapping.instructions if n in machine.isa]
    if not names:
        print("mapping covers no instructions of this machine's ISA", file=sys.stderr)
        return 1
    experiments = random_experiments(names, size=args.size, count=args.count, seed=args.seed)
    bench = ExperimentSet()
    for experiment in experiments:
        bench.add(experiment, machine.measure(experiment))
    predictors = [MappingPredictor(mapping, name="PMEvo"), LLVMMCAPredictor(machine)]
    rows = []
    for predictor in predictors:
        report = evaluate_predictor(predictor, bench, machine.name)
        row = report.row()
        rows.append([row["predictor"], row["MAPE"], row["Pearson CC"], row["Spearman CC"]])
    print(
        format_table(
            ["predictor", "MAPE", "Pearson CC", "Spearman CC"],
            rows,
            title=f"accuracy on {machine.name} ({args.count} experiments of size {args.size})",
        )
    )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    mapping = ThreeLevelMapping.from_json(args.mapping.read_text())
    print(mapping.describe())
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.analysis import mapping_diff

    first = ThreeLevelMapping.from_json(args.first.read_text())
    second = ThreeLevelMapping.from_json(args.second.read_text())
    comparison = mapping_diff(first, second, args.first.name, args.second.name)
    print(f"behavioural distance: {comparison.behavioural_distance:.4f}")
    print(f"equivalent up to port renaming: {comparison.structurally_equivalent}")
    if comparison.permutation is not None:
        print(f"port permutation: {comparison.permutation}")
    print(comparison.diff_text)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.analysis import to_llvm_sched_model, to_osaca_table

    mapping = ThreeLevelMapping.from_json(args.mapping.read_text())
    if args.format == "llvm":
        print(to_llvm_sched_model(mapping), end="")
    elif args.format == "osaca":
        print(to_osaca_table(mapping), end="")
    else:
        print(mapping.to_json())
    return 0


def _validate(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    """Cross-field checks that argparse types cannot express alone."""
    if args.command == "infer" and args.heartbeat_timeout <= DEFAULT_HEARTBEAT_INTERVAL:
        parser.error(
            f"--heartbeat-timeout {args.heartbeat_timeout:g} must exceed the "
            f"worker heartbeat interval (default {DEFAULT_HEARTBEAT_INTERVAL:g}s); "
            "a timeout shorter than one heartbeat period drops healthy workers"
        )
    if args.command == "serve":
        from repro.core.errors import ServingError
        from repro.serving import parse_bind, parse_mapping_spec

        try:
            specs = [parse_mapping_spec(spec) for spec in args.mapping]
            parse_bind(args.bind)
        except ServingError as exc:
            parser.error(str(exc))
        seen: set[str] = set()
        for mapping_id, _ in specs:
            if mapping_id in seen:
                parser.error(
                    f"duplicate mapping id {mapping_id!r}; disambiguate with "
                    "--mapping ID=PATH"
                )
            seen.add(mapping_id)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _validate(parser, args)
    handlers = {
        "infer": _cmd_infer,
        "worker": _cmd_worker,
        "serve": _cmd_serve,
        "predict": _cmd_predict,
        "compare": _cmd_compare,
        "show": _cmd_show,
        "diff": _cmd_diff,
        "export": _cmd_export,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
