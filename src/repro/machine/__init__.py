"""Simulated processors: the hardware substitute for the paper's machines."""

from repro.machine.config import (
    BackendConfig,
    DecodedUop,
    ExecutionClass,
    FrontendConfig,
    MachineConfig,
    UopSpec,
)
from repro.machine.isagen import arm_like_isa, toy_isa, x86_like_isa
from repro.machine.measurement import Machine, MeasurementConfig
from repro.machine.presets import (
    PRESET_NAMES,
    a72_machine,
    preset_machine,
    skl_machine,
    toy_machine,
    zen_machine,
)
from repro.machine.processor import Processor, SimulationResult

__all__ = [
    "UopSpec",
    "ExecutionClass",
    "FrontendConfig",
    "BackendConfig",
    "MachineConfig",
    "DecodedUop",
    "Processor",
    "SimulationResult",
    "Machine",
    "MeasurementConfig",
    "x86_like_isa",
    "arm_like_isa",
    "toy_isa",
    "skl_machine",
    "zen_machine",
    "a72_machine",
    "toy_machine",
    "preset_machine",
    "PRESET_NAMES",
]
