"""Machine configuration: the ground truth a simulated processor executes.

A :class:`MachineConfig` fixes everything the paper's physical processors
fix in silicon: the execution ports, how each instruction form decomposes
into µops, which ports each µop may use, latencies, pipelining (blocking)
behaviour, and the front-end/scheduler shape.  The inference pipeline never
reads this — it only sees measured times through
:class:`repro.machine.measurement.Machine`.

Two deliberately modeled imperfections keep the reproduction honest:

* ``block > 1`` µops occupy their port for several cycles (divisions), which
  violates assumption 2 of the analytical model exactly as real dividers do;
* ``hidden_uops`` are executed by the simulator but *not* reported in the
  published ground-truth mapping, reproducing the paper's BTx family whose
  "measurable throughput does not agree with the throughput implied by the
  port usage" (Section 5.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ISAError, MappingError
from repro.core.isa import ISA, InstructionForm
from repro.core.mapping import ThreeLevelMapping
from repro.core.ports import PortSpace

__all__ = ["UopSpec", "ExecutionClass", "FrontendConfig", "BackendConfig", "MachineConfig", "DecodedUop"]


@dataclass(frozen=True)
class UopSpec:
    """One kind of µop in an execution class' decomposition.

    Attributes
    ----------
    ports:
        Names of the ports that can execute this µop.
    count:
        How many instances of this µop the instruction decomposes into.
    block:
        Cycles the chosen port stays busy per instance (1 = fully
        pipelined; >1 models dividers and similar units).
    """

    ports: tuple[str, ...]
    count: int = 1
    block: int = 1

    def __post_init__(self) -> None:
        if not self.ports:
            raise MappingError("a µop must be executable on at least one port")
        if self.count <= 0:
            raise MappingError(f"µop count must be positive, got {self.count}")
        if self.block <= 0:
            raise MappingError(f"µop block must be positive, got {self.block}")


@dataclass(frozen=True)
class ExecutionClass:
    """Ground-truth execution behaviour shared by a group of forms.

    Instruction forms point at an execution class through their
    ``semantic_class`` tag; this is how machine presets assign µop
    decompositions to hundreds of forms without per-form tables.
    """

    name: str
    uops: tuple[UopSpec, ...]
    latency: int = 1
    hidden_uops: tuple[UopSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.uops:
            raise MappingError(f"execution class {self.name!r} has no µops")
        if self.latency <= 0:
            raise MappingError(f"latency must be positive, got {self.latency}")


@dataclass(frozen=True)
class FrontendConfig:
    """Fetch/decode/dispatch shape of the simulated core.

    If a loop body's µops fit in the µop cache, dispatch runs at
    ``dispatch_width`` µops per cycle; otherwise the legacy decoders limit
    delivery to ``decode_width`` (Section 4.2 chooses loop bodies that stay
    µop-cache resident, so the distinction mostly matters for experiments
    that violate that guidance).
    """

    dispatch_width: int = 6
    decode_width: int = 4
    uop_cache_size: int = 1536

    def __post_init__(self) -> None:
        if self.dispatch_width <= 0 or self.decode_width <= 0:
            raise ISAError("frontend widths must be positive")
        if self.uop_cache_size < 0:
            raise ISAError("µop cache size must be non-negative")


@dataclass(frozen=True)
class BackendConfig:
    """Out-of-order engine shape of the simulated core.

    ``port_policy`` selects the scheduler's port-binding heuristic:
    ``"least_used"`` (default, balances issue counts) or ``"lowest_index"``
    (naive first-fit, used by the IACA-style baseline's internal model so
    vendor-simulator predictions deviate slightly from the machine).
    """

    scheduler_window: int = 97
    rob_size: int = 224
    retire_width: int = 4
    port_policy: str = "least_used"

    def __post_init__(self) -> None:
        if self.scheduler_window <= 0 or self.rob_size <= 0 or self.retire_width <= 0:
            raise ISAError("backend sizes must be positive")
        if self.port_policy not in ("least_used", "lowest_index"):
            raise ISAError(f"unknown port policy {self.port_policy!r}")


@dataclass(frozen=True)
class DecodedUop:
    """A µop as the simulator executes it: port mask + blocking cycles."""

    mask: int
    block: int


@dataclass
class MachineConfig:
    """Complete description of a simulated processor.

    Attributes
    ----------
    name:
        Display name (``"SKL"``, ``"ZEN"``, ``"A72"``).
    ports:
        The execution ports.
    isa:
        The instruction set this machine executes.
    classes:
        Execution classes keyed by name; every ``semantic_class`` occurring
        in the ISA must be present.
    latency_overrides:
        Optional per-``latency_class`` latency overrides.
    clock_ghz:
        Clock frequency used to convert cycles to wall time.
    """

    name: str
    ports: PortSpace
    isa: ISA
    classes: dict[str, ExecutionClass]
    frontend: FrontendConfig = field(default_factory=FrontendConfig)
    backend: BackendConfig = field(default_factory=BackendConfig)
    latency_overrides: dict[str, int] = field(default_factory=dict)
    clock_ghz: float = 3.0

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0:
            raise ISAError(f"clock frequency must be positive, got {self.clock_ghz}")
        missing = {
            form.semantic_class
            for form in self.isa
            if form.semantic_class not in self.classes
        }
        if missing:
            raise ISAError(
                f"machine {self.name!r} lacks execution classes for {sorted(missing)}"
            )
        for cls in self.classes.values():
            for uop in tuple(cls.uops) + tuple(cls.hidden_uops):
                self.ports.mask(*uop.ports)  # validates port names

    def execution_class(self, form: InstructionForm) -> ExecutionClass:
        """The execution class of an instruction form."""
        return self.classes[form.semantic_class]

    def latency_of(self, form: InstructionForm) -> int:
        """Result latency of a form (override first, class default second)."""
        override = self.latency_overrides.get(form.latency_class)
        if override is not None:
            return override
        return self.execution_class(form).latency

    def decode(self, form: InstructionForm) -> list[DecodedUop]:
        """All µops the simulator executes for one instance of ``form``.

        Includes hidden quirk µops; this is what the hardware *does*, not
        what the published mapping *says*.
        """
        cls = self.execution_class(form)
        decoded: list[DecodedUop] = []
        for spec in tuple(cls.uops) + tuple(cls.hidden_uops):
            mask = self.ports.mask(*spec.ports)
            decoded.extend(DecodedUop(mask, spec.block) for _ in range(spec.count))
        return decoded

    def ground_truth_mapping(self, isa: ISA | None = None) -> ThreeLevelMapping:
        """The *published* three-level port mapping (visible µops only).

        This is the analogue of the uops.info tables: accurate port usage
        for everything except the hidden quirks.  Blocking µops are
        published with their port-occupancy folded into the multiplicity
        (``count × block``), which is how throughput-measuring tables
        report non-pipelined units like dividers — the analytical model
        then reproduces their measured reciprocal throughput.
        """
        target = isa or self.isa
        assignment: dict[str, dict[int, int]] = {}
        for form in target:
            cls = self.execution_class(form)
            uops: dict[int, int] = {}
            for spec in cls.uops:
                mask = self.ports.mask(*spec.ports)
                uops[mask] = uops.get(mask, 0) + spec.count * spec.block
            assignment[form.name] = uops
        return ThreeLevelMapping(self.ports, assignment)
