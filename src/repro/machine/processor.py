"""Cycle-level out-of-order processor simulator.

This is the library's stand-in for the paper's physical test machines.  It
executes concrete instruction sequences against a hidden ground-truth port
mapping (the :class:`~repro.machine.config.MachineConfig`) with:

* an in-order frontend delivering µops at the dispatch width (µop-cache
  resident loops) or the decode width (larger loops),
* register renaming — only true read-after-write dependencies stall,
* a finite scheduler window from which *ready* µops issue **greedily,
  oldest first**, to the least-used free allowed port — a realistic
  heuristic, deliberately not the optimal scheduler the analytical model
  assumes (this gap is what the paper's Figure 6 measures),
* per-port pipelines: one new µop per port per cycle, except ``block > 1``
  µops (dividers) that keep their port busy for several cycles,
* in-order retirement bounded by the retire width and ROB capacity.

The simulator is intentionally not a model of any real commercial core; it
is a *plausible* OOO core whose observable throughput behaviour has the same
structure real cores exhibit with respect to their port mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.assembly import InstructionInstance
from repro.core.errors import MeasurementError
from repro.core.isa import OperandKind
from repro.core.ports import indices_from_mask
from repro.machine.config import MachineConfig

__all__ = ["Processor", "SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating an instruction stream to completion."""

    cycles: int
    instructions: int
    uops: int

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0


@dataclass(frozen=True)
class _StaticInstr:
    """Pre-decoded, per-body-position instruction information."""

    uop_ports: tuple[tuple[int, ...], ...]  # allowed port indices per µop
    uop_blocks: tuple[int, ...]
    latency: int
    reads: tuple[int, ...]  # register keys (encoded ints)
    writes: tuple[int, ...]


def _regkey(kind: OperandKind, index: int) -> int:
    """Encode a register as a small int key (GPRs even, VECs odd)."""
    return index * 2 + (1 if kind is OperandKind.VEC else 0)


class Processor:
    """Executes instruction streams under a :class:`MachineConfig`."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self._num_ports = config.ports.num_ports
        self._decode_cache: dict[str, tuple[tuple[tuple[int, ...], ...], tuple[int, ...], int]] = {}

    def _static(self, instance: InstructionInstance) -> _StaticInstr:
        form = instance.form
        cached = self._decode_cache.get(form.name)
        if cached is None:
            decoded = self.config.decode(form)
            ports = tuple(indices_from_mask(uop.mask) for uop in decoded)
            blocks = tuple(uop.block for uop in decoded)
            cached = (ports, blocks, self.config.latency_of(form))
            self._decode_cache[form.name] = cached
        uop_ports, uop_blocks, latency = cached
        reads = tuple(_regkey(r.kind, r.index) for r in instance.read_registers())
        writes = tuple(_regkey(r.kind, r.index) for r in instance.written_registers())
        return _StaticInstr(uop_ports, uop_blocks, latency, reads, writes)

    def run(
        self,
        body: list[InstructionInstance],
        iterations: int = 1,
        max_cycles: int = 2_000_000,
    ) -> SimulationResult:
        """Simulate ``iterations`` back-to-back executions of ``body``.

        Returns the total cycle count from first dispatch to last
        retirement.  Raises :class:`MeasurementError` if the stream does not
        finish within ``max_cycles`` (a safety net against configuration
        bugs, not an expected outcome).
        """
        if not body:
            raise MeasurementError("cannot simulate an empty loop body")
        if iterations <= 0:
            raise MeasurementError(f"iterations must be positive, got {iterations}")

        statics = [self._static(instance) for instance in body]
        body_len = len(body)
        total_instrs = body_len * iterations
        total_uops_per_body = sum(len(s.uop_ports) for s in statics)

        frontend = self.config.frontend
        backend = self.config.backend
        if total_uops_per_body <= frontend.uop_cache_size:
            dispatch_width = frontend.dispatch_width
        else:
            dispatch_width = frontend.decode_width
        window_capacity = backend.scheduler_window
        rob_capacity = backend.rob_size
        retire_width = backend.retire_width
        least_used_policy = backend.port_policy == "least_used"

        # Dynamic state ---------------------------------------------------
        reg_producer: dict[int, int] = {}  # register key -> dynamic instr id
        # Per dynamic instruction (dict keyed by id; ids are dense but the
        # alive set is bounded by the ROB, so dicts stay small):
        remaining_uops: dict[int, int] = {}
        completion: dict[int, int] = {}  # known once all µops issued
        latest_completion: dict[int, int] = {}
        deps: dict[int, tuple[int, ...]] = {}

        # Scheduler window: entries are [instr_id, allowed_ports, block].
        window: list[list] = []
        rob: list[int] = []  # dispatched, unretired instruction ids in order

        port_free_at = [0] * self._num_ports
        port_issue_count = [0] * self._num_ports

        next_dispatch = 0  # dynamic id of the next instruction to dispatch
        retired = 0
        total_uops = 0
        cycle = 0

        while retired < total_instrs:
            if cycle > max_cycles:
                raise MeasurementError(
                    f"simulation exceeded {max_cycles} cycles "
                    f"({retired}/{total_instrs} retired)"
                )

            # 1) Retire in order.
            retire_budget = retire_width
            while rob and retire_budget:
                head = rob[0]
                done = completion.get(head)
                if done is None or done > cycle:
                    break
                rob.pop(0)
                retired += 1
                retire_budget -= 1
                # Completion times stay around for dependence checks until
                # no later instruction can reference them; pruning by the
                # renamer below keeps reg_producer bounded instead.

            # 2) Dispatch up to the frontend width.
            dispatch_budget = dispatch_width
            while (
                dispatch_budget > 0
                and next_dispatch < total_instrs
                and len(rob) < rob_capacity
            ):
                static = statics[next_dispatch % body_len]
                num_uops = len(static.uop_ports)
                if len(window) + num_uops > window_capacity:
                    break
                if num_uops > dispatch_budget and dispatch_budget < dispatch_width:
                    break  # µops of one instruction dispatch together
                instr_id = next_dispatch
                next_dispatch += 1
                dispatch_budget -= num_uops
                total_uops += num_uops

                instr_deps = tuple(
                    {reg_producer[key] for key in static.reads if key in reg_producer}
                )
                deps[instr_id] = instr_deps
                for key in static.writes:
                    reg_producer[key] = instr_id
                remaining_uops[instr_id] = num_uops
                latest_completion[instr_id] = 0
                rob.append(instr_id)
                for uop_index in range(num_uops):
                    window.append(
                        [instr_id, static.uop_ports[uop_index], static.uop_blocks[uop_index]]
                    )

            # 3) Issue ready µops, oldest first, greedy port choice.
            free_ports = sum(
                1 for p in range(self._num_ports) if port_free_at[p] <= cycle
            )
            if free_ports and window:
                issued_positions: list[int] = []
                for pos, entry in enumerate(window):
                    if not free_ports:
                        break
                    instr_id, allowed, block = entry
                    ready = True
                    for dep in deps[instr_id]:
                        done = completion.get(dep)
                        if done is None or done > cycle:
                            ready = False
                            break
                    if not ready:
                        continue
                    best_port = -1
                    best_count = -1
                    for port in allowed:
                        if port_free_at[port] > cycle:
                            continue
                        if not least_used_policy:
                            best_port = port  # first-fit: lowest index wins
                            break
                        if best_port < 0 or port_issue_count[port] < best_count:
                            best_port = port
                            best_count = port_issue_count[port]
                    if best_port < 0:
                        continue
                    port_free_at[best_port] = cycle + block
                    port_issue_count[best_port] += 1
                    free_ports -= 1
                    issued_positions.append(pos)

                    static = statics[instr_id % body_len]
                    finish = cycle + static.latency
                    if finish > latest_completion[instr_id]:
                        latest_completion[instr_id] = finish
                    remaining_uops[instr_id] -= 1
                    if remaining_uops[instr_id] == 0:
                        completion[instr_id] = latest_completion[instr_id]
                        del remaining_uops[instr_id]
                        del latest_completion[instr_id]
                if issued_positions:
                    for pos in reversed(issued_positions):
                        del window[pos]

            cycle += 1

        return SimulationResult(cycles=cycle, instructions=total_instrs, uops=total_uops)
