"""Generated instruction set descriptions.

The paper derives its instruction forms from what compilers emit for SPEC
CPU 2017: 310 x86-64 forms and 390 ARMv8-A forms (Section 5.1.2), excluding
branches, implicit-read instructions, SSE, and sub-register variants.  We
have no proprietary compiler output to harvest, so the forms are *generated*
from mnemonic × operand-scheme tables with the same flavour and comparable
size.  Form counts: :func:`x86_like_isa` yields ~310 forms,
:func:`arm_like_isa` ~390 forms.

Each mnemonic row specifies which operand schemes exist for it and which
*semantic class* the resulting forms belong to.  Semantic classes are the
hook machine presets use to attach ground-truth µop decompositions; several
mnemonics sharing a class is exactly what makes congruence filtering
(Section 4.3) effective on real ISAs.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.isa import ISA, InstructionForm, OperandSpec, make_form
from repro.core.isa import gpr, imm, mem, vec

__all__ = ["x86_like_isa", "arm_like_isa", "toy_isa"]


def _expand(
    isa: ISA,
    mnemonics: Iterable[str],
    schemes: Sequence[tuple[str, Sequence[OperandSpec]]],
    semantic_class: str,
    latency_class: str = "",
) -> None:
    """Add ``mnemonic × scheme`` forms to ``isa``.

    ``schemes`` pairs a short scheme tag (only used to disambiguate names)
    with the operand spec list.
    """
    for mnemonic in mnemonics:
        for _tag, operands in schemes:
            isa.add(
                make_form(
                    mnemonic,
                    operands,
                    semantic_class,
                    latency_class=latency_class,
                )
            )


# Common operand schemes, named after their rough x86/ARM syntax.
def _rr(width: int) -> list[OperandSpec]:
    return [gpr(width, read=True, write=True), gpr(width)]


def _rrr(width: int) -> list[OperandSpec]:
    return [gpr(width, write=True, read=False), gpr(width), gpr(width)]


def _ri(width: int) -> list[OperandSpec]:
    return [gpr(width, read=True, write=True), imm()]


def _rm(width: int) -> list[OperandSpec]:
    return [gpr(width, read=True, write=True), mem(width)]


def _vv(width: int) -> list[OperandSpec]:
    return [vec(width, write=True, read=False), vec(width), vec(width)]


def _vv2(width: int) -> list[OperandSpec]:
    return [vec(width, write=True, read=False), vec(width)]


def x86_like_isa() -> ISA:
    """An x86-64-flavoured ISA of ~310 instruction forms.

    AVX-style three-operand vector instructions at 128/256 bits, two-operand
    integer ALU instructions at 32/64 bits, explicit-operand multiplies and
    divides, loads, stores and address generation.  Branches and
    implicit-operand instructions are omitted, as in the paper.
    """
    isa = ISA("x86-like")
    gpr_widths = (32, 64)
    vec_widths = (128, 256)

    # Integer ALU: reg-reg, reg-imm and reg-mem (the mem variant carries an
    # extra load µop on every machine preset).
    alu = ["add", "sub", "and", "or", "xor", "cmp", "test", "mov"]
    for w in gpr_widths:
        _expand(isa, alu, [("rr", _rr(w))], "int_alu")
        _expand(isa, alu, [("ri", _ri(w))], "int_alu")
        _expand(isa, alu, [("rm", _rm(w))], "int_alu_load")
    unary = ["neg", "not", "inc", "dec", "bswap"]
    for w in gpr_widths:
        _expand(isa, unary, [("r", [gpr(w, read=True, write=True)])], "int_alu")

    # Shifts and rotates live on a narrower port group on most cores.
    shifts = ["shl", "shr", "sar", "rol", "ror"]
    for w in gpr_widths:
        _expand(isa, shifts, [("ri", _ri(w))], "int_shift")
        _expand(isa, shifts, [("rr", _rr(w))], "int_shift")

    # BMI-style flagless shifts and bit manipulation (three-operand).
    for w in gpr_widths:
        _expand(isa, ["shlx", "shrx", "sarx"], [("rrr", _rrr(w))], "int_shift")
        _expand(isa, ["rorx"], [("rri", [gpr(w, write=True, read=False), gpr(w), imm()])], "int_shift")
        _expand(isa, ["andn", "bzhi"], [("rrr", _rrr(w))], "int_alu")
        _expand(isa, ["blsi", "blsmsk", "blsr"], [("rr", [gpr(w, write=True, read=False), gpr(w)])], "int_alu")
        _expand(isa, ["pdep", "pext"], [("rrr", _rrr(w))], "int_mul")

    # Bit test family — the quirky BTx instructions of Section 5.3.1.
    btx = ["bt", "bts", "btr", "btc"]
    for w in gpr_widths:
        _expand(isa, btx, [("rr", _rr(w))], "bt")
        _expand(isa, btx, [("ri", _ri(w))], "bt")

    # Multiplies, divides, address generation.
    for w in gpr_widths:
        _expand(isa, ["imul"], [("rr", _rr(w)), ("rri", _rrr(w)[:2] + [imm()])], "int_mul")
        _expand(isa, ["crc32"], [("rr", _rr(w))], "int_mul")
        _expand(isa, ["div", "idiv"], [("rr", _rr(w))], "int_div")
        _expand(isa, ["lea"], [("rm", [gpr(w, write=True, read=False), mem(w)])], "lea")
        _expand(isa, ["popcnt", "lzcnt", "tzcnt"], [("rr", _rr(w))], "bit_count")
        _expand(isa, ["movzx", "movsx"], [("rr", _rr(w))], "int_alu")
        conditions = ["cmova", "cmovb", "cmove", "cmovne", "cmovg", "cmovl"]
        _expand(isa, conditions, [("rr", _rr(w))], "cmov")

    # Scalar loads and stores (including immediate stores and memory
    # compares, which combine a load/store µop with an ALU µop).
    for w in gpr_widths:
        _expand(isa, ["load"], [("rm", [gpr(w, write=True, read=False), mem(w)])], "load_gpr")
        _expand(isa, ["store"], [("mr", [mem(w), gpr(w)])], "store_gpr")
        _expand(isa, ["store_imm"], [("mi", [mem(w), imm()])], "store_gpr")
        _expand(isa, ["cmp_mem"], [("mi", [mem(w), imm()])], "int_alu_load")
        _expand(isa, ["mov_imm"], [("ri", [gpr(w, write=True, read=False), imm()])], "int_alu")

    # Vector (AVX-like, three-operand, 128/256 bit).
    vec_alu = [
        "vpand", "vpor", "vpxor", "vpandn",
        "vpaddb", "vpaddw", "vpaddd", "vpaddq",
        "vpsubb", "vpsubw", "vpsubd", "vpsubq",
        "vpmaxsd", "vpminsd", "vpmaxub", "vpminub",
    ]
    vec_fp_add = ["vaddps", "vaddpd", "vsubps", "vsubpd"]
    vec_fp_mul = ["vmulps", "vmulpd"]
    vec_fma = ["vfmadd213ps", "vfmadd213pd", "vfnmadd213ps", "vfmsub213ps"]
    vec_minmax = ["vminps", "vmaxps", "vminpd", "vmaxpd"]
    vec_logic_fp = ["vandps", "vandpd", "vandnps", "vorps", "vorpd", "vxorps", "vxorpd"]
    vec_shuffle = [
        "vshufps", "vshufpd", "vpermilps", "vpermilpd",
        "vunpckhps", "vunpcklps", "vunpckhpd", "vunpcklpd",
        "vpshufd", "vpshufb",
    ]
    vec_blend = ["vblendps", "vblendpd", "vpblendvb"]
    vec_cmp = ["vcmpps", "vcmppd", "vpcmpeqd", "vpcmpgtd"]
    vec_imul = ["vpmulld", "vpmuludq"]
    vec_shift = ["vpslld", "vpsrld", "vpsrad", "vpsllq", "vpsrlq"]
    # Vector classes are width-tagged (``vec_fp_add@256``) so machine
    # presets can double-pump wide operations (Zen+ splits 256-bit AVX into
    # two 128-bit µops; Cortex-A72 splits 128-bit NEON similarly).
    for w in vec_widths:
        _expand(isa, vec_alu, [("vvv", _vv(w))], f"vec_logic@{w}")
        _expand(isa, vec_logic_fp, [("vvv", _vv(w))], f"vec_logic@{w}")
        _expand(isa, vec_fp_add, [("vvv", _vv(w))], f"vec_fp_add@{w}")
        _expand(isa, vec_fp_mul, [("vvv", _vv(w))], f"vec_fp_mul@{w}")
        _expand(isa, vec_fma, [("vvv", _vv(w))], f"vec_fma@{w}")
        _expand(isa, vec_minmax, [("vvv", _vv(w))], f"vec_fp_add@{w}")
        _expand(isa, vec_shuffle, [("vvv", _vv(w))], f"vec_shuffle@{w}")
        _expand(isa, vec_blend, [("vvv", _vv(w))], f"vec_blend@{w}")
        _expand(isa, vec_cmp, [("vvv", _vv(w))], f"vec_fp_add@{w}")
        _expand(isa, vec_imul, [("vvv", _vv(w))], f"vec_imul@{w}")
        _expand(isa, vec_shift, [("vvv", _vv(w))], f"vec_shift@{w}")
        _expand(isa, ["vhaddps", "vhaddpd"], [("vvv", _vv(w))], f"vec_hadd@{w}")
        _expand(isa, ["vdivps", "vdivpd"], [("vvv", _vv(w))], f"vec_div@{w}")
        _expand(isa, ["vsqrtps", "vsqrtpd"], [("vv", _vv2(w))], f"vec_div@{w}")
        _expand(isa, ["vrcpps", "vrsqrtps"], [("vv", _vv2(w))], f"vec_cvt@{w}")
        _expand(
            isa,
            ["vcvtdq2ps", "vcvtps2dq", "vcvttps2dq"],
            [("vv", _vv2(w))],
            f"vec_cvt@{w}",
        )
        _expand(
            isa,
            ["vmovaps_load", "vmovdqu_load", "vbroadcastss"],
            [("vm", [vec(w, write=True, read=False), mem(w)])],
            f"load_vec@{w}",
        )
        _expand(
            isa,
            ["vmovaps_store", "vmovdqu_store"],
            [("mv", [mem(w), vec(w)])],
            f"store_vec@{w}",
        )
        _expand(
            isa,
            ["vaddps_mem", "vpand_mem", "vmulps_mem"],
            [("vvm", [vec(w, write=True, read=False), vec(w), mem(w)])],
            f"vec_alu_load@{w}",
        )
    # 256-bit-only lane-crossing shuffles.
    _expand(isa, ["vperm2f128", "vinsertf128"], [("vvv", _vv(256))], "vec_shuffle@256")
    _expand(isa, ["vextractf128"], [("vv", _vv2(256))], "vec_shuffle@256")

    # GPR <-> vector domain crossing.
    _expand(isa, ["vmovd"], [("vr", [vec(128, write=True, read=False), gpr(32)])], "mov_cross")
    _expand(isa, ["vmovq"], [("vr", [vec(128, write=True, read=False), gpr(64)])], "mov_cross")
    _expand(isa, ["vmovd_rv"], [("rv", [gpr(32, write=True, read=False), vec(128)])], "mov_cross")
    _expand(isa, ["vmovq_rv"], [("rv", [gpr(64, write=True, read=False), vec(128)])], "mov_cross")
    return isa


def arm_like_isa() -> ISA:
    """An ARMv8-A-flavoured ISA of ~390 instruction forms.

    Three-operand integer arithmetic at 32/64 bits (optionally shifted or
    immediate), multiply-accumulate, explicit divides, NEON-style vector
    arithmetic at 64/128 bits, scalar FP, and load/store forms.
    """
    isa = ISA("arm-like")
    gpr_widths = (32, 64)
    vec_widths = (64, 128)

    def rrr(w: int) -> list[OperandSpec]:
        return _rrr(w)

    def rri(w: int) -> list[OperandSpec]:
        return [gpr(w, write=True, read=False), gpr(w), imm()]

    alu = ["add", "sub", "and", "orr", "eor", "bic", "orn", "eon"]
    flag_setting = ["adds", "subs", "ands"]
    for w in gpr_widths:
        _expand(isa, alu, [("rrr", rrr(w)), ("rri", rri(w))], "int_alu")
        _expand(isa, flag_setting, [("rrr", rrr(w)), ("rri", rri(w))], "int_alu")
    # Shifted-register variants occupy the shifter pipeline.
    for w in gpr_widths:
        _expand(
            isa,
            ["add_lsl", "sub_lsl", "and_lsl", "orr_lsl", "eor_lsl", "bic_lsl"],
            [("rrr", rrr(w))],
            "int_alu_shift",
        )
    _expand(isa, ["cmp", "cmn", "tst"], [("rr64", [gpr(64), gpr(64)]), ("rr32", [gpr(32), gpr(32)])], "int_alu")
    for w in gpr_widths:
        _expand(isa, ["lsl", "lsr", "asr", "ror"], [("rrr", rrr(w)), ("rri", rri(w))], "int_shift")
        _expand(isa, ["sbfx", "ubfx", "bfi"], [("rri", rri(w))], "int_shift")
        _expand(isa, ["extr"], [("rrri", rrr(w) + [imm()])], "int_shift")
        _expand(isa, ["csel", "csinc", "csinv", "csneg"], [("rrr", rrr(w))], "cmov")
        _expand(isa, ["ccmp"], [("rri", [gpr(w), gpr(w), imm()])], "cmov")
        _expand(
            isa,
            ["rbit", "rev", "rev16", "clz"],
            [("rr", [gpr(w, write=True, read=False), gpr(w)])],
            "bit_count",
        )
        _expand(isa, ["mov", "mvn"], [("rr", [gpr(w, write=True, read=False), gpr(w)]), ("ri", [gpr(w, write=True, read=False), imm()])], "int_alu")
        _expand(isa, ["movz", "movn", "movk"], [("ri", [gpr(w, write=True, read=False), imm()])], "int_alu")
        _expand(isa, ["mul", "mneg"], [("rrr", rrr(w))], "int_mul")
        _expand(isa, ["crc32", "crc32c"], [("rrr", rrr(w))], "int_mul")
        _expand(
            isa,
            ["madd", "msub"],
            [("rrrr", [gpr(w, write=True, read=False), gpr(w), gpr(w), gpr(w)])],
            "int_madd",
        )
        _expand(isa, ["udiv", "sdiv"], [("rrr", rrr(w))], "int_div")
        _expand(isa, ["ldr"], [("rm", [gpr(w, write=True, read=False), mem(w)])], "load_gpr")
        _expand(
            isa,
            ["ldrb", "ldrh", "ldrsb", "ldrsh", "ldrsw"],
            [("rm", [gpr(w, write=True, read=False), mem(w)])],
            "load_gpr",
        )
        _expand(isa, ["str"], [("mr", [mem(w), gpr(w)])], "store_gpr")
        _expand(isa, ["strb", "strh"], [("mr", [mem(w), gpr(w)])], "store_gpr")
        _expand(
            isa,
            ["ldp"],
            [("rrm", [gpr(w, write=True, read=False), gpr(w, write=True, read=False), mem(w)])],
            "load_pair",
        )
        _expand(isa, ["stp"], [("mrr", [mem(w), gpr(w), gpr(w)])], "store_pair")
    _expand(isa, ["smull", "umull", "smulh", "umulh"], [("rrr", [gpr(64, write=True, read=False), gpr(32), gpr(32)])], "int_mul")
    _expand(
        isa,
        ["smaddl", "umaddl"],
        [("rrrr", [gpr(64, write=True, read=False), gpr(32), gpr(32), gpr(64)])],
        "int_madd",
    )
    _expand(isa, ["adr", "adrp"], [("rm", [gpr(64, write=True, read=False), mem(64)])], "lea")

    # NEON vector forms.
    neon_int = [
        "add_v", "sub_v", "and_v", "orr_v", "eor_v", "bic_v", "orn_v",
        "sqadd_v", "uqadd_v", "sqsub_v", "uqsub_v",
        "smax_v", "smin_v", "umax_v", "umin_v", "addp_v",
    ]
    neon_int_unary = ["abs_v", "neg_v", "mvn_v"]
    neon_fp_add = ["fadd_v", "fsub_v", "fmax_v", "fmin_v", "fabd_v"]
    neon_fp_mul = ["fmul_v", "fmulx_v"]
    neon_fma = ["fmla_v", "fmls_v", "fmla_elem", "fmls_elem"]
    neon_shuffle = [
        "zip1", "zip2", "uzp1", "uzp2", "trn1", "trn2", "ext",
        "rev64_v", "tbl", "addv", "fmaxv",
    ]
    neon_cmp = [
        "cmeq_v", "cmgt_v", "cmge_v", "cmhi_v", "cmhs_v",
        "fcmeq_v", "fcmgt_v", "fcmge_v",
    ]
    neon_imul = ["mul_v", "sqdmulh_v"]
    neon_shift = ["shl_v", "sshr_v", "ushr_v", "sshl_v"]
    for w in vec_widths:
        _expand(isa, neon_int, [("vvv", _vv(w))], f"vec_logic@{w}")
        _expand(isa, neon_int_unary, [("vv", _vv2(w))], f"vec_logic@{w}")
        _expand(isa, neon_fp_add, [("vvv", _vv(w))], f"vec_fp_add@{w}")
        _expand(isa, neon_fp_mul, [("vvv", _vv(w))], f"vec_fp_mul@{w}")
        _expand(isa, neon_fma, [("vvv", _vv(w))], f"vec_fma@{w}")
        _expand(isa, neon_shuffle, [("vvv", _vv(w))], f"vec_shuffle@{w}")
        _expand(isa, ["dup_v", "ins_v"], [("vv", _vv2(w))], f"vec_shuffle@{w}")
        _expand(isa, neon_cmp, [("vvv", _vv(w))], f"vec_fp_add@{w}")
        _expand(isa, neon_imul, [("vvv", _vv(w))], f"vec_imul@{w}")
        _expand(isa, neon_shift, [("vvv", _vv(w))], f"vec_shift@{w}")
        _expand(isa, ["fneg_v", "fabs_v"], [("vv", _vv2(w))], f"vec_logic@{w}")
        _expand(isa, ["fdiv_v"], [("vvv", _vv(w))], f"vec_div@{w}")
        _expand(isa, ["fsqrt_v"], [("vv", _vv2(w))], f"vec_div@{w}")
        _expand(isa, ["frecpe_v", "frsqrte_v"], [("vv", _vv2(w))], f"vec_cvt@{w}")
        _expand(isa, ["scvtf_v", "fcvtzs_v", "ucvtf_v"], [("vv", _vv2(w))], f"vec_cvt@{w}")
        _expand(isa, ["ld1"], [("vm", [vec(w, write=True, read=False), mem(w)])], f"load_vec@{w}")
        _expand(isa, ["st1"], [("mv", [mem(w), vec(w)])], f"store_vec@{w}")
        _expand(
            isa,
            ["ld2"],
            [("vvm", [vec(w, write=True, read=False), vec(w, write=True, read=False), mem(w)])],
            f"load_interleave@{w}",
        )
        _expand(isa, ["st2"], [("mvv", [mem(w), vec(w), vec(w)])], f"store_interleave@{w}")
    # Cross-domain moves (GPR <-> SIMD).
    _expand(isa, ["umov"], [("rv", [gpr(64, write=True, read=False), vec(128)])], "mov_cross")
    _expand(isa, ["smov"], [("rv", [gpr(32, write=True, read=False), vec(128)])], "mov_cross")
    _expand(isa, ["dup_gpr"], [("vr", [vec(128, write=True, read=False), gpr(64)])], "mov_cross")

    # Scalar FP (on the vector pipes, like Cortex-A72); width-independent.
    for w in (32, 64):
        _expand(
            isa,
            ["fadd", "fsub", "fmax", "fmin", "fnmul_add"],
            [("vvv", _vv(w))],
            "fp_add",
        )
        _expand(isa, ["fmul", "fnmul"], [("vvv", _vv(w))], "fp_mul")
        _expand(
            isa,
            ["fmadd", "fmsub", "fnmadd", "fnmsub"],
            [("vvvv", [vec(w, write=True, read=False), vec(w), vec(w), vec(w)])],
            "fp_fma",
        )
        _expand(isa, ["fdiv"], [("vvv", _vv(w))], "fp_div")
        _expand(isa, ["fsqrt"], [("vv", _vv2(w))], "fp_div")
        _expand(
            isa,
            ["fcvt", "scvtf", "fcvtzs", "frintz", "frintp", "frintm"],
            [("vv", _vv2(w))],
            "fp_cvt",
        )
        _expand(isa, ["fmov", "fneg", "fabs"], [("vv", _vv2(w))], "fp_mov")
        _expand(isa, ["fcsel"], [("vvv", _vv(w))], "fp_mov")
        _expand(isa, ["ldr_fp", "ldur_fp"], [("vm", [vec(w, write=True, read=False), mem(w)])], "load_fp")
        _expand(isa, ["str_fp", "stur_fp"], [("mv", [mem(w), vec(w)])], "store_fp")
    return isa


def toy_isa(num_classes: int = 4, forms_per_class: int = 2) -> ISA:
    """A tiny synthetic ISA for tests and examples.

    Classes are named ``c0 .. c{n-1}``; forms ``c{i}_f{j}`` are plain
    two-operand register instructions.  Machine presets for toy machines
    assign decompositions per class.
    """
    isa = ISA("toy")
    for cls in range(num_classes):
        for j in range(forms_per_class):
            isa.add(
                make_form(
                    f"c{cls}op{j}",
                    _rr(64),
                    f"class{cls}",
                )
            )
    return isa
