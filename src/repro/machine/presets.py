"""Machine presets: SKL-, ZEN- and A72-like simulated processors.

These correspond to the paper's Table 1 machines.  They are **not** faithful
models of the commercial parts — we have neither the hardware nor the
proprietary documentation — but plausible cores with the same *structure*:

========  ======================  ============================  ==========
preset    paper machine           ports                         ISA
========  ======================  ============================  ==========
``skl``   Intel Core i7-6700      8 + DIV pipe (9 modeled)      x86-like
``zen``   AMD Ryzen 5 2600X       10 (4 ALU, 2 AGU, 4 FP)       x86-like
``a72``   RockChip RK3399 (A72)   7 (2 INT, M, LD, ST, 2 FP)    ARM-like
========  ======================  ============================  ==========

Structural features carried over from the real parts:

* SKL has a long-latency division pipe modeled as the extra ``DIV`` port
  (Section 5.1.1) and the quirky BTx family whose measured throughput
  exceeds what its published port usage implies (Section 5.3.1) — modeled
  as a hidden µop.
* ZEN executes 256-bit AVX as two 128-bit µops (double-pumping).
* A72 is a much narrower core: 3-wide dispatch, a small scheduler window
  (its "less advanced out-of-order execution engine", Section 5.3.2),
  128-bit NEON split into two 64-bit µops, and single load/store ports.
"""

from __future__ import annotations

from repro.core.errors import ISAError
from repro.core.isa import ISA
from repro.core.ports import PortSpace
from repro.machine.config import (
    BackendConfig,
    ExecutionClass,
    FrontendConfig,
    MachineConfig,
    UopSpec,
)
from repro.machine.isagen import arm_like_isa, toy_isa, x86_like_isa
from repro.machine.measurement import Machine, MeasurementConfig

__all__ = ["skl_machine", "zen_machine", "a72_machine", "toy_machine", "preset_machine", "PRESET_NAMES"]

PRESET_NAMES = ("SKL", "ZEN", "A72")


def _build_classes(
    isa: ISA,
    base_table: dict[str, ExecutionClass],
    double_widths: frozenset[int],
) -> dict[str, ExecutionClass]:
    """Expand width-tagged semantic classes against a base class table.

    For a class tag ``vec_fp_add@256`` the base entry ``vec_fp_add`` is
    looked up and its µop counts are doubled when 256 is in
    ``double_widths`` (double-pumped vector width).
    """
    classes: dict[str, ExecutionClass] = {}
    for form in isa:
        tag = form.semantic_class
        if tag in classes:
            continue
        if "@" in tag:
            base_name, width_text = tag.rsplit("@", 1)
            base = base_table.get(base_name)
            if base is None:
                raise ISAError(f"no execution class for {base_name!r} (tag {tag!r})")
            factor = 2 if int(width_text) in double_widths else 1
            classes[tag] = ExecutionClass(
                name=tag,
                uops=tuple(
                    UopSpec(u.ports, u.count * factor, u.block) for u in base.uops
                ),
                latency=base.latency,
                hidden_uops=tuple(
                    UopSpec(u.ports, u.count * factor, u.block)
                    for u in base.hidden_uops
                ),
            )
        else:
            base = base_table.get(tag)
            if base is None:
                raise ISAError(f"no execution class for semantic class {tag!r}")
            classes[tag] = base
    return classes


def _cls(
    name: str,
    uops: list[tuple[tuple[str, ...], int] | tuple[tuple[str, ...], int, int]],
    latency: int = 1,
    hidden: list[tuple[tuple[str, ...], int]] | None = None,
) -> ExecutionClass:
    """Terse execution-class constructor for the preset tables.

    Each µop entry is ``(ports, count)`` or ``(ports, count, block)``.
    """
    specs = tuple(
        UopSpec(ports=entry[0], count=entry[1], block=entry[2] if len(entry) > 2 else 1)
        for entry in uops
    )
    hidden_specs = tuple(UopSpec(ports=p, count=c) for p, c in (hidden or []))
    return ExecutionClass(name=name, uops=specs, latency=latency, hidden_uops=hidden_specs)


def skl_machine(
    isa: ISA | None = None, measurement: MeasurementConfig | None = None
) -> Machine:
    """The SKL-like preset: 8 execution ports plus a division pipe."""
    isa = isa or x86_like_isa()
    ports = PortSpace(["P0", "P1", "P2", "P3", "P4", "P5", "P6", "P7", "DIV"])
    alu = ("P0", "P1", "P5", "P6")
    shift = ("P0", "P6")
    load = ("P2", "P3")
    staddr = ("P2", "P3", "P7")
    stdata = ("P4",)
    vec3 = ("P0", "P1", "P5")
    vec2 = ("P0", "P1")

    base = {
        "int_alu": _cls("int_alu", [(alu, 1)], 1),
        "int_alu_load": _cls("int_alu_load", [(load, 1), (alu, 1)], 5),
        "int_shift": _cls("int_shift", [(shift, 1)], 1),
        # BTx quirk: published usage is one {P0,P6} µop, but the hardware
        # issues a second one, so measured throughput is twice the µop cost
        # the mapping implies (paper, Section 5.3.1).
        "bt": _cls("bt", [(shift, 1)], 1, hidden=[(shift, 1)]),
        "int_mul": _cls("int_mul", [(("P1",), 1)], 3),
        "int_div": _cls("int_div", [(("P0",), 1), (("DIV",), 1, 6)], 23),
        "lea": _cls("lea", [(("P1", "P5"), 1)], 1),
        "bit_count": _cls("bit_count", [(("P1",), 1)], 3),
        "cmov": _cls("cmov", [(shift, 1)], 1),
        "load_gpr": _cls("load_gpr", [(load, 1)], 4),
        "store_gpr": _cls("store_gpr", [(staddr, 1), (stdata, 1)], 1),
        "mov_cross": _cls("mov_cross", [(("P0",), 1)], 2),
        "vec_logic": _cls("vec_logic", [(vec3, 1)], 1),
        "vec_fp_add": _cls("vec_fp_add", [(vec2, 1)], 4),
        "vec_fp_mul": _cls("vec_fp_mul", [(vec2, 1)], 4),
        "vec_fma": _cls("vec_fma", [(vec2, 1)], 4),
        "vec_shuffle": _cls("vec_shuffle", [(("P5",), 1)], 1),
        "vec_blend": _cls("vec_blend", [(vec3, 1)], 1),
        "vec_imul": _cls("vec_imul", [(vec2, 1)], 5),
        "vec_shift": _cls("vec_shift", [(vec2, 1)], 1),
        "vec_hadd": _cls("vec_hadd", [(("P5",), 2), (vec2, 1)], 6),
        "vec_div": _cls("vec_div", [(("P0",), 1), (("DIV",), 1, 5)], 13),
        "vec_cvt": _cls("vec_cvt", [(vec2, 1)], 4),
        "load_vec": _cls("load_vec", [(load, 1)], 5),
        "store_vec": _cls("store_vec", [(staddr, 1), (stdata, 1)], 1),
        "vec_alu_load": _cls("vec_alu_load", [(load, 1), (vec3, 1)], 5),
    }
    config = MachineConfig(
        name="SKL",
        ports=ports,
        isa=isa,
        classes=_build_classes(isa, base, frozenset()),
        frontend=FrontendConfig(dispatch_width=6, decode_width=4, uop_cache_size=1536),
        backend=BackendConfig(scheduler_window=97, rob_size=224, retire_width=4),
        clock_ghz=3.4,
    )
    return Machine(config, measurement)


def zen_machine(
    isa: ISA | None = None, measurement: MeasurementConfig | None = None
) -> Machine:
    """The ZEN-like preset: 10 ports, double-pumped 256-bit vectors."""
    isa = isa or x86_like_isa()
    ports = PortSpace(["A0", "A1", "A2", "A3", "G0", "G1", "F0", "F1", "F2", "F3"])
    alu = ("A0", "A1", "A2", "A3")
    agu = ("G0", "G1")

    base = {
        "int_alu": _cls("int_alu", [(alu, 1)], 1),
        "int_alu_load": _cls("int_alu_load", [(agu, 1), (alu, 1)], 5),
        "int_shift": _cls("int_shift", [(("A1", "A2"), 1)], 1),
        "bt": _cls("bt", [(("A0", "A3"), 1)], 1),
        "int_mul": _cls("int_mul", [(("A1",), 1)], 3),
        "int_div": _cls("int_div", [(("A2",), 1, 14)], 30),
        "lea": _cls("lea", [(("A0", "A1"), 1)], 1),
        "bit_count": _cls("bit_count", [(("A0", "A3"), 1)], 1),
        "cmov": _cls("cmov", [(alu, 1)], 1),
        "load_gpr": _cls("load_gpr", [(agu, 1)], 4),
        "store_gpr": _cls("store_gpr", [(agu, 1)], 1),
        "mov_cross": _cls("mov_cross", [(("F2",), 1)], 3),
        "vec_logic": _cls("vec_logic", [(("F0", "F1", "F2", "F3"), 1)], 1),
        "vec_fp_add": _cls("vec_fp_add", [(("F2", "F3"), 1)], 3),
        "vec_fp_mul": _cls("vec_fp_mul", [(("F0", "F1"), 1)], 3),
        "vec_fma": _cls("vec_fma", [(("F0", "F1"), 1)], 5),
        "vec_shuffle": _cls("vec_shuffle", [(("F1", "F2"), 1)], 1),
        "vec_blend": _cls("vec_blend", [(("F0", "F2"), 1)], 1),
        "vec_imul": _cls("vec_imul", [(("F0",), 1)], 4),
        "vec_shift": _cls("vec_shift", [(("F1", "F2"), 1)], 1),
        "vec_hadd": _cls("vec_hadd", [(("F1", "F2"), 2), (("F2", "F3"), 1)], 6),
        "vec_div": _cls("vec_div", [(("F3",), 1, 10)], 13),
        "vec_cvt": _cls("vec_cvt", [(("F3",), 1)], 4),
        "load_vec": _cls("load_vec", [(agu, 1)], 5),
        "store_vec": _cls("store_vec", [(agu, 1), (("F2",), 1)], 1),
        "vec_alu_load": _cls("vec_alu_load", [(agu, 1), (("F0", "F1", "F2", "F3"), 1)], 5),
    }
    config = MachineConfig(
        name="ZEN",
        ports=ports,
        isa=isa,
        classes=_build_classes(isa, base, frozenset({256})),
        frontend=FrontendConfig(dispatch_width=6, decode_width=4, uop_cache_size=1024),
        backend=BackendConfig(scheduler_window=84, rob_size=192, retire_width=5),
        clock_ghz=3.6,
    )
    return Machine(config, measurement)


def a72_machine(
    isa: ISA | None = None, measurement: MeasurementConfig | None = None
) -> Machine:
    """The A72-like preset: a narrow 7-port core with a weak OOO engine.

    The small scheduler window and 3-wide dispatch reproduce the paper's
    observation that A72 experiments are "less representative for the port
    mapping" (Section 5.3.2): longer experiments under-run the analytical
    model's optimal schedule.
    """
    isa = isa or arm_like_isa()
    ports = PortSpace(["I0", "I1", "M", "L", "S", "F0", "F1"])
    ints = ("I0", "I1")
    fps = ("F0", "F1")

    base = {
        "int_alu": _cls("int_alu", [(ints, 1)], 1),
        "int_alu_shift": _cls("int_alu_shift", [(("M",), 1)], 2),
        "int_shift": _cls("int_shift", [(ints, 1)], 1),
        "cmov": _cls("cmov", [(ints, 1)], 1),
        "bit_count": _cls("bit_count", [(ints, 1)], 1),
        "int_mul": _cls("int_mul", [(("M",), 1)], 3),
        "int_madd": _cls("int_madd", [(("M",), 1)], 3),
        "int_div": _cls("int_div", [(("M",), 1, 12)], 18),
        "lea": _cls("lea", [(ints, 1)], 1),
        "load_gpr": _cls("load_gpr", [(("L",), 1)], 4),
        "store_gpr": _cls("store_gpr", [(("S",), 1)], 1),
        "load_pair": _cls("load_pair", [(("L",), 2)], 4),
        "store_pair": _cls("store_pair", [(("S",), 2)], 1),
        "mov_cross": _cls("mov_cross", [(("F1",), 1)], 3),
        "vec_logic": _cls("vec_logic", [(fps, 1)], 1),
        "vec_fp_add": _cls("vec_fp_add", [(fps, 1)], 4),
        "vec_fp_mul": _cls("vec_fp_mul", [(("F0",), 1)], 4),
        "vec_fma": _cls("vec_fma", [(("F0",), 1)], 7),
        "vec_shuffle": _cls("vec_shuffle", [(("F1",), 1)], 3),
        "vec_imul": _cls("vec_imul", [(("F0",), 1)], 4),
        "vec_shift": _cls("vec_shift", [(("F1",), 1)], 3),
        "vec_div": _cls("vec_div", [(("F0",), 1, 10)], 12),
        "vec_cvt": _cls("vec_cvt", [(("F1",), 1)], 4),
        "load_vec": _cls("load_vec", [(("L",), 1)], 5),
        "store_vec": _cls("store_vec", [(("S",), 1)], 1),
        "load_interleave": _cls("load_interleave", [(("L",), 1), (("F1",), 1)], 6),
        "store_interleave": _cls("store_interleave", [(("S",), 1), (("F1",), 1)], 2),
        "fp_add": _cls("fp_add", [(fps, 1)], 4),
        "fp_mul": _cls("fp_mul", [(("F0",), 1)], 4),
        "fp_fma": _cls("fp_fma", [(("F0",), 1)], 7),
        "fp_div": _cls("fp_div", [(("F0",), 1, 8)], 11),
        "fp_cvt": _cls("fp_cvt", [(("F1",), 1)], 4),
        "fp_mov": _cls("fp_mov", [(fps, 1)], 1),
        "load_fp": _cls("load_fp", [(("L",), 1)], 5),
        "store_fp": _cls("store_fp", [(("S",), 1)], 1),
    }
    config = MachineConfig(
        name="A72",
        ports=ports,
        isa=isa,
        classes=_build_classes(isa, base, frozenset({128})),
        frontend=FrontendConfig(dispatch_width=3, decode_width=3, uop_cache_size=0),
        backend=BackendConfig(scheduler_window=20, rob_size=64, retire_width=3),
        clock_ghz=1.8,
    )
    return Machine(config, measurement)


def toy_machine(
    num_ports: int = 3,
    isa: ISA | None = None,
    measurement: MeasurementConfig | None = None,
) -> Machine:
    """A tiny machine over :func:`repro.machine.isagen.toy_isa`.

    Classes rotate through simple port sets, giving a machine small enough
    for exhaustive reasoning in tests and the quickstart example.
    """
    isa = isa or toy_isa()
    ports = PortSpace.numbered(num_ports)
    classes: dict[str, ExecutionClass] = {}
    tags = sorted({form.semantic_class for form in isa})
    for index, tag in enumerate(tags):
        low = index % num_ports
        high = (index + 1) % num_ports
        if index % 3 == 2:
            uops = [((ports.names[low],), 1), ((ports.names[high],), 1)]
        elif index % 3 == 1:
            uops = [(tuple(sorted({ports.names[low], ports.names[high]})), 1)]
        else:
            uops = [((ports.names[low],), 1)]
        classes[tag] = _cls(tag, uops, latency=1 + (index % 2))
    config = MachineConfig(
        name=f"TOY{num_ports}",
        ports=ports,
        isa=isa,
        classes=classes,
        frontend=FrontendConfig(dispatch_width=4, decode_width=3, uop_cache_size=512),
        backend=BackendConfig(scheduler_window=40, rob_size=96, retire_width=4),
        clock_ghz=2.0,
    )
    return Machine(config, measurement)


def preset_machine(name: str, measurement: MeasurementConfig | None = None) -> Machine:
    """Look up a preset machine by its Table 1 name (``SKL``/``ZEN``/``A72``)."""
    table = {"SKL": skl_machine, "ZEN": zen_machine, "A72": a72_machine}
    try:
        factory = table[name.upper()]
    except KeyError:
        raise ISAError(f"unknown machine preset {name!r}; have {sorted(table)}") from None
    return factory(measurement=measurement)
