"""Steady-state throughput measurement (Definition 1, Section 4.2).

:class:`Machine` wraps a simulated processor behind the *only* interface the
inference pipeline may use: "give me the steady-state cycles per iteration
for this experiment".  The measurement procedure follows the paper:

1. instantiate the experiment's instruction forms with operands from the
   dependency-avoiding register allocator,
2. unroll to ~50 instructions so the loop is µop-cache resident and loop
   overhead is negligible,
3. run until steady state — implemented by simulating a short and a long
   run and differencing the cycle counts, which cancels warm-up and drain
   exactly,
4. convert to wall time at the configured clock, apply measurement noise
   (clock jitter plus occasional interference spikes), convert back via
   ``t* = time × frequency / #instances`` and report the **median** over
   several repetitions, like the paper does to tame frequency fluctuations.

Measurements are memoized per experiment: re-measuring the same multiset
returns the same value, as the pipeline assumes.
"""

from __future__ import annotations

import hashlib
import statistics
from dataclasses import dataclass

import numpy as np

from repro.codegen.loop import TARGET_BODY_LENGTH, build_loop_body
from repro.codegen.regalloc import AllocationConfig
from repro.core.errors import MeasurementError
from repro.core.experiment import Experiment, ExperimentSet
from repro.core.isa import ISA
from repro.core.mapping import ThreeLevelMapping
from repro.machine.config import MachineConfig
from repro.machine.processor import Processor

__all__ = ["MeasurementConfig", "Machine"]


@dataclass(frozen=True)
class MeasurementConfig:
    """Knobs of the measurement harness.

    ``jitter_sigma`` is the relative standard deviation of the multiplicative
    timing noise; ``spike_probability``/``spike_scale`` model occasional slow
    runs from interference, which the median over ``repetitions`` suppresses.
    Setting ``noisy=False`` disables all noise (useful for tests).
    """

    warmup_iterations: int = 6
    measure_iterations: int = 10
    repetitions: int = 5
    jitter_sigma: float = 0.004
    spike_probability: float = 0.03
    spike_scale: float = 1.25
    target_body_length: int = TARGET_BODY_LENGTH
    noisy: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.warmup_iterations < 1 or self.measure_iterations < 1:
            raise MeasurementError("iteration counts must be at least 1")
        if self.repetitions < 1:
            raise MeasurementError("need at least one repetition")
        if not 0.0 <= self.spike_probability < 1.0:
            raise MeasurementError("spike probability must be in [0, 1)")


class Machine:
    """A processor under test, observable only through timing.

    Parameters
    ----------
    config:
        The (hidden) machine description.
    measurement:
        Measurement harness configuration.
    allocation:
        Register-file shape for operand allocation; defaults are appropriate
        for the bundled presets.
    """

    def __init__(
        self,
        config: MachineConfig,
        measurement: MeasurementConfig | None = None,
        allocation: AllocationConfig | None = None,
    ):
        self.config = config
        self.measurement = measurement or MeasurementConfig()
        self.allocation = allocation
        self.processor = Processor(config)
        self._cache: dict[Experiment, float] = {}
        self.simulated_instructions = 0

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def isa(self) -> ISA:
        return self.config.isa

    def ground_truth_mapping(self) -> ThreeLevelMapping:
        """The published ground-truth mapping (for validation/baselines only).

        The inference pipeline must never call this; it exists so the
        evaluation can compare against a uops.info-style oracle.
        """
        return self.config.ground_truth_mapping()

    # -- core measurement --------------------------------------------------

    def _steady_state_cycles(self, experiment: Experiment) -> float:
        """Noise-free steady-state cycles per experiment instance."""
        body, unroll = build_loop_body(
            self.config.isa,
            experiment,
            target_length=self.measurement.target_body_length,
            allocation=self.allocation,
        )
        warm = self.measurement.warmup_iterations
        long = warm + self.measurement.measure_iterations
        short_run = self.processor.run(body, iterations=warm)
        long_run = self.processor.run(body, iterations=long)
        self.simulated_instructions += short_run.instructions + long_run.instructions
        delta_cycles = long_run.cycles - short_run.cycles
        if delta_cycles <= 0:
            raise MeasurementError(
                f"non-positive steady-state cycle delta for {experiment!r}"
            )
        per_iteration = delta_cycles / self.measurement.measure_iterations
        return per_iteration / unroll

    def _noise_rng(self, experiment: Experiment) -> np.random.Generator:
        """Noise generator derived from (seed, experiment).

        Seeding per experiment — instead of drawing from one shared stream —
        makes a measurement's noise independent of *measurement order*, like
        re-running a benchmark on hardware: the same experiment on the same
        machine yields the same reading no matter what ran before it.
        """
        digest = hashlib.sha256(repr(tuple(experiment)).encode()).digest()
        return np.random.default_rng(
            (self.measurement.seed, int.from_bytes(digest[:8], "little"))
        )

    def measure(self, experiment: Experiment) -> float:
        """Measured throughput t*(e) in cycles per experiment instance.

        Applies the timing-noise model and reports the median over the
        configured repetitions; results are memoized.
        """
        cached = self._cache.get(experiment)
        if cached is not None:
            return cached
        true_cycles = self._steady_state_cycles(experiment)
        if not self.measurement.noisy:
            self._cache[experiment] = true_cycles
            return true_cycles

        rng = self._noise_rng(experiment)
        samples = []
        for _ in range(self.measurement.repetitions):
            time = true_cycles / self.config.clock_ghz  # arbitrary time unit
            time *= 1.0 + rng.normal(0.0, self.measurement.jitter_sigma)
            if rng.random() < self.measurement.spike_probability:
                time *= self.measurement.spike_scale
            samples.append(max(time * self.config.clock_ghz, 1e-9))
        value = float(statistics.median(samples))
        self._cache[experiment] = value
        return value

    def measure_many(self, experiments: list[Experiment]) -> ExperimentSet:
        """Measure a list of experiments into an :class:`ExperimentSet`."""
        result = ExperimentSet()
        for experiment in experiments:
            result.add(experiment, self.measure(experiment))
        return result

    def calibrate(
        self,
        probe: Experiment | None = None,
        stability: float = 0.01,
        max_iterations: int = 64,
    ) -> "Machine":
        """Choose the measurement length empirically (Section 4.2).

        The paper picks the loop bound "to ensure that the loop runs for a
        specific time that guarantees steady-state execution", with that
        time "estimated empirically for the processor under test by
        comparing the measurement stability for different times".  This
        method reproduces the procedure: starting from the configured
        ``measure_iterations``, it doubles the measured iteration count
        until two consecutive lengths agree to within ``stability``
        (relative), then returns a new :class:`Machine` configured with
        the first stable length.  The returned machine shares nothing with
        this one (fresh cache and RNG).
        """
        if not 0.0 < stability < 1.0:
            raise MeasurementError(f"stability must be in (0, 1), got {stability}")
        if probe is None:
            probe = Experiment({self.config.isa.names[0]: 1})

        def cycles_at(measure_iterations: int) -> float:
            trial = Machine(
                self.config,
                MeasurementConfig(
                    warmup_iterations=self.measurement.warmup_iterations,
                    measure_iterations=measure_iterations,
                    repetitions=1,
                    noisy=False,
                    target_body_length=self.measurement.target_body_length,
                ),
                allocation=self.allocation,
            )
            return trial.measure(probe)

        iterations = self.measurement.measure_iterations
        previous = cycles_at(iterations)
        while iterations * 2 <= max_iterations:
            current = cycles_at(iterations * 2)
            if abs(current - previous) <= stability * max(previous, 1e-12):
                break
            previous = current
            iterations *= 2
        else:
            raise MeasurementError(
                f"measurements did not stabilize within {max_iterations} iterations"
            )
        calibrated = MeasurementConfig(
            warmup_iterations=self.measurement.warmup_iterations,
            measure_iterations=iterations,
            repetitions=self.measurement.repetitions,
            jitter_sigma=self.measurement.jitter_sigma,
            spike_probability=self.measurement.spike_probability,
            spike_scale=self.measurement.spike_scale,
            target_body_length=self.measurement.target_body_length,
            noisy=self.measurement.noisy,
            seed=self.measurement.seed,
        )
        return Machine(self.config, calibrated, allocation=self.allocation)

    # -- convenience -------------------------------------------------------

    def peak_ipc(self) -> float:
        """Upper bound on sustained instructions per cycle (port count)."""
        return float(self.config.ports.num_ports)

    def describe(self) -> str:
        """Short human-readable summary (used by the Table 1 bench)."""
        cfg = self.config
        return (
            f"{cfg.name}: {cfg.ports.num_ports} ports {list(cfg.ports.names)}, "
            f"{len(cfg.isa)} instruction forms, {cfg.clock_ghz:.1f} GHz, "
            f"window={cfg.backend.scheduler_window}, "
            f"dispatch={cfg.frontend.dispatch_width}"
        )

    def __repr__(self) -> str:
        return f"Machine({self.config.name!r})"
