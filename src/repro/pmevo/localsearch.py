"""Greedy hill-climbing local search (Section 4.4).

After the evolution terminates, PMEvo "employs a greedy hill-climbing
algorithm to move from the found solutions to a local optimum ...  It
incrementally adjusts the number n of µop occurrences for each edge
``(i, n, u)`` and keeps the changes to the port mapping if it is fitter
than before."

Fitter, outside a population, means lexicographic improvement: first a
strictly smaller ``D_avg`` (beyond a small tolerance), then — at equal
accuracy — a smaller µop volume.  Decrementing a multiplicity to zero
removes the edge (if the instruction keeps at least one µop), which is how
the search also prunes superfluous µops.
"""

from __future__ import annotations

from repro.pmevo.population import Genome, copy_genome, genome_volume
from repro.throughput.batched import BatchedThroughputEvaluator

__all__ = ["local_search"]

#: D_avg improvements below this are treated as noise (ties break on volume).
_DAVG_TOLERANCE = 1e-9


def _better(
    davg_new: float, volume_new: float, davg_old: float, volume_old: float
) -> bool:
    if davg_new < davg_old - _DAVG_TOLERANCE:
        return True
    if davg_new <= davg_old + _DAVG_TOLERANCE and volume_new < volume_old:
        return True
    return False


def local_search(
    evaluator: BatchedThroughputEvaluator,
    genome: Genome,
    max_rounds: int = 4,
) -> tuple[Genome, float]:
    """Hill-climb µop multiplicities; returns (improved genome, its D_avg).

    One round visits every edge once, trying ``n+1`` and ``n-1`` (the latter
    removing the edge at ``n == 1`` when legal).  Rounds repeat until a full
    round finds no improvement or ``max_rounds`` is reached.
    """
    current = copy_genome(genome)
    current_davg = float(evaluator.davg(current))
    current_volume = float(genome_volume(current))

    for _ in range(max_rounds):
        improved = False
        for name in sorted(current.keys()):
            for mask in sorted(current[name].keys()):
                count = current[name].get(mask)
                if count is None:
                    continue  # removed by an earlier move in this round
                for delta in (+1, -1):
                    new_count = count + delta
                    if new_count < 0:
                        continue
                    if new_count == 0 and len(current[name]) == 1:
                        continue  # would leave the instruction without µops
                    candidate = copy_genome(current)
                    if new_count == 0:
                        del candidate[name][mask]
                    else:
                        candidate[name][mask] = new_count
                    davg = float(evaluator.davg(candidate))
                    volume = float(genome_volume(candidate))
                    if _better(davg, volume, current_davg, current_volume):
                        current = candidate
                        current_davg = davg
                        current_volume = volume
                        improved = True
                        break
        if not improved:
            break
    return current, current_davg
