"""The PMEvo inference pipeline (Figure 5 of the paper)."""

from repro.pmevo.congruence import (
    CongruencePartition,
    find_congruence_classes,
    throughputs_equal,
)
from repro.pmevo.evolution import (
    EvolutionConfig,
    EvolutionResult,
    EvolutionState,
    GenerationStats,
    PortMappingEvolver,
)
from repro.pmevo.checkpoint import (
    CheckpointSnapshot,
    Checkpointer,
    load_checkpoint,
    previous_path,
    write_checkpoint,
)
from repro.pmevo.faults import FaultySocket, FaultyTransport
from repro.pmevo.islands import (
    IslandEvolver,
    IslandResult,
    default_transport,
    derive_island_rngs,
    migrate_ring,
)
from repro.pmevo.transport import (
    MigrationTransport,
    PoolTransport,
    SerialTransport,
    SocketTransport,
    backoff_delays,
    run_worker,
)
from repro.pmevo.expgen import (
    full_experiment_plan,
    pair_experiments,
    random_experiments,
    singleton_experiments,
)
from repro.pmevo.fitness import ObjectiveValues, normalize_objective, scalarized_fitness
from repro.pmevo.localsearch import local_search
from repro.pmevo.operators import mutate, recombine
from repro.pmevo.packed import PackedPopulation
from repro.pmevo.pipeline import PMEvoConfig, PMEvoResult, infer_port_mapping
from repro.pmevo.population import (
    Genome,
    genome_to_mapping,
    genome_volume,
    random_genome,
    random_population,
)

__all__ = [
    "singleton_experiments",
    "pair_experiments",
    "full_experiment_plan",
    "random_experiments",
    "CongruencePartition",
    "find_congruence_classes",
    "throughputs_equal",
    "EvolutionConfig",
    "EvolutionResult",
    "EvolutionState",
    "GenerationStats",
    "PortMappingEvolver",
    "IslandEvolver",
    "IslandResult",
    "derive_island_rngs",
    "migrate_ring",
    "default_transport",
    "MigrationTransport",
    "SerialTransport",
    "PoolTransport",
    "SocketTransport",
    "run_worker",
    "backoff_delays",
    "Checkpointer",
    "CheckpointSnapshot",
    "load_checkpoint",
    "write_checkpoint",
    "previous_path",
    "FaultySocket",
    "FaultyTransport",
    "ObjectiveValues",
    "normalize_objective",
    "scalarized_fitness",
    "local_search",
    "recombine",
    "mutate",
    "Genome",
    "PackedPopulation",
    "random_genome",
    "random_population",
    "genome_volume",
    "genome_to_mapping",
    "PMEvoConfig",
    "PMEvoResult",
    "infer_port_mapping",
]
