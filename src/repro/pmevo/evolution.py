"""The evolutionary algorithm (Algorithm 1 of the paper).

Structure::

    initialize population randomly
    while not done:
        apply evolutionary operators       (recombination; mutation is an
        evaluate fitness                    ablation-only option)
        select new population
    perform local search
    return fittest individual

Fitness evaluation is the hot loop; candidates are evaluated in batches via
:class:`repro.throughput.BatchedThroughputEvaluator` (the vectorized
bottleneck simulation algorithm).  Termination: the population's objectives
have converged to a single value, the best candidate stopped improving for
``patience`` generations, or ``max_generations`` is reached.
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import InferenceError
from repro.core.experiment import ExperimentSet
from repro.core.mapping import ThreeLevelMapping
from repro.core.ports import PortSpace
from repro.pmevo.fitness import scalarized_fitness
from repro.pmevo.localsearch import local_search
from repro.pmevo.operators import mutate, recombine
from repro.pmevo.population import (
    Genome,
    genome_key,
    genome_to_mapping,
    genome_volume,
    random_population,
)
from repro.throughput.batched import BatchedThroughputEvaluator

__all__ = ["EvolutionConfig", "GenerationStats", "EvolutionResult", "PortMappingEvolver"]


@dataclass(frozen=True)
class EvolutionConfig:
    """Hyper-parameters of the evolutionary algorithm.

    ``population_size`` is the paper's ``p``: each generation creates ``p``
    children and selects the best ``p`` of the combined ``2p`` candidates.
    ``mutation_rate > 0`` enables the ablation-only mutation operator.
    """

    population_size: int = 100
    max_generations: int = 150
    patience: int = 25
    convergence_tolerance: float = 1e-9
    mutation_rate: float = 0.0
    local_search_rounds: int = 2
    seed: int = 0
    batch_chunk: int = 16

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise InferenceError("population size must be at least 2")
        if self.max_generations < 1:
            raise InferenceError("need at least one generation")
        if self.batch_chunk < 1:
            raise InferenceError("batch chunk must be positive")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise InferenceError("mutation rate must be in [0, 1]")


@dataclass(frozen=True)
class GenerationStats:
    """Objective summary of one generation (after selection)."""

    generation: int
    best_davg: float
    median_davg: float
    best_volume: float
    evaluations: int


@dataclass
class EvolutionResult:
    """Outcome of one evolutionary inference run."""

    mapping: ThreeLevelMapping
    genome: Genome
    davg: float
    volume: int
    generations: int
    evaluations: int
    wall_seconds: float
    history: list[GenerationStats] = field(default_factory=list)
    converged: bool = False


class PortMappingEvolver:
    """Runs the evolutionary search for one machine's experiment data.

    Parameters
    ----------
    ports:
        The port space candidates map onto (the user supplies |P|,
        Section 4.4: "The sets I of Instructions and P of Ports are given
        by the user").
    measurements:
        Measured experiments over the (congruence-filtered) instruction
        universe.
    singleton_throughputs:
        Measured individual throughputs, used by initialization bounds.
    config:
        Hyper-parameters.
    """

    def __init__(
        self,
        ports: PortSpace,
        measurements: ExperimentSet,
        singleton_throughputs: Mapping[str, float],
        config: EvolutionConfig | None = None,
    ):
        self.ports = ports
        self.config = config or EvolutionConfig()
        self.names: tuple[str, ...] = tuple(measurements.instruction_names())
        if not self.names:
            raise InferenceError("measurement set covers no instructions")
        missing = [n for n in self.names if n not in singleton_throughputs]
        if missing:
            raise InferenceError(f"missing singleton throughputs for {missing}")
        self.singleton_throughputs = dict(singleton_throughputs)
        self.evaluator = BatchedThroughputEvaluator(
            measurements, self.names, ports.num_ports
        )
        self._rng = np.random.default_rng(self.config.seed)
        self.evaluations = 0

    # -- evaluation --------------------------------------------------------

    def _evaluate(self, genomes: Sequence[Genome]) -> tuple[np.ndarray, np.ndarray]:
        """(D_avg, volume) arrays for a batch of genomes."""
        davgs = np.empty(len(genomes))
        volumes = np.empty(len(genomes))
        chunk = self.config.batch_chunk
        for start in range(0, len(genomes), chunk):
            part = genomes[start : start + chunk]
            matrices = np.stack([self.evaluator.uop_matrix(g) for g in part])
            predicted = self.evaluator.throughputs_from_matrices(matrices)
            davgs[start : start + len(part)] = self.evaluator.davg_from_throughputs(
                predicted
            )
        for i, genome in enumerate(genomes):
            volumes[i] = genome_volume(genome)
        self.evaluations += len(genomes)
        return davgs, volumes

    # -- main loop ----------------------------------------------------------

    def run(self) -> EvolutionResult:
        """Execute Algorithm 1 and return the fittest mapping found."""
        start_time = time.perf_counter()
        config = self.config
        p = config.population_size

        population = random_population(
            self._rng, p, self.names, self.ports.num_ports, self.singleton_throughputs
        )
        davgs, volumes = self._evaluate(population)

        history: list[GenerationStats] = []
        best_key: tuple[float, float] | None = None
        stale = 0
        generation = 0
        converged = False

        for generation in range(1, config.max_generations + 1):
            children: list[Genome] = []
            while len(children) < p:
                i = int(self._rng.integers(0, p))
                j = int(self._rng.integers(0, p))
                child_a, child_b = recombine(self._rng, population[i], population[j])
                children.append(child_a)
                if len(children) < p:
                    children.append(child_b)
            if config.mutation_rate > 0.0:
                children = [
                    mutate(
                        self._rng,
                        child,
                        self.ports.num_ports,
                        self.singleton_throughputs,
                        rate=config.mutation_rate,
                    )
                    for child in children
                ]

            child_davgs, child_volumes = self._evaluate(children)
            all_genomes = population + children
            all_davgs = np.concatenate([davgs, child_davgs])
            all_volumes = np.concatenate([volumes, child_volumes])

            fitness = scalarized_fitness(all_davgs, all_volumes)
            ranked = np.argsort(fitness, kind="stable")
            # Selection with deduplication: at the paper's population size
            # (100 000) duplicate genomes are statistically irrelevant, but
            # at our scaled-down sizes they flood the selection and collapse
            # diversity within a few generations.  Preferring distinct
            # genomes (falling back to duplicates only when there are not
            # enough) keeps the algorithm otherwise unchanged.
            selected: list[int] = []
            seen_keys: set[tuple] = set()
            duplicates: list[int] = []
            for index in ranked:
                key = genome_key(all_genomes[index])
                if key in seen_keys:
                    duplicates.append(int(index))
                    continue
                seen_keys.add(key)
                selected.append(int(index))
                if len(selected) == p:
                    break
            if len(selected) < p:
                selected.extend(duplicates[: p - len(selected)])
            order = np.array(selected)
            population = [all_genomes[i] for i in order]
            davgs = all_davgs[order]
            volumes = all_volumes[order]

            history.append(
                GenerationStats(
                    generation=generation,
                    best_davg=float(davgs.min()),
                    median_davg=float(np.median(davgs)),
                    best_volume=float(volumes[int(np.argmin(davgs))]),
                    evaluations=self.evaluations,
                )
            )

            # Convergence: the whole population collapsed to one objective
            # point, or the best candidate stagnated for `patience` rounds.
            davg_span = float(davgs.max() - davgs.min())
            volume_span = float(volumes.max() - volumes.min())
            if davg_span <= config.convergence_tolerance and volume_span == 0.0:
                converged = True
                break
            key = (round(float(davgs.min()), 12), float(volumes[int(np.argmin(davgs))]))
            if best_key is not None and key >= best_key:
                stale += 1
                if stale >= config.patience:
                    break
            else:
                stale = 0
                best_key = key

        # Pick the best individual by (D_avg, volume) lexicographically —
        # the scalarization is only meaningful within one generation.
        best_index = int(np.lexsort((volumes, davgs))[0])
        best_genome = population[best_index]

        if config.local_search_rounds > 0:
            best_genome, _ = local_search(
                self.evaluator,
                best_genome,
                max_rounds=config.local_search_rounds,
            )

        final_davg = float(self.evaluator.davg(best_genome))
        result = EvolutionResult(
            mapping=genome_to_mapping(self.ports, best_genome),
            genome=best_genome,
            davg=final_davg,
            volume=genome_volume(best_genome),
            generations=generation,
            evaluations=self.evaluations,
            wall_seconds=time.perf_counter() - start_time,
            history=history,
            converged=converged,
        )
        return result
