"""The evolutionary algorithm (Algorithm 1 of the paper).

Structure::

    initialize population randomly
    while not done:
        apply evolutionary operators       (recombination; mutation is an
        evaluate fitness                    ablation-only option)
        select new population
    perform local search
    return fittest individual

Fitness evaluation is the hot loop; candidates are evaluated in batches via
:class:`repro.throughput.BatchedThroughputEvaluator` (the vectorized
bottleneck simulation algorithm).  Termination: the population's objectives
have converged to a single value, the best candidate stopped improving for
``patience`` generations, or ``max_generations`` is reached.

The loop is factored into a resumable state machine (:class:`EvolutionState`
plus :meth:`PortMappingEvolver.init_state` / :meth:`PortMappingEvolver.advance`)
so that the island model (:mod:`repro.pmevo.islands`) can interleave epochs of
several populations with migration; :meth:`PortMappingEvolver.run` is the
single-population composition of those primitives.

Serialization
-------------
:class:`EvolutionState` round-trips through JSON (:meth:`EvolutionState.to_json`
/ :meth:`EvolutionState.from_json`): the population, the objective arrays, the
generation counters, *and the numpy bit-generator state* are all captured, so
a deserialized state continues bit-identically to the original.  The
population travels as a base64-armoured compressed npz of its
:class:`~repro.pmevo.packed.PackedPopulation` form — a fraction of the size
of the old per-genome JSON dicts, which is what the migration transports and
checkpoints ship per epoch (legacy list-shaped payloads still deserialize).
This single codec underlies both the socket migration transport
(:mod:`repro.pmevo.transport`) and checkpoint/resume
(:mod:`repro.pmevo.checkpoint`).  Malformed payloads raise
:class:`repro.core.errors.CheckpointError`.
"""

from __future__ import annotations

import dataclasses
import json
import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import CheckpointError, InferenceError
from repro.core.experiment import ExperimentSet
from repro.core.mapping import ThreeLevelMapping
from repro.core.ports import PortSpace
from repro.pmevo.fitness import scalarized_fitness
from repro.pmevo.localsearch import local_search
from repro.pmevo.operators import mutate, recombine
from repro.pmevo.packed import PackedPopulation
from repro.pmevo.population import (
    Genome,
    genome_from_jsonable,
    genome_key,
    genome_to_mapping,
    genome_volume,
    random_population,
)
from repro.throughput.batched import BatchedThroughputEvaluator

__all__ = [
    "EvolutionConfig",
    "GenerationStats",
    "EvolutionResult",
    "EvolutionState",
    "PortMappingEvolver",
    "config_to_jsonable",
    "config_from_jsonable",
    "history_to_jsonable",
    "history_from_jsonable",
]


@dataclass(frozen=True)
class EvolutionConfig:
    """Hyper-parameters of the evolutionary algorithm.

    ``population_size`` is the paper's ``p``: each generation creates ``p``
    children and selects the best ``p`` of the combined ``2p`` candidates.
    ``mutation_rate > 0`` enables the ablation-only mutation operator.

    The island-model knobs (all inert at their defaults) configure
    :class:`repro.pmevo.islands.IslandEvolver`: ``islands`` independent
    populations of ``population_size`` each, ``workers`` processes evaluating
    them concurrently, and every ``migration_interval`` generations each
    island sends its ``migration_size`` best genomes to its ring successor.
    """

    population_size: int = 100
    max_generations: int = 150
    patience: int = 25
    convergence_tolerance: float = 1e-9
    mutation_rate: float = 0.0
    local_search_rounds: int = 2
    seed: int = 0
    batch_chunk: int = 16
    islands: int = 1
    workers: int = 1
    migration_interval: int = 10
    migration_size: int = 2
    #: Stop as soon as the best D_avg reaches this value (time-to-target
    #: experiments); ``None`` disables the criterion.
    target_davg: float | None = None

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise InferenceError("population size must be at least 2")
        if self.max_generations < 1:
            raise InferenceError("need at least one generation")
        if self.batch_chunk < 1:
            raise InferenceError("batch chunk must be positive")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise InferenceError("mutation rate must be in [0, 1]")
        if self.islands < 1:
            raise InferenceError("need at least one island")
        if self.workers < 1:
            raise InferenceError("need at least one worker")
        if self.migration_interval < 1:
            raise InferenceError("migration interval must be positive")
        if self.migration_size < 0:
            raise InferenceError("migration size must be non-negative")
        # Only constrain migration against the population when migration can
        # actually happen — a single-population config must stay valid
        # whatever the (inert) migration defaults are.
        if self.islands > 1 and self.migration_size >= self.population_size:
            raise InferenceError(
                "migration size must be smaller than the island population"
            )


def config_to_jsonable(config: EvolutionConfig) -> dict:
    """JSON-safe dict form of an :class:`EvolutionConfig`."""
    return dataclasses.asdict(config)


def config_from_jsonable(data: Mapping) -> EvolutionConfig:
    """Rebuild an :class:`EvolutionConfig` from :func:`config_to_jsonable` output.

    Unknown keys are ignored (forward compatibility); missing keys fall back
    to the dataclass defaults.  Malformed values surface as
    :class:`repro.core.errors.CheckpointError`.
    """
    known = {f.name for f in dataclasses.fields(EvolutionConfig)}
    try:
        return EvolutionConfig(**{k: v for k, v in dict(data).items() if k in known})
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed evolution config: {exc}") from exc


@dataclass(frozen=True)
class GenerationStats:
    """Objective summary of one generation (after selection)."""

    generation: int
    best_davg: float
    median_davg: float
    best_volume: float
    evaluations: int


# The single history codec: EvolutionState, IslandResult, and checkpoints
# all serialize GenerationStats lists through these two helpers, so the
# JSON shape cannot diverge between the wire and the disk formats.
def history_to_jsonable(history: list[GenerationStats]) -> list[dict]:
    return [dataclasses.asdict(stats) for stats in history]


def history_from_jsonable(entries) -> list[GenerationStats]:
    return [GenerationStats(**entry) for entry in entries]


@dataclass
class EvolutionResult:
    """Outcome of one evolutionary inference run."""

    mapping: ThreeLevelMapping
    genome: Genome
    davg: float
    volume: int
    generations: int
    evaluations: int
    wall_seconds: float
    history: list[GenerationStats] = field(default_factory=list)
    converged: bool = False


@dataclass
class EvolutionState:
    """Resumable mid-run state of one evolving population.

    Everything the generation loop reads or writes lives here (not on the
    evolver), so several states can share one evolver — and one state can be
    shipped to a worker process, advanced a few generations, and shipped
    back — without interference.
    """

    population: list[Genome]
    davgs: np.ndarray
    volumes: np.ndarray
    rng: np.random.Generator
    generation: int = 0
    evaluations: int = 0
    stale: int = 0
    best_key: tuple[float, float] | None = None
    history: list[GenerationStats] = field(default_factory=list)
    converged: bool = False

    @property
    def stopped(self) -> bool:
        """Whether a stop condition (other than the budget) has fired."""
        return self.converged or self.stale_exhausted or self.target_reached

    # Patience exhaustion and target attainment are recorded explicitly so
    # resuming an island after a migration does not re-derive them.
    stale_exhausted: bool = False
    target_reached: bool = False

    def best_index(self) -> int:
        """Index of the (D_avg, volume)-lexicographically best individual."""
        return int(np.lexsort((self.volumes, self.davgs))[0])

    # -- serialization ------------------------------------------------------
    #
    # The JSON codec is exact: float64 objectives survive the round trip
    # bit-for-bit (Python's json emits shortest-roundtrip reprs), genome and
    # history insertion order is preserved, and the generator is restored
    # from its bit-generator state — so `from_json(to_json())` continues a
    # run identically.  This is the wire format of the socket transport and
    # the on-disk format of checkpoints.

    #: Tag of the packed population encoding inside state payloads.
    POPULATION_ENCODING = "packed-npz-b64"

    def to_jsonable(self) -> dict:
        """JSON-safe dict capturing the complete resumable state.

        The population is embedded as a compact binary payload (compressed
        npz of the packed arrays, base64-armoured); everything else stays
        plain JSON.  :meth:`from_jsonable` also accepts the legacy
        list-of-genome-dicts shape, so pre-packed checkpoints remain
        loadable.
        """
        return {
            "population": {
                "encoding": self.POPULATION_ENCODING,
                "data": PackedPopulation.from_genomes(self.population).to_npz_base64(),
            },
            "davgs": [float(v) for v in self.davgs],
            "volumes": [float(v) for v in self.volumes],
            "rng": self.rng.bit_generator.state,
            "generation": self.generation,
            "evaluations": self.evaluations,
            "stale": self.stale,
            "best_key": list(self.best_key) if self.best_key is not None else None,
            "history": history_to_jsonable(self.history),
            "converged": self.converged,
            "stale_exhausted": self.stale_exhausted,
            "target_reached": self.target_reached,
        }

    def to_json(self) -> str:
        """Serialize to a JSON string (see :meth:`to_jsonable`)."""
        return json.dumps(self.to_jsonable())

    @classmethod
    def from_jsonable(cls, data: Mapping) -> "EvolutionState":
        """Rebuild a state from :meth:`to_jsonable` output.

        Raises :class:`repro.core.errors.CheckpointError` on malformed
        payloads (missing keys, an unknown bit generator, wrong shapes).
        """
        try:
            rng_payload = dict(data["rng"])
            generator_name = str(rng_payload["bit_generator"])
            generator_type = getattr(np.random, generator_name, None)
            if generator_type is None or not (
                isinstance(generator_type, type)
                and issubclass(generator_type, np.random.BitGenerator)
            ):
                raise CheckpointError(
                    f"unknown numpy bit generator {generator_name!r} in state"
                )
            bit_generator = generator_type()
            bit_generator.state = rng_payload
            best_key = data["best_key"]
            population_payload = data["population"]
            if isinstance(population_payload, Mapping):
                encoding = population_payload.get("encoding")
                if encoding != cls.POPULATION_ENCODING:
                    raise CheckpointError(
                        f"unknown population encoding {encoding!r} in state"
                    )
                population = PackedPopulation.from_npz_base64(
                    population_payload["data"]
                ).to_genomes()
            else:
                # Legacy shape: a list of per-genome JSON dicts.
                population = [genome_from_jsonable(g) for g in population_payload]
            return cls(
                population=population,
                davgs=np.asarray(data["davgs"], dtype=np.float64),
                volumes=np.asarray(data["volumes"], dtype=np.float64),
                rng=np.random.Generator(bit_generator),
                generation=int(data["generation"]),
                evaluations=int(data["evaluations"]),
                stale=int(data["stale"]),
                best_key=tuple(best_key) if best_key is not None else None,
                history=history_from_jsonable(data["history"]),
                converged=bool(data["converged"]),
                stale_exhausted=bool(data["stale_exhausted"]),
                target_reached=bool(data["target_reached"]),
            )
        except CheckpointError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise CheckpointError(f"malformed evolution state: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "EvolutionState":
        """Deserialize from a JSON string (see :meth:`from_jsonable`)."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"evolution state is not valid JSON: {exc}") from exc
        return cls.from_jsonable(data)


class PortMappingEvolver:
    """Runs the evolutionary search for one machine's experiment data.

    Parameters
    ----------
    ports:
        The port space candidates map onto (the user supplies |P|,
        Section 4.4: "The sets I of Instructions and P of Ports are given
        by the user").
    measurements:
        Measured experiments over the (congruence-filtered) instruction
        universe.
    singleton_throughputs:
        Measured individual throughputs, used by initialization bounds.
    config:
        Hyper-parameters.
    """

    def __init__(
        self,
        ports: PortSpace,
        measurements: ExperimentSet,
        singleton_throughputs: Mapping[str, float],
        config: EvolutionConfig | None = None,
    ):
        self.ports = ports
        self.config = config or EvolutionConfig()
        # Kept for transports/checkpoints, which re-serialize the problem.
        self.measurements = measurements
        self.names: tuple[str, ...] = tuple(measurements.instruction_names())
        if not self.names:
            raise InferenceError("measurement set covers no instructions")
        missing = [n for n in self.names if n not in singleton_throughputs]
        if missing:
            raise InferenceError(f"missing singleton throughputs for {missing}")
        self.singleton_throughputs = dict(singleton_throughputs)
        self.evaluator = BatchedThroughputEvaluator(
            measurements, self.names, ports.num_ports
        )
        # One preallocated evaluation workspace per evolver, reused by every
        # generation's fitness batch (population-sized batches stream through
        # it in `batch_chunk`-sized chunks).
        self._workspace = self.evaluator.packed_workspace(self.config.batch_chunk)
        self._rng = np.random.default_rng(self.config.seed)

    # -- evaluation --------------------------------------------------------

    def _evaluate(self, genomes: Sequence[Genome]) -> tuple[np.ndarray, np.ndarray]:
        """(D_avg, volume) arrays for a batch of genomes.

        The batch is packed once into a :class:`PackedPopulation` and
        evaluated by the population-wide kernel — the only Python-level
        per-genome work left in the hot loop is the packing itself.
        """
        packed = PackedPopulation.from_genomes(genomes, self.names)
        predicted = self.evaluator.throughputs_from_packed(
            packed, workspace=self._workspace
        )
        davgs = self.evaluator.davg_from_throughputs(predicted)
        volumes = packed.volumes().astype(np.float64)
        return davgs, volumes

    # -- stepping primitives ------------------------------------------------

    def init_state(self, rng: np.random.Generator | None = None) -> EvolutionState:
        """Sample and evaluate an initial population.

        ``rng`` defaults to the evolver's own generator (seeded from the
        config); island runs pass per-island generators derived from one
        root seed instead.
        """
        rng = rng if rng is not None else self._rng
        population = random_population(
            rng,
            self.config.population_size,
            self.names,
            self.ports.num_ports,
            self.singleton_throughputs,
        )
        davgs, volumes = self._evaluate(population)
        return EvolutionState(
            population=population,
            davgs=davgs,
            volumes=volumes,
            rng=rng,
            evaluations=len(population),
        )

    def _step(self, state: EvolutionState) -> None:
        """Advance ``state`` by exactly one generation (operate/evaluate/select)."""
        config = self.config
        p = config.population_size
        rng = state.rng

        children: list[Genome] = []
        while len(children) < p:
            i = int(rng.integers(0, p))
            j = int(rng.integers(0, p))
            child_a, child_b = recombine(rng, state.population[i], state.population[j])
            children.append(child_a)
            if len(children) < p:
                children.append(child_b)
        if config.mutation_rate > 0.0:
            children = [
                mutate(
                    rng,
                    child,
                    self.ports.num_ports,
                    self.singleton_throughputs,
                    rate=config.mutation_rate,
                )
                for child in children
            ]

        child_davgs, child_volumes = self._evaluate(children)
        state.evaluations += len(children)
        all_genomes = state.population + children
        all_davgs = np.concatenate([state.davgs, child_davgs])
        all_volumes = np.concatenate([state.volumes, child_volumes])

        fitness = scalarized_fitness(all_davgs, all_volumes)
        ranked = np.argsort(fitness, kind="stable")
        # Selection with deduplication: at the paper's population size
        # (100 000) duplicate genomes are statistically irrelevant, but
        # at our scaled-down sizes they flood the selection and collapse
        # diversity within a few generations.  Preferring distinct
        # genomes (falling back to duplicates only when there are not
        # enough) keeps the algorithm otherwise unchanged.
        selected: list[int] = []
        seen_keys: set[tuple] = set()
        duplicates: list[int] = []
        for index in ranked:
            key = genome_key(all_genomes[index])
            if key in seen_keys:
                duplicates.append(int(index))
                continue
            seen_keys.add(key)
            selected.append(int(index))
            if len(selected) == p:
                break
        if len(selected) < p:
            selected.extend(duplicates[: p - len(selected)])
        order = np.array(selected)
        state.population = [all_genomes[i] for i in order]
        state.davgs = all_davgs[order]
        state.volumes = all_volumes[order]
        state.generation += 1

        state.history.append(
            GenerationStats(
                generation=state.generation,
                best_davg=float(state.davgs.min()),
                median_davg=float(np.median(state.davgs)),
                best_volume=float(state.volumes[int(np.argmin(state.davgs))]),
                evaluations=state.evaluations,
            )
        )

        if (
            config.target_davg is not None
            and float(state.davgs.min()) <= config.target_davg
        ):
            state.target_reached = True
            return
        # Convergence: the whole population collapsed to one objective
        # point, or the best candidate stagnated for `patience` rounds.
        davg_span = float(state.davgs.max() - state.davgs.min())
        volume_span = float(state.volumes.max() - state.volumes.min())
        if davg_span <= config.convergence_tolerance and volume_span == 0.0:
            state.converged = True
            return
        key = (
            round(float(state.davgs.min()), 12),
            float(state.volumes[int(np.argmin(state.davgs))]),
        )
        if state.best_key is not None and key >= state.best_key:
            state.stale += 1
            if state.stale >= config.patience:
                state.stale_exhausted = True
        else:
            state.stale = 0
            state.best_key = key

    def advance(
        self, state: EvolutionState, generations: int | None = None
    ) -> EvolutionState:
        """Run up to ``generations`` more generations (default: to the budget).

        Stops early when the state converges, exhausts its patience, or hits
        ``config.max_generations``; returns the same (mutated) state for
        pipelining convenience.
        """
        budget = generations if generations is not None else self.config.max_generations
        for _ in range(budget):
            if state.stopped or state.generation >= self.config.max_generations:
                break
            self._step(state)
        return state

    def finalize(
        self, state: EvolutionState, wall_seconds: float = 0.0
    ) -> EvolutionResult:
        """Local-search the state's best individual and package the result."""
        best_genome = state.population[state.best_index()]
        if self.config.local_search_rounds > 0:
            best_genome, _ = local_search(
                self.evaluator,
                best_genome,
                max_rounds=self.config.local_search_rounds,
            )
        final_davg = float(self.evaluator.davg(best_genome))
        return EvolutionResult(
            mapping=genome_to_mapping(self.ports, best_genome),
            genome=best_genome,
            davg=final_davg,
            volume=genome_volume(best_genome),
            generations=state.generation,
            evaluations=state.evaluations,
            wall_seconds=wall_seconds,
            history=state.history,
            converged=state.converged,
        )

    # -- main loop ----------------------------------------------------------

    def run(self) -> EvolutionResult:
        """Execute Algorithm 1 and return the fittest mapping found."""
        start_time = time.perf_counter()
        state = self.advance(self.init_state())
        return self.finalize(state, wall_seconds=time.perf_counter() - start_time)
