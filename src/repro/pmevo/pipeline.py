"""The end-to-end PMEvo pipeline (Figure 5).

::

    ISA ──> Experiment Generation ──> Throughput Measurement
                                          │
                                          v
    port mapping <── Evolutionary  <── Congruence
                     Optimization       Filtering

:func:`infer_port_mapping` wires the stages together against a
:class:`repro.machine.Machine` (or anything with the same ``measure``/
``isa`` interface) and returns the inferred mapping extended back to the
full instruction set, plus the statistics the paper's Table 2 reports.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.experiment import Experiment, ExperimentSet
from repro.core.mapping import ThreeLevelMapping
from repro.core.ports import PortSpace
from repro.machine.measurement import Machine
from repro.pmevo.checkpoint import Checkpointer, CheckpointSnapshot
from repro.pmevo.congruence import CongruencePartition, find_congruence_classes
from repro.pmevo.evolution import EvolutionConfig, EvolutionResult, PortMappingEvolver
from repro.pmevo.expgen import pair_experiments, singleton_experiments
from repro.pmevo.islands import IslandEvolver
from repro.pmevo.transport import MigrationTransport

__all__ = ["PMEvoConfig", "PMEvoResult", "infer_port_mapping"]


@dataclass(frozen=True)
class PMEvoConfig:
    """Configuration of the full pipeline.

    ``num_ports`` is the user-supplied port count of Figure 5 (defaults to
    the machine's true port count, which is what the paper's evaluation
    does: Table 1 lists the known port counts).  ``epsilon`` is the
    congruence tolerance of Section 4.3.
    """

    epsilon: float = 0.05
    num_ports: int | None = None
    evolution: EvolutionConfig = EvolutionConfig()


@dataclass
class PMEvoResult:
    """Everything the pipeline produced, including Table 2 statistics."""

    mapping: ThreeLevelMapping
    representative_mapping: ThreeLevelMapping
    partition: CongruencePartition
    evolution: EvolutionResult
    measurements: ExperimentSet
    benchmarking_seconds: float
    inference_seconds: float

    @property
    def congruent_fraction(self) -> float:
        """Fraction of instruction forms filtered as congruent (Table 2)."""
        return self.partition.congruent_fraction()

    @property
    def num_uops(self) -> int:
        """Number of distinct µops in the inferred mapping (Table 2)."""
        return len(self.representative_mapping.distinct_uops())

    def table2_row(self) -> dict[str, float | int | str]:
        """The Table 2 row for this run."""
        return {
            "benchmarking time (s)": round(self.benchmarking_seconds, 2),
            "inference time (s)": round(self.inference_seconds, 2),
            "insns found congruent": f"{100 * self.congruent_fraction:.0f}%",
            "number of uops": self.num_uops,
        }


def infer_port_mapping(
    machine: Machine,
    names: Sequence[str] | None = None,
    config: PMEvoConfig | None = None,
    *,
    transport: MigrationTransport | None = None,
    checkpointer: Checkpointer | None = None,
    resume: CheckpointSnapshot | None = None,
) -> PMEvoResult:
    """Run the full PMEvo pipeline against a machine.

    Parameters
    ----------
    machine:
        The processor under test; only its measurement interface is used.
    names:
        Instruction form names to infer a mapping for (defaults to the
        machine's full ISA).
    config:
        Pipeline configuration.
    transport:
        Where island epochs run (see :mod:`repro.pmevo.transport`); forces
        the island evolver even for a single island.
    checkpointer:
        Writes atomic evolution snapshots at epoch barriers.
    resume:
        A loaded checkpoint to continue from.  The measurement and
        congruence stages are deterministic for a fixed machine/seed, so
        re-running them and resuming the evolution reproduces the
        uninterrupted run bit-identically.
    """
    config = config or PMEvoConfig()
    universe = tuple(names if names is not None else machine.isa.names)

    # Stage 1+2: experiment generation and throughput measurement.
    bench_start = time.perf_counter()
    singles = singleton_experiments(universe)
    measured = ExperimentSet()
    singleton_throughputs: dict[str, float] = {}
    for experiment in singles:
        throughput = machine.measure(experiment)
        measured.add(experiment, throughput)
        singleton_throughputs[experiment.support[0]] = throughput
    for experiment in pair_experiments(universe, singleton_throughputs):
        measured.add(experiment, machine.measure(experiment))
    benchmarking_seconds = time.perf_counter() - bench_start

    # Stage 3: congruence filtering.
    inference_start = time.perf_counter()
    partition = find_congruence_classes(
        measured, epsilon=config.epsilon, names=universe
    )
    representatives = set(partition.representatives)
    reduced = measured.restricted_to(representatives)

    # Stage 4: evolutionary optimization over the representatives.
    num_ports = config.num_ports or machine.config.ports.num_ports
    ports = (
        machine.config.ports
        if num_ports == machine.config.ports.num_ports
        else PortSpace.numbered(num_ports)
    )
    # A single island is exactly the sequential Algorithm 1; more than one
    # switches to the island-model parallel search (Section 4.5's
    # "parallelized implementation of a genetic algorithm").  Transports and
    # checkpoints live on the island loop, so asking for either also selects
    # it (a 1-island archipelago never migrates).
    representative_singles = {
        k: v for k, v in singleton_throughputs.items() if k in representatives
    }
    use_islands = (
        config.evolution.islands > 1
        or transport is not None
        or checkpointer is not None
        or resume is not None
    )
    if use_islands:
        evolver = IslandEvolver(
            ports, reduced, representative_singles, config.evolution, transport
        )
        evolution = evolver.run(checkpointer=checkpointer, resume=resume)
    else:
        evolution = PortMappingEvolver(
            ports, reduced, representative_singles, config.evolution
        ).run()

    # Extend the representative mapping to all congruent instructions.
    full_mapping = evolution.mapping.extended_by(partition.translation())
    inference_seconds = time.perf_counter() - inference_start

    return PMEvoResult(
        mapping=full_mapping,
        representative_mapping=evolution.mapping,
        partition=partition,
        evolution=evolution,
        measurements=measured,
        benchmarking_seconds=benchmarking_seconds,
        inference_seconds=inference_seconds,
    )
