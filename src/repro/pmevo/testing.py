"""Test utilities for planted-ground-truth inference problems.

The evolution, island, transport, and checkpoint suites all search for a
*known* mapping; they need the (measured experiments, singleton
throughputs) pair that mapping would produce.  This lives in the package —
not copy-pasted into each test file — so measurement semantics stay in one
place, and so both ``tests/`` and ``benchmarks/`` can import it (the two
directories have separate ``conftest.py`` modules that cannot import each
other by name).
"""

from __future__ import annotations

from repro.core.experiment import Experiment, ExperimentSet
from repro.throughput.batched import BatchedThroughputEvaluator

__all__ = ["measurements_from_truth"]


def measurements_from_truth(truth, names, num_ports, extra_pairs=()):
    """Measured singleton + pair experiments of a planted genome.

    Returns ``(ExperimentSet, singleton_throughputs)`` — exactly what a
    :class:`~repro.pmevo.evolution.PortMappingEvolver` takes — with every
    throughput computed from ``truth`` by the batched evaluator, so a
    perfect search can reach ``D_avg = 0``.
    """
    experiments = [Experiment({n: 1}) for n in names]
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            experiments.append(Experiment({a: 1, b: 1}))
    experiments.extend(Experiment(dict(p)) for p in extra_pairs)
    probe = BatchedThroughputEvaluator(experiments, names, num_ports)
    measured = ExperimentSet()
    for experiment, value in zip(experiments, probe.throughputs(truth)):
        measured.add(experiment, float(value))
    singles = {n: measured.singleton_throughput(n) for n in names}
    return measured, singles
