"""Genomes and population initialization (Section 4.4).

The evolutionary algorithm's representation scheme is the three-level port
mapping itself: a *genome* maps each instruction name to its µop
decomposition ``{port mask -> multiplicity}``.  µops are identified with the
set of ports that can execute them, so any non-empty subset of P is a valid
µop.

Initialization follows the paper: for each instruction, sample 1..|P|
distinct µops; the multiplicity of a µop ``u`` is drawn from
``[1, ceil(t*(i) · |u|)]`` — an instruction with ``ceil(t·|u|)`` copies of
``u`` can achieve no throughput below ``t``, so higher multiplicities can
never help explain the measured singleton throughput ``t*(i)``.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.errors import InferenceError
from repro.core.mapping import ThreeLevelMapping
from repro.core.ports import PortSpace, mask_size

__all__ = [
    "Genome",
    "random_genome",
    "random_population",
    "genome_volume",
    "genome_to_mapping",
    "genome_key",
    "copy_genome",
    "genome_to_jsonable",
    "genome_from_jsonable",
]

#: A genome: instruction name -> (port mask -> µop multiplicity).
Genome = dict[str, dict[int, int]]


def copy_genome(genome: Genome) -> Genome:
    """Deep copy (two levels) of a genome."""
    return {name: dict(uops) for name, uops in genome.items()}


def genome_key(genome: Genome) -> tuple:
    """Canonical hashable identity of a genome (for deduplication)."""
    return tuple(
        (name, tuple(sorted(uops.items()))) for name, uops in sorted(genome.items())
    )


def genome_to_jsonable(genome: Genome) -> dict[str, dict[str, int]]:
    """JSON-safe form of a genome (mask keys become strings).

    Insertion order of instructions and µops is preserved, so a round trip
    through :func:`genome_from_jsonable` reproduces the genome exactly —
    including dict iteration order, which checkpoint/resume bit-identity
    depends on.
    """
    return {
        name: {str(mask): count for mask, count in uops.items()}
        for name, uops in genome.items()
    }


def genome_from_jsonable(data: Mapping[str, Mapping[str, int]]) -> Genome:
    """Inverse of :func:`genome_to_jsonable`."""
    return {
        name: {int(mask): int(count) for mask, count in uops.items()}
        for name, uops in data.items()
    }


def genome_volume(genome: Genome) -> int:
    """The µop volume ``V = Σ n·|u|`` of a genome (Section 4.4)."""
    return sum(
        count * mask_size(mask)
        for uops in genome.values()
        for mask, count in uops.items()
    )


def genome_to_mapping(ports: PortSpace, genome: Genome) -> ThreeLevelMapping:
    """Materialize a genome as a :class:`ThreeLevelMapping`."""
    return ThreeLevelMapping(ports, genome)


def multiplicity_bound(throughput: float, width: int) -> int:
    """Upper bound ``ceil(t*(i) · |u|)`` for a µop's multiplicity."""
    return max(1, math.ceil(throughput * width - 1e-12))


def random_genome(
    rng: np.random.Generator,
    names: Sequence[str],
    num_ports: int,
    singleton_throughputs: Mapping[str, float],
) -> Genome:
    """Sample one genome per the paper's initialization scheme."""
    if num_ports <= 0:
        raise InferenceError(f"number of ports must be positive, got {num_ports}")
    num_masks = (1 << num_ports) - 1
    genome: Genome = {}
    for name in names:
        throughput = singleton_throughputs.get(name)
        if throughput is None:
            raise InferenceError(f"missing singleton throughput for {name!r}")
        uop_count = int(rng.integers(1, num_ports + 1))
        uop_count = min(uop_count, num_masks)
        masks = rng.choice(num_masks, size=uop_count, replace=False) + 1
        uops: dict[int, int] = {}
        for mask in masks.tolist():
            bound = multiplicity_bound(throughput, mask_size(mask))
            uops[mask] = int(rng.integers(1, bound + 1))
        genome[name] = uops
    return genome


def random_population(
    rng: np.random.Generator,
    size: int,
    names: Sequence[str],
    num_ports: int,
    singleton_throughputs: Mapping[str, float],
) -> list[Genome]:
    """Sample the initial population of ``size`` genomes."""
    if size <= 0:
        raise InferenceError(f"population size must be positive, got {size}")
    return [
        random_genome(rng, names, num_ports, singleton_throughputs)
        for _ in range(size)
    ]
