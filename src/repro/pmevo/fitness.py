"""Fitness computation and scalarization (Section 4.4).

PMEvo minimizes two objectives per candidate mapping ``m``:

* ``D_avg(m)`` — the average relative error of the analytical throughput
  model against the measured throughputs, and
* ``V(m)`` — the µop volume ``Σ n·|u|``, a compactness/interpretability
  proxy that breaks ties between the many mappings explaining the data.

The multi-objective problem is scalarized *a priori*: per generation, each
objective is affinely normalized so the current population's extremes map
to [0, 1000], and the fitness is the sum of the two normalized objectives
(lower is better).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import InferenceError

__all__ = ["ObjectiveValues", "normalize_objective", "scalarized_fitness", "SCALE"]

#: Upper end of the normalization range Λ1/Λ2 map onto.
SCALE = 1000.0


@dataclass(frozen=True)
class ObjectiveValues:
    """The two raw objective values of one candidate."""

    davg: float
    volume: float


def normalize_objective(values: np.ndarray) -> np.ndarray:
    """Affinely map ``values`` so min -> 0 and max -> ``SCALE``.

    A degenerate population (all values equal) maps to all zeros: the
    objective then cannot discriminate and should not contribute.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise InferenceError("expected a non-empty 1-D objective array")
    low = values.min()
    high = values.max()
    span = high - low
    # A subnormal span overflows SCALE/span (and 0*inf would be NaN); such
    # a population cannot be resolved any better than an exactly-collapsed
    # one, so both degenerate to zeros.
    with np.errstate(over="ignore"):
        factor = SCALE / span if span > 0.0 else np.inf
    if not np.isfinite(factor):
        return np.zeros_like(values)
    return (values - low) * factor


def scalarized_fitness(davgs: np.ndarray, volumes: np.ndarray) -> np.ndarray:
    """Per-candidate fitness ``F = Λ1(D_avg) + Λ2(V)`` (lower is better)."""
    davgs = np.asarray(davgs, dtype=np.float64)
    volumes = np.asarray(volumes, dtype=np.float64)
    if davgs.shape != volumes.shape:
        raise InferenceError("objective arrays must have matching shapes")
    return normalize_objective(davgs) + normalize_objective(volumes)
