"""Experiment generation (Section 4.1).

From an ISA (a set of instruction forms), PMEvo generates three families of
experiments:

1. a singleton ``{i -> 1}`` per form, measuring the individual throughput,
2. a pair ``{iA -> 1, iB -> 1}`` per unordered pair of forms,
3. a *saturating* pair ``{iA -> 1, iB -> n}`` with ``n = ceil(t*(iA)/t*(iB))``
   for pairs where ``t*(iA) > t*(iB)`` — enough copies of the faster
   instruction to keep its ports busy for the whole duration of the slower
   one, which separates "shared ports" from "disjoint ports".

Family 3 needs measured singleton throughputs, so generation is two-phase:
:func:`singleton_experiments` first, then :func:`pair_experiments` given the
measurements.  Longer experiments (more than two distinct forms) are
supported via :func:`random_experiments` for the experiment-design ablation;
the paper found they do not improve mapping quality (Section 4.1).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.core.errors import ExperimentError
from repro.core.experiment import Experiment

__all__ = [
    "singleton_experiments",
    "pair_experiments",
    "full_experiment_plan",
    "random_experiments",
]


def singleton_experiments(names: Iterable[str]) -> list[Experiment]:
    """Family 1: one ``{i -> 1}`` experiment per instruction form."""
    return [Experiment.singleton(name) for name in names]


def pair_experiments(
    names: Sequence[str],
    singleton_throughputs: Mapping[str, float],
) -> list[Experiment]:
    """Families 2 and 3 for all unordered pairs of ``names``.

    ``singleton_throughputs`` must contain the measured individual
    throughput of every name.  Saturating pairs that would coincide with
    the plain pair (``n == 1``) are not duplicated.
    """
    for name in names:
        if name not in singleton_throughputs:
            raise ExperimentError(f"missing singleton throughput for {name!r}")

    experiments: list[Experiment] = []
    seen: set[Experiment] = set()

    def emit(experiment: Experiment) -> None:
        if experiment not in seen:
            seen.add(experiment)
            experiments.append(experiment)

    for i, name_a in enumerate(names):
        for name_b in names[i + 1 :]:
            emit(Experiment({name_a: 1, name_b: 1}))
            t_a = singleton_throughputs[name_a]
            t_b = singleton_throughputs[name_b]
            if t_a > t_b:
                slow, fast, ratio = name_a, name_b, t_a / t_b
            elif t_b > t_a:
                slow, fast, ratio = name_b, name_a, t_b / t_a
            else:
                continue
            n = math.ceil(ratio - 1e-9)
            if n > 1:
                emit(Experiment({slow: 1, fast: n}))
    return experiments


def full_experiment_plan(
    names: Sequence[str],
    singleton_throughputs: Mapping[str, float],
) -> list[Experiment]:
    """All three families (singletons first, then pairs)."""
    plan = singleton_experiments(names)
    plan.extend(pair_experiments(names, singleton_throughputs))
    return plan


def random_experiments(
    names: Sequence[str],
    size: int,
    count: int,
    seed: int = 0,
) -> list[Experiment]:
    """``count`` random instruction multisets of total size ``size``.

    Used for the benchmark sets of Section 5.3 (random multisets of size 5)
    and for the experiment-design ablation.  Sampling is uniform over
    multisets of instruction instances, like the paper's "sampled uniformly
    at random from the set of all instruction multi-sets of size 5".
    """
    if size <= 0:
        raise ExperimentError(f"experiment size must be positive, got {size}")
    if count <= 0:
        raise ExperimentError(f"experiment count must be positive, got {count}")
    rng = np.random.default_rng(seed)
    pool = list(names)
    if not pool:
        raise ExperimentError("need at least one instruction form")
    experiments = []
    for _ in range(count):
        picks = rng.integers(0, len(pool), size=size)
        experiments.append(Experiment.from_sequence(pool[i] for i in picks))
    return experiments
