"""Deterministic fault injection for the distributed transport layer.

The recovery guarantees of :mod:`repro.pmevo.transport` — requeued leases,
work stealing, worker reconnects, coordinator resume — are only worth
trusting if something adversarial exercises them on purpose.  This module is
that something: in-process wrappers that misbehave at *scripted* points, so
chaos tests are reproducible instead of sleep-and-hope.

Two layers:

:class:`FaultySocket`
    Wraps a connected socket and injects a fault at the *n*-th outgoing
    frame: close the connection instead of sending (``drop_at``), send a
    truncated frame and then close (``truncate_at``), flip a payload byte so
    the frame arrives undecodable (``corrupt_at``), or sleep before
    forwarding (``delay`` / ``delay_results`` — the knob that simulates a
    slow worker for work-stealing tests).  Frame indices count calls to
    :meth:`FaultySocket.sendall`, which is one per protocol frame.  Pass it
    as ``run_worker(..., wrap_socket=...)`` or wrap a manually driven
    connection.

:class:`FaultyTransport`
    Wraps any :class:`~repro.pmevo.transport.MigrationTransport` and raises
    :class:`~repro.core.errors.InjectedFault` before or after a scripted
    epoch — the in-process analogue of SIGKILLing the coordinator between
    epoch barriers, used to drive checkpoint/resume recovery tests without
    subprocesses.

Everything here raises/propagates :class:`InjectedFault` for scripted
failures so tests can distinguish an injected crash from a genuine bug.
``tools/chaos.py`` is the subprocess counterpart that kills real processes
with real SIGKILL; ``tests/test_chaos.py`` uses both.
"""

from __future__ import annotations

import time
from typing import Any

from repro.core.errors import InjectedFault
from repro.pmevo.evolution import EvolutionState, PortMappingEvolver
from repro.pmevo.transport import MigrationTransport

__all__ = ["FaultySocket", "FaultyTransport"]

#: Byte needle identifying result frames (json.dumps uses ", "/": "
#: separators, so serialized frames contain exactly this substring).
_RESULT_NEEDLE = b'"type": "result"'


class FaultySocket:
    """A socket proxy that injects one scripted fault at a frame boundary.

    Only the methods the framing layer uses (``sendall``, ``recv``,
    ``close``, ``settimeout``) are interposed; everything else delegates to
    the wrapped socket.  Frame indices are 0-based over *outgoing* frames.

    Parameters
    ----------
    sock:
        The connected socket to wrap.
    drop_at:
        Close the connection instead of sending frame ``drop_at`` (a worker
        dying mid-lease, from the coordinator's point of view).
    truncate_at:
        Send only half of frame ``truncate_at`` and then close (a crash
        mid-``sendall``; the receiver sees "connection closed mid-frame").
    corrupt_at:
        XOR one payload byte of frame ``corrupt_at`` (the length prefix
        stays intact, so the receiver reads a full frame and fails to
        decode it).
    delay:
        Seconds to sleep before forwarding every frame from ``delay_from``
        on (a slow or congested link).
    delay_results:
        Like ``delay`` but only for ``result`` frames — a worker that
        computes promptly but delivers slowly, the shape that makes work
        stealing win races deterministically in tests.
    """

    def __init__(
        self,
        sock,
        *,
        drop_at: int | None = None,
        truncate_at: int | None = None,
        corrupt_at: int | None = None,
        delay: float = 0.0,
        delay_from: int = 0,
        delay_results: float = 0.0,
    ):
        self._sock = sock
        self._sent = 0
        self._drop_at = drop_at
        self._truncate_at = truncate_at
        self._corrupt_at = corrupt_at
        self._delay = delay
        self._delay_from = delay_from
        self._delay_results = delay_results

    # -- the interposed surface -------------------------------------------

    def sendall(self, data: bytes) -> None:
        index = self._sent
        self._sent += 1
        if self._drop_at is not None and index >= self._drop_at:
            self._sock.close()
            raise InjectedFault(f"dropped connection at frame {index}")
        if self._truncate_at is not None and index >= self._truncate_at:
            self._sock.sendall(data[: max(1, len(data) // 2)])
            self._sock.close()
            raise InjectedFault(f"truncated frame {index}")
        if self._corrupt_at is not None and index == self._corrupt_at:
            payload = bytearray(data)
            # Flip a byte beyond the 4-byte length prefix, so the receiver
            # reads the full frame and chokes on the JSON, not the framing.
            payload[4 + (len(payload) - 4) // 2] ^= 0xFF
            data = bytes(payload)
        if self._delay and index >= self._delay_from:
            time.sleep(self._delay)
        if self._delay_results and _RESULT_NEEDLE in data:
            time.sleep(self._delay_results)
        self._sock.sendall(data)

    def recv(self, count: int) -> bytes:
        return self._sock.recv(count)

    def close(self) -> None:
        self._sock.close()

    def settimeout(self, value) -> None:
        self._sock.settimeout(value)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._sock, name)


class FaultyTransport:
    """Wrap a transport and crash at a scripted epoch.

    Counts :meth:`advance` calls; raises
    :class:`~repro.core.errors.InjectedFault` *before* delegating at epoch
    ``fail_before_epoch`` (the coordinator dies with the epoch's work lost —
    it must be replayed from the last snapshot) or *after* delegating at
    epoch ``fail_after_epoch`` (the coordinator dies between the epoch's
    completion and its checkpoint — the sharpest spot, because the epoch's
    results exist but were never journaled).  Epochs are 1-based.

    Delegates ``start``/``close`` untouched, so it composes with any
    transport — including :class:`~repro.pmevo.transport.SocketTransport`,
    whose workers then also experience the coordinator vanishing.
    """

    def __init__(
        self,
        inner: MigrationTransport,
        fail_before_epoch: int | None = None,
        fail_after_epoch: int | None = None,
    ):
        self.inner = inner
        self.fail_before_epoch = fail_before_epoch
        self.fail_after_epoch = fail_after_epoch
        self.epochs = 0

    def start(self, evolver: PortMappingEvolver) -> None:
        self.inner.start(evolver)

    def advance(
        self, jobs: list[tuple[int, EvolutionState]], generations: int
    ) -> list[tuple[int, EvolutionState]]:
        self.epochs += 1
        if self.fail_before_epoch == self.epochs:
            raise InjectedFault(f"injected crash before epoch {self.epochs}")
        advanced = self.inner.advance(jobs, generations)
        if self.fail_after_epoch == self.epochs:
            raise InjectedFault(f"injected crash after epoch {self.epochs}")
        return advanced

    def close(self) -> None:
        self.inner.close()
