"""Congruence filtering (Section 4.3).

Groups of instruction forms that use the same execution resources (e.g. all
the two-register ALU instructions) are indistinguishable by throughput
experiments.  PMEvo partitions the forms into *congruence classes* and runs
the evolutionary search only on one representative per class, shrinking the
search space dramatically (53%–69% of forms were congruent in the paper's
Table 2).

Two forms ``iA`` and ``iB`` are congruent iff

* their individual throughputs are equal, and
* for every third form ``iC``, the experiments ``{iA->m, iC->n}`` and
  ``{iB->m, iC->n}`` present in the measured set have equal throughputs,

where "equal" means the symmetric relative difference is below a
user-chosen ``epsilon``:  ``|t1 - t2| / (|t1 + t2| / 2) < epsilon``.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.errors import ExperimentError
from repro.core.experiment import ExperimentSet

__all__ = ["throughputs_equal", "CongruencePartition", "find_congruence_classes"]


def throughputs_equal(t1: float, t2: float, epsilon: float) -> bool:
    """Equality up to measurement error (symmetric relative difference)."""
    if t1 == t2:
        return True
    denominator = abs(t1 + t2) / 2.0
    if denominator == 0.0:
        return False
    return abs(t1 - t2) / denominator < epsilon


@dataclass
class CongruencePartition:
    """The result of congruence filtering.

    Attributes
    ----------
    classes:
        Representative name -> sorted list of all members (including the
        representative itself).
    representative_of:
        Member name -> representative name, for every instruction.
    epsilon:
        The tolerance the partition was computed with.
    """

    classes: dict[str, list[str]]
    representative_of: dict[str, str]
    epsilon: float
    _translation: dict[str, str] = field(default_factory=dict, repr=False)

    @property
    def representatives(self) -> tuple[str, ...]:
        return tuple(sorted(self.classes.keys()))

    @property
    def num_instructions(self) -> int:
        return len(self.representative_of)

    def congruent_fraction(self) -> float:
        """Fraction of instructions filtered out as congruent (Table 2's
        "insns found congruent" row)."""
        total = len(self.representative_of)
        if total == 0:
            return 0.0
        return (total - len(self.classes)) / total

    def translation(self) -> dict[str, str]:
        """Mapping from non-representative members to representatives."""
        return {
            name: rep
            for name, rep in self.representative_of.items()
            if name != rep
        }


class _PairTable:
    """Fast lookup of measured multi-instruction experiments.

    Keys every two-support experiment ``{a->m, b->n}`` under both
    orientations: ``(a, b) -> {(m, n): throughput}``.
    """

    def __init__(self, measurements: ExperimentSet):
        self.singletons: dict[str, float] = {}
        self.pairs: dict[tuple[str, str], dict[tuple[int, int], float]] = {}
        for item in measurements:
            exp = item.experiment
            support = exp.support
            if len(support) == 1:
                name = support[0]
                if exp[name] == 1:
                    self.singletons[name] = item.throughput
            elif len(support) == 2:
                a, b = support
                self.pairs.setdefault((a, b), {})[(exp[a], exp[b])] = item.throughput
                self.pairs.setdefault((b, a), {})[(exp[b], exp[a])] = item.throughput

    def profile(self, name: str, other: str) -> dict[tuple[int, int], float]:
        return self.pairs.get((name, other), {})


def find_congruence_classes(
    measurements: ExperimentSet,
    epsilon: float = 0.05,
    names: Sequence[str] | None = None,
) -> CongruencePartition:
    """Partition instruction forms into congruence classes.

    Parameters
    ----------
    measurements:
        Measured experiments; must contain a singleton for every name and
        should contain the pair experiments of Section 4.1 (missing pair
        data simply cannot separate two forms).
    epsilon:
        Symmetric-relative-difference tolerance (the paper uses 0.05).
    names:
        Instruction universe; defaults to every name occurring in a
        singleton experiment.
    """
    if epsilon <= 0:
        raise ExperimentError(f"epsilon must be positive, got {epsilon}")
    table = _PairTable(measurements)
    universe = list(names) if names is not None else sorted(table.singletons)
    for name in universe:
        if name not in table.singletons:
            raise ExperimentError(f"no singleton measurement for {name!r}")

    def congruent(a: str, b: str) -> bool:
        if not throughputs_equal(table.singletons[a], table.singletons[b], epsilon):
            return False
        for c in universe:
            if c == a or c == b:
                continue
            profile_a = table.profile(a, c)
            profile_b = table.profile(b, c)
            for key in profile_a.keys() & profile_b.keys():
                if not throughputs_equal(profile_a[key], profile_b[key], epsilon):
                    return False
        return True

    classes: dict[str, list[str]] = {}
    representative_of: dict[str, str] = {}
    for name in universe:
        placed = False
        for rep in classes:
            if congruent(rep, name):
                classes[rep].append(name)
                representative_of[name] = rep
                placed = True
                break
        if not placed:
            classes[name] = [name]
            representative_of[name] = name
    for members in classes.values():
        members.sort()
    return CongruencePartition(
        classes=classes, representative_of=representative_of, epsilon=epsilon
    )
