"""Checkpoint/resume for island-model inference runs.

A checkpoint is one JSON document written at an epoch barrier of
:meth:`repro.pmevo.islands.IslandEvolver.run` — the only moment when all
island states are simultaneously at rest.  It contains everything the run
loop carries across an epoch: the serialized
:class:`~repro.pmevo.evolution.EvolutionState` of every island (populations,
objectives, generator states), the epoch/migration counters, the
:class:`~repro.pmevo.evolution.EvolutionConfig`, and a fingerprint of the
inference problem (instruction universe and port count).

Guarantees:

* **Bit-identical resume.**  Because island states carry their own numpy
  generators, a run resumed from epoch ``n`` replays epochs ``n+1..`` exactly
  as the uninterrupted run would; ``tests/test_transport_equivalence.py``
  pins resumed results to the uninterrupted ones byte-for-byte.
* **Atomic snapshots.**  :func:`write_checkpoint` writes to a temporary file
  in the target directory and ``os.replace``\\ s it over the destination, so
  a crash mid-write leaves the previous snapshot intact — readers never see
  a partial file at the checkpoint path.
* **One-deep retention.**  Before the new snapshot lands, the previous good
  one is rotated to ``<path>.prev`` (another atomic ``os.replace``), so even
  a crash *between* the rotation and the next write — or a snapshot that was
  damaged after it was written — leaves one loadable checkpoint on disk.
  :func:`load_checkpoint` falls back to ``.prev`` (with a warning) when the
  primary raises :class:`~repro.core.errors.CheckpointError`; resuming from
  an older barrier merely replays more epochs, bit-identically.
* **Loud failure.**  Truncated, non-JSON, or wrong-format files — and
  resuming against a different config or instruction universe — raise
  :class:`repro.core.errors.CheckpointError` with a message naming the
  problem.  The ``.prev`` fallback only softens *unreadable primary* into a
  warning; when both copies are unusable the primary's error propagates.

Island populations inside a snapshot use the packed base64 npz encoding of
:class:`~repro.pmevo.packed.PackedPopulation`, which keeps checkpoints of
realistic populations compact; snapshots from before that encoding (plain
per-genome JSON lists) still load.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.core.errors import CheckpointError
from repro.pmevo.evolution import (
    EvolutionConfig,
    EvolutionState,
    config_from_jsonable,
    config_to_jsonable,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "CheckpointSnapshot",
    "Checkpointer",
    "write_checkpoint",
    "load_checkpoint",
    "previous_path",
]

#: Format tag of the snapshot document; bumped on incompatible changes.
CHECKPOINT_FORMAT = "repro-pmevo/checkpoint-v1"


@dataclass
class CheckpointSnapshot:
    """Everything needed to continue an island run from an epoch barrier."""

    config: EvolutionConfig
    instructions: tuple[str, ...]
    num_ports: int
    epochs: int
    migrations: int
    states: list[EvolutionState]

    def to_jsonable(self) -> dict:
        return {
            "format": CHECKPOINT_FORMAT,
            "config": config_to_jsonable(self.config),
            "instructions": list(self.instructions),
            "num_ports": self.num_ports,
            "epochs": self.epochs,
            "migrations": self.migrations,
            "states": [state.to_jsonable() for state in self.states],
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "CheckpointSnapshot":
        if not isinstance(data, dict):
            raise CheckpointError(f"checkpoint is not a JSON object: {type(data).__name__}")
        tag = data.get("format")
        if tag != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"unsupported checkpoint format {tag!r} (expected {CHECKPOINT_FORMAT!r})"
            )
        try:
            return cls(
                config=config_from_jsonable(data["config"]),
                instructions=tuple(str(n) for n in data["instructions"]),
                num_ports=int(data["num_ports"]),
                epochs=int(data["epochs"]),
                migrations=int(data["migrations"]),
                states=[EvolutionState.from_jsonable(s) for s in data["states"]],
            )
        except CheckpointError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint: {exc}") from exc


def previous_path(path: Path | str) -> Path:
    """Where :func:`write_checkpoint` rotates the previous good snapshot."""
    path = Path(path)
    return path.with_name(path.name + ".prev")


def write_checkpoint(
    path: Path | str, snapshot: CheckpointSnapshot, keep_previous: bool = True
) -> None:
    """Atomically write ``snapshot`` to ``path`` (temp file + ``os.replace``).

    With ``keep_previous`` (the default) an existing snapshot at ``path`` is
    first rotated to :func:`previous_path` — also via ``os.replace`` — so
    every instant of the write sequence leaves at least one loadable
    snapshot on disk: before the rotation it is ``path``, between rotation
    and replace it is ``path.prev``, after the replace both exist.
    """
    path = Path(path)
    payload = json.dumps(snapshot.to_jsonable())
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent or Path(".")
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        if keep_previous and path.exists():
            os.replace(path, previous_path(path))
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _load_one(path: Path) -> CheckpointSnapshot:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {path} is not valid JSON (truncated or corrupted?): {exc}"
        ) from exc
    return CheckpointSnapshot.from_jsonable(data)


def load_checkpoint(
    path: Path | str, allow_previous: bool = True
) -> CheckpointSnapshot:
    """Load a snapshot, raising :class:`CheckpointError` on any defect.

    With ``allow_previous`` (the default), an unreadable/corrupt/missing
    primary falls back to the rotated ``.prev`` snapshot with a warning —
    resuming one barrier earlier replays the missing epochs bit-identically.
    When the fallback is also unusable, the *primary's* error propagates.
    """
    path = Path(path)
    try:
        return _load_one(path)
    except CheckpointError as exc:
        prev = previous_path(path)
        if not allow_previous or not prev.exists():
            raise
        try:
            snapshot = _load_one(prev)
        except CheckpointError:
            raise exc from None
        warnings.warn(
            f"checkpoint {path} is unusable ({exc}); "
            f"falling back to the previous snapshot {prev}",
            stacklevel=2,
        )
        return snapshot


class Checkpointer:
    """Writes a snapshot every ``interval`` epochs (at the epoch barrier).

    Passed to :meth:`repro.pmevo.islands.IslandEvolver.run`; the evolver
    calls :meth:`after_epoch` once per completed epoch.  The file at
    ``path`` always holds the most recent snapshot and ``<path>.prev`` the
    one before it, so a coordinator killed at *any* instant — including
    mid-rotation — leaves a loadable snapshot for ``infer --resume``.
    """

    def __init__(self, path: Path | str, interval: int = 1):
        if interval < 1:
            raise CheckpointError("checkpoint interval must be at least 1")
        self.path = Path(path)
        self.interval = interval
        self.saves = 0

    def after_epoch(self, snapshot: CheckpointSnapshot) -> bool:
        """Persist ``snapshot`` if its epoch count hits the interval."""
        if snapshot.epochs % self.interval != 0:
            return False
        write_checkpoint(self.path, snapshot)
        self.saves += 1
        return True
