"""Evolutionary operators (Section 4.4).

The paper's final design uses a single binary **recombination** operator:
for each instruction, the multiset of (µop, multiplicity) edges of the two
parents is pooled and split randomly into the two children.  Mutation
operators were tried and dropped — "little to no benefit over a design
without a mutation operator while contributing substantial numbers of
fitness computations" — so mutation here exists only for the ablation bench
and is off by default.

Invariant kept by all operators: every instruction has at least one µop in
every genome.  The paper does not discuss how recombination avoids emptying
one child's decomposition; we reassign a random pooled edge to the empty
side (see DESIGN.md, "Recombination invariant").
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.core.ports import mask_size
from repro.pmevo.population import Genome, multiplicity_bound

__all__ = ["recombine", "mutate"]


def _merge_edges(target: dict[int, int], mask: int, count: int) -> None:
    if count > 0:
        target[mask] = target.get(mask, 0) + count


def recombine(
    rng: np.random.Generator, parent_a: Genome, parent_b: Genome
) -> tuple[Genome, Genome]:
    """Binary recombination: per-instruction random split of pooled edges.

    Both parents must cover the same instruction set.  Returns two children.
    """
    child_a: Genome = {}
    child_b: Genome = {}
    for name, uops_a in parent_a.items():
        uops_b = parent_b[name]
        pooled = [(mask, count) for mask, count in uops_a.items()]
        pooled += [(mask, count) for mask, count in uops_b.items()]
        side = rng.integers(0, 2, size=len(pooled))
        to_a: dict[int, int] = {}
        to_b: dict[int, int] = {}
        for (mask, count), bit in zip(pooled, side):
            _merge_edges(to_a if bit == 0 else to_b, mask, count)
        # Re-establish the "at least one µop" invariant: hand a random
        # pooled edge to the empty side (both sides can't be empty).
        if not to_a:
            mask, count = pooled[int(rng.integers(0, len(pooled)))]
            _merge_edges(to_a, mask, count)
        if not to_b:
            mask, count = pooled[int(rng.integers(0, len(pooled)))]
            _merge_edges(to_b, mask, count)
        child_a[name] = to_a
        child_b[name] = to_b
    return child_a, child_b


def mutate(
    rng: np.random.Generator,
    genome: Genome,
    num_ports: int,
    singleton_throughputs: Mapping[str, float],
    rate: float = 0.05,
) -> Genome:
    """Random point mutation (ablation only; the paper's design omits it).

    With probability ``rate`` per instruction, one of three edits is made:

    * replace one µop's mask by a fresh random non-empty mask,
    * re-roll one µop's multiplicity within the initialization bound,
    * toggle: drop a µop (if more than one) or add a fresh one.
    """
    num_masks = (1 << num_ports) - 1
    mutated: Genome = {}
    for name, uops in genome.items():
        uops = dict(uops)
        if rng.random() < rate:
            throughput = singleton_throughputs.get(name, 1.0)
            masks = list(uops.keys())
            choice = int(rng.integers(0, 3))
            if choice == 0:
                old = masks[int(rng.integers(0, len(masks)))]
                new = int(rng.integers(1, num_masks + 1))
                count = uops.pop(old)
                _merge_edges(uops, new, count)
            elif choice == 1:
                mask = masks[int(rng.integers(0, len(masks)))]
                bound = multiplicity_bound(throughput, mask_size(mask))
                uops[mask] = int(rng.integers(1, bound + 1))
            else:
                if len(uops) > 1 and rng.random() < 0.5:
                    del uops[masks[int(rng.integers(0, len(masks)))]]
                else:
                    new = int(rng.integers(1, num_masks + 1))
                    bound = multiplicity_bound(throughput, mask_size(new))
                    _merge_edges(uops, new, int(rng.integers(1, bound + 1)))
        mutated[name] = uops
    return mutated
