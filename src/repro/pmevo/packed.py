"""Packed, array-backed population representation (the EA's data plane).

The evolutionary hot loop spends its time turning genomes — nested
``dict[str, dict[int, int]]`` structures — into dense numpy arrays, one
genome at a time.  At paper scale (populations of 100 000 over hundreds of
instruction forms) that per-genome Python traffic is the wall between us and
the C++ core the original PMEvo delegates to (Section 4.5: fitness
evaluation speed "directly corresponds to the quality of the obtained
solution").

:class:`PackedPopulation` is the structure-of-arrays answer: a whole
population lives in two rectangular arrays,

* ``masks``  — ``uint32 [population, instruction, slot]``, the port-set
  bitmask of each µop slot (0 marks an unused slot), and
* ``mults``  — unsigned ``[population, instruction, slot]``, the µop's
  multiplicity (0 on unused slots; the dtype is the smallest unsigned type
  that holds every multiplicity, ``uint8`` in practice),

plus the shared instruction-name tuple that gives rows their meaning.  The
representation is **losslessly** interconvertible with the dict genomes the
evolutionary operators produce: slot order preserves µop dict insertion
order, which the recombination RNG stream observes, so
``unpack(pack(population))`` reproduces not just the same mappings but the
same downstream evolution bit for bit.

Population-scale consumers:

* :meth:`repro.throughput.batched.BatchedThroughputEvaluator.throughputs_from_packed`
  evaluates all genomes with one vectorized scatter per slot axis — no
  Python per-genome loops (the tentpole kernel).
* :meth:`PackedPopulation.volumes` computes every genome's µop volume
  ``V = Σ n·|u|`` in one vectorized pass.
* :meth:`PackedPopulation.to_npz_base64` /
  :meth:`PackedPopulation.from_npz_base64` give a compact binary wire/disk
  form (compressed npz, base64-armoured for JSON) that
  :class:`repro.pmevo.evolution.EvolutionState` embeds, shrinking the epoch
  payloads the migration transports and checkpoints ship.
"""

from __future__ import annotations

import base64
import binascii
import io
import itertools
import zipfile
from collections.abc import Sequence

import numpy as np

from repro.core.errors import CheckpointError, MappingError
from repro.pmevo.population import Genome

__all__ = ["PackedPopulation"]


def _mult_dtype(max_mult: int) -> np.dtype:
    """Smallest unsigned dtype holding ``max_mult`` (uint8 in practice)."""
    for dtype in (np.uint8, np.uint16, np.uint32, np.uint64):
        if max_mult <= np.iinfo(dtype).max:
            return np.dtype(dtype)
    raise MappingError(f"µop multiplicity {max_mult} exceeds uint64")


class PackedPopulation:
    """A population of genomes as rectangular structure-of-arrays storage.

    Construct via :meth:`from_genomes` (packing dict genomes) or
    :meth:`from_npz_base64` (decoding a serialized population); the raw
    constructor takes pre-built arrays and validates their shapes.

    Invariants: ``masks`` and ``mults`` share the shape
    ``[population, instruction, slot]``; used slots (``mask != 0``) are a
    prefix of each ``[population, instruction]`` row, carry multiplicity
    ``>= 1``, and hold masks that are unique within their row.
    """

    __slots__ = ("names", "masks", "mults")

    def __init__(self, names: Sequence[str], masks: np.ndarray, mults: np.ndarray):
        self.names = tuple(names)
        if masks.ndim != 3 or masks.shape != mults.shape:
            raise MappingError(
                "masks and mults must share a [population, instruction, slot] shape"
            )
        if masks.shape[1] != len(self.names):
            raise MappingError(
                f"instruction axis has {masks.shape[1]} rows "
                f"but {len(self.names)} names were given"
            )
        self.masks = masks
        self.mults = mults

    # -- basic shape ---------------------------------------------------------

    def __len__(self) -> int:
        return self.masks.shape[0]

    @property
    def num_instructions(self) -> int:
        return self.masks.shape[1]

    @property
    def max_uops(self) -> int:
        """Slot capacity per instruction (the widest µop decomposition)."""
        return self.masks.shape[2]

    # -- converters ----------------------------------------------------------

    @classmethod
    def from_genomes(
        cls, genomes: Sequence[Genome], names: Sequence[str] | None = None
    ) -> "PackedPopulation":
        """Pack dict genomes into arrays (exact, order-preserving).

        Every genome must cover exactly ``names`` (default: the first
        genome's instructions) *in that key order* — the invariant the
        initialization scheme and all evolutionary operators maintain.  µop
        slot order is dict insertion order, so :meth:`to_genomes` restores
        each genome identically, including the iteration orders the
        recombination RNG stream depends on.
        """
        genomes = list(genomes)
        if not genomes:
            raise MappingError("cannot pack an empty population")
        expected = tuple(names) if names is not None else tuple(genomes[0])
        for genome in genomes:
            if tuple(genome) != expected:
                raise MappingError(
                    "genome instructions (or their order) do not match the "
                    "population's instruction universe"
                )

        # Flatten every µop dict into contiguous streams once (C-level
        # iteration, insertion order preserved), then fill the rectangular
        # arrays with one vectorized scatter — the packing itself must not
        # reintroduce the per-genome Python loop it exists to remove.
        rows = [uops for genome in genomes for uops in genome.values()]
        counts = np.fromiter(map(len, rows), dtype=np.intp, count=len(rows))
        if len(rows) and int(counts.min()) < 1:
            raise MappingError("genome has an instruction without µops")
        total = int(counts.sum())
        try:
            flat_masks = np.fromiter(
                itertools.chain.from_iterable(rows), dtype=np.int64, count=total
            )
            flat_mults = np.fromiter(
                itertools.chain.from_iterable(map(dict.values, rows)),
                dtype=np.int64,
                count=total,
            )
        except OverflowError as exc:
            raise MappingError(f"µop mask or multiplicity out of range: {exc}") from exc
        if total:
            if int(flat_masks.min()) <= 0:
                raise MappingError("µop masks must be positive")
            if int(flat_masks.max()) >= (1 << 32):
                raise MappingError("µop mask does not fit in uint32")
            if int(flat_mults.min()) <= 0:
                raise MappingError("µop multiplicities must be positive")
        max_slots = max(1, int(counts.max())) if len(rows) else 1
        max_mult = int(flat_mults.max()) if total else 1

        shape = (len(genomes), len(expected), max_slots)
        masks = np.zeros(shape, dtype=np.uint32)
        mults = np.zeros(shape, dtype=_mult_dtype(max_mult))
        # Boolean assignment walks True positions in C order — row-major,
        # slot prefix first — which is exactly the flattened stream order.
        used = np.arange(max_slots, dtype=np.intp) < counts[:, None]
        masks.reshape(len(rows), max_slots)[used] = flat_masks
        mults.reshape(len(rows), max_slots)[used] = flat_mults
        return cls(expected, masks, mults)

    def to_genomes(self) -> list[Genome]:
        """Unpack back to dict genomes — the exact inverse of
        :meth:`from_genomes`, including every dict's insertion order."""
        names = self.names
        slot_count = self.max_uops
        all_masks = self.masks.tolist()
        all_mults = self.mults.tolist()
        population: list[Genome] = []
        for genome_masks, genome_mults in zip(all_masks, all_mults):
            genome: Genome = {}
            for name, row_masks, row_mults in zip(names, genome_masks, genome_mults):
                uops: dict[int, int] = {}
                for slot in range(slot_count):
                    mask = row_masks[slot]
                    if mask == 0:
                        break
                    uops[mask] = row_mults[slot]
                genome[name] = uops
            population.append(genome)
        return population

    # -- vectorized objective helpers ---------------------------------------

    def volumes(self) -> np.ndarray:
        """Per-genome µop volume ``V = Σ n·|u|`` (Section 4.4), vectorized.

        Exactly matches :func:`repro.pmevo.population.genome_volume` on the
        unpacked genomes (integer arithmetic throughout).
        """
        widths = np.bitwise_count(self.masks).astype(np.int64)
        return (widths * self.mults).sum(axis=(1, 2))

    # -- compact binary serialization ---------------------------------------

    def to_npz_base64(self) -> str:
        """Serialize to a base64-armoured compressed npz payload.

        The binary form is dramatically smaller than the per-genome JSON
        dict encoding (µop masks and multiplicities compress well), which is
        what lets :class:`~repro.pmevo.evolution.EvolutionState` keep its
        JSON wire format while shipping far smaller epoch payloads through
        the migration transports and checkpoints.
        """
        buffer = io.BytesIO()
        np.savez_compressed(
            buffer,
            names=np.asarray(self.names, dtype=np.str_),
            masks=self.masks,
            mults=self.mults,
        )
        return base64.b64encode(buffer.getvalue()).decode("ascii")

    @classmethod
    def from_npz_base64(cls, text: str) -> "PackedPopulation":
        """Decode :meth:`to_npz_base64` output.

        Raises :class:`repro.core.errors.CheckpointError` on malformed
        payloads (bad base64, truncated archives, missing arrays, wrong
        shapes) — the error contract of the state/checkpoint codecs.
        """
        try:
            raw = base64.b64decode(text.encode("ascii"), validate=True)
        except (binascii.Error, ValueError, UnicodeEncodeError, AttributeError) as exc:
            raise CheckpointError(f"packed population is not valid base64: {exc}") from exc
        try:
            with np.load(io.BytesIO(raw), allow_pickle=False) as archive:
                names = archive["names"]
                masks = archive["masks"]
                mults = archive["mults"]
        except (OSError, EOFError, KeyError, ValueError, zipfile.BadZipFile) as exc:
            raise CheckpointError(f"malformed packed population archive: {exc}") from exc
        if names.ndim != 1:
            raise CheckpointError("packed population names must be a 1-D array")
        try:
            return cls([str(name) for name in names], masks, mults)
        except MappingError as exc:
            raise CheckpointError(f"malformed packed population: {exc}") from exc
