"""Migration transports: how island states move during an epoch.

:class:`~repro.pmevo.islands.IslandEvolver` runs K populations through
alternating *epochs* (``migration_interval`` generations of independent
evolution) and *migrations* (elite exchange around the ring).  The epoch is
embarrassingly parallel, and everything an epoch needs travels inside the
:class:`~repro.pmevo.evolution.EvolutionState` — so the island loop does not
care *where* an epoch runs.  This module makes that explicit: a
:class:`MigrationTransport` ships states out, advances them, and ships them
back, and the evolver is written against the protocol alone.

Protocol contract
-----------------
A transport has three methods, called in this order by one driving thread:

``start(evolver)``
    Called once before the first epoch with the fully constructed
    :class:`~repro.pmevo.evolution.PortMappingEvolver` (the heavy shared
    object: evaluator, measurement matrices, config).  The transport may
    distribute it to workers here; it crosses any process/network boundary
    exactly once per run.
``advance(jobs, generations)``
    ``jobs`` is a list of ``(island_index, state)`` pairs.  The transport
    must return ``(island_index, advanced_state)`` for *every* job (any
    order), where ``advanced_state`` is exactly
    ``evolver.advance(state, generations)``.  It must not advance a state it
    was not given and must not reorder generations within a state.
``close()``
    Called once (also on error paths); releases pools/sockets.  Idempotent.

States cross process and network boundaries in the
:meth:`~repro.pmevo.evolution.EvolutionState.to_json` wire form, whose
population travels as a packed base64 npz blob
(:class:`~repro.pmevo.packed.PackedPopulation`) — far smaller than the
per-genome JSON dicts it replaced, which matters per epoch on the socket
transport.

Reproducibility guarantee
-------------------------
``evolver.advance`` is a pure function of ``(state, generations)`` — each
state carries its own numpy generator — so *who* computes an epoch cannot
change its result.  All transports therefore produce bit-identical runs for
a fixed seed; ``tests/test_transport_equivalence.py`` pins
Serial = Pool = Socket down to the serialized result bytes.

Failure semantics
-----------------
:class:`SerialTransport` and :class:`PoolTransport` fail loudly (pool errors
propagate).  :class:`SocketTransport` degrades instead: workers announce
themselves with a hello/version handshake, send heartbeats while computing,
and are declared dead after ``heartbeat_timeout`` seconds of silence (or any
socket/framing error), at which point the islands they were computing are
requeued or re-leased to live workers.  If every worker dies the coordinator
finishes the epoch in-process — a run that started always completes, and
because of the purity argument above the recovery path cannot change the
result.  Startup is the exception: fewer than ``min_workers`` connections
within ``start_timeout`` raises :class:`repro.core.errors.TransportError`.

Leases and work stealing
------------------------
Within an epoch the coordinator leases islands to workers in *batches*
(the pending islands split evenly over the idle workers, one ``job`` frame
per batch) and workers stream one ``result`` frame back per island, so the
coordinator observes per-island completions, not per-batch ones.  Once the
pending queue drains, idle workers *steal*: the slowest outstanding island
(fewest live leases, then oldest lease) is re-leased under a fresh lease
generation (``job_id``), first result wins, and late duplicates are
discarded by generation — harmless rather than wrong, because island
advancement is a pure function of its state.  Stealing keeps heterogeneous
or flaky workers from gating the epoch barrier at its tail.

Coordinator crash recovery
--------------------------
The coordinator itself may be killed: runs driven with a
:class:`~repro.pmevo.checkpoint.Checkpointer` journal every completed epoch
at the barrier (with one-deep ``.prev`` retention), and a restarted
coordinator — ``infer --resume`` pointed at the same ``--bind`` address —
rehydrates from the latest snapshot and simply replays any epochs lost
after it.  Workers that lose the connection mid-service do not exit: they
re-attach with capped exponential backoff plus deterministic jitter
(:func:`backoff_delays`), re-perform the hello/setup handshake, and discard
any in-flight lease (their old lease generation is unknown to the new
coordinator incarnation, so a stray result could at worst be ignored).  A
worker exits with code 0 only once the coordinator is confirmed gone —
the full reconnect window elapsed without a successful attach.

Wire format (socket transport)
------------------------------
Frames are length-prefixed JSON: a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON.  Messages carry a ``"type"``
key: ``hello`` (worker → coordinator, with ``"protocol"``), ``setup``
(coordinator → worker, the serialized problem), ``job`` (coordinator →
worker: a lease generation ``job_id`` plus a batch of ``[island, state]``
pairs), ``result`` (worker → coordinator, one per completed island, echoing
``job_id``), ``heartbeat`` (worker → coordinator, periodic), and
``shutdown`` (coordinator → worker).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import select
import socket
import struct
import threading
import time
from collections import deque
from collections.abc import Callable, Iterator, Mapping
from typing import Protocol, runtime_checkable

from repro.core.errors import CheckpointError, TransportError
from repro.core.experiment import Experiment, ExperimentSet
from repro.core.ports import PortSpace
from repro.pmevo.evolution import (
    EvolutionState,
    PortMappingEvolver,
    config_from_jsonable,
    config_to_jsonable,
)

__all__ = [
    "MigrationTransport",
    "SerialTransport",
    "PoolTransport",
    "SocketTransport",
    "run_worker",
    "backoff_delays",
    "parse_address",
    "problem_to_jsonable",
    "evolver_from_jsonable",
    "PROTOCOL_VERSION",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_HEARTBEAT_TIMEOUT",
    "DEFAULT_START_TIMEOUT",
]

#: Version tag of the hello handshake; bumped on incompatible frame changes.
#: v2: ``job`` frames lease a batch of ``[island, state]`` pairs and
#: ``result`` frames answer one island at a time (work-stealing leases).
PROTOCOL_VERSION = 2

#: Default seconds between worker heartbeats (CLI ``worker --heartbeat-interval``).
DEFAULT_HEARTBEAT_INTERVAL = 2.0

#: Default per-worker silence budget before a lease is re-leased
#: (CLI ``infer --heartbeat-timeout``).
DEFAULT_HEARTBEAT_TIMEOUT = 30.0

#: Default seconds :meth:`SocketTransport.start` waits for ``min_workers``
#: (CLI ``infer --start-timeout``).
DEFAULT_START_TIMEOUT = 120.0

#: Ceiling of the capped exponential reconnect backoff.
BACKOFF_CAP = 8.0

#: Upper bound on a single frame (guards against garbage length prefixes).
_MAX_FRAME_BYTES = 1 << 29

_LENGTH = struct.Struct(">I")


# -- framing -----------------------------------------------------------------


def send_frame(sock: socket.socket, message: Mapping, lock: threading.Lock | None = None) -> None:
    """Send one length-prefixed JSON frame (optionally under ``lock``)."""
    payload = json.dumps(message).encode("utf-8")
    if len(payload) > _MAX_FRAME_BYTES:
        raise TransportError(f"frame of {len(payload)} bytes exceeds the limit")
    data = _LENGTH.pack(len(payload)) + payload
    if lock is None:
        sock.sendall(data)
    else:
        with lock:
            sock.sendall(data)


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; ``None`` on EOF at a frame boundary."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise TransportError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict | None:
    """Receive one frame; ``None`` on a clean EOF between frames.

    Raises :class:`TransportError` on truncated frames, oversized lengths,
    or payloads that are not a JSON object.
    """
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > _MAX_FRAME_BYTES:
        raise TransportError(f"announced frame of {length} bytes exceeds the limit")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise TransportError("connection closed between length and payload")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise TransportError(f"frame is not a JSON object: {message!r}")
    return message


def parse_address(text: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` string (used by ``--bind`` / ``--connect``)."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise TransportError(f"expected HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError as exc:
        raise TransportError(f"invalid port in {text!r}") from exc
    if not 0 <= port <= 65535:
        raise TransportError(f"port out of range in {text!r}")
    return host, port


# -- problem serialization ----------------------------------------------------


def problem_to_jsonable(evolver: PortMappingEvolver) -> dict:
    """JSON-safe description of an evolver's inference problem.

    Captures everything a remote worker needs to rebuild an equivalent
    :class:`PortMappingEvolver`: the port space, the measured experiments
    (insertion order preserved — fitness evaluation iterates them), the
    singleton throughputs, and the evolution config.
    """
    return {
        "ports": list(evolver.ports.names),
        "experiments": [
            {"counts": dict(item.experiment.counts), "throughput": item.throughput}
            for item in evolver.measurements
        ],
        "singleton_throughputs": dict(evolver.singleton_throughputs),
        "config": config_to_jsonable(evolver.config),
    }


def evolver_from_jsonable(data: Mapping) -> PortMappingEvolver:
    """Rebuild a :class:`PortMappingEvolver` from :func:`problem_to_jsonable`."""
    try:
        ports = PortSpace(data["ports"])
        measurements = ExperimentSet()
        for entry in data["experiments"]:
            measurements.add(Experiment(entry["counts"]), float(entry["throughput"]))
        singles = {
            str(name): float(value)
            for name, value in data["singleton_throughputs"].items()
        }
        config = config_from_jsonable(data["config"])
    except (KeyError, TypeError, ValueError) as exc:
        raise TransportError(f"malformed problem payload: {exc}") from exc
    return PortMappingEvolver(ports, measurements, singles, config)


# -- the protocol and the in-process transports -------------------------------


@runtime_checkable
class MigrationTransport(Protocol):
    """Where epochs run; see the module docstring for the full contract."""

    def start(self, evolver: PortMappingEvolver) -> None:
        """Prepare for epochs of ``evolver`` (distribute it to workers)."""

    def advance(
        self, jobs: list[tuple[int, EvolutionState]], generations: int
    ) -> list[tuple[int, EvolutionState]]:
        """Advance every ``(island, state)`` job by ``generations``."""

    def close(self) -> None:
        """Release resources; idempotent, called on error paths too."""


class SerialTransport:
    """Runs every epoch in the calling process.  Zero dependencies, zero
    overhead; the reference against which the other transports are pinned."""

    def __init__(self) -> None:
        self._evolver: PortMappingEvolver | None = None

    def start(self, evolver: PortMappingEvolver) -> None:
        self._evolver = evolver

    def advance(
        self, jobs: list[tuple[int, EvolutionState]], generations: int
    ) -> list[tuple[int, EvolutionState]]:
        assert self._evolver is not None, "start() was not called"
        return [(k, self._evolver.advance(state, generations)) for k, state in jobs]

    def close(self) -> None:
        self._evolver = None


# The evolver is installed once per pool worker by the initializer; epoch
# jobs then only carry island states.
_WORKER_EVOLVER: PortMappingEvolver | None = None


def _install_worker_evolver(evolver: PortMappingEvolver) -> None:
    global _WORKER_EVOLVER
    _WORKER_EVOLVER = evolver


def _advance_epoch(job: tuple[EvolutionState, int]) -> EvolutionState:
    state, generations = job
    assert _WORKER_EVOLVER is not None, "worker pool initializer did not run"
    return _WORKER_EVOLVER.advance(state, generations)


class PoolTransport:
    """Runs epochs on a ``multiprocessing`` pool (the single-host default).

    The evolver crosses the process boundary once via the pool initializer;
    per epoch only the small pickled island states travel.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise TransportError("pool transport needs at least one worker")
        self.workers = workers
        self._pool: multiprocessing.pool.Pool | None = None

    def start(self, evolver: PortMappingEvolver) -> None:
        self._pool = multiprocessing.Pool(
            processes=self.workers,
            initializer=_install_worker_evolver,
            initargs=(evolver,),
        )

    def advance(
        self, jobs: list[tuple[int, EvolutionState]], generations: int
    ) -> list[tuple[int, EvolutionState]]:
        assert self._pool is not None, "start() was not called"
        advanced = self._pool.map(
            _advance_epoch, [(state, generations) for _, state in jobs]
        )
        return [(k, state) for (k, _), state in zip(jobs, advanced)]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None


# -- the socket transport -----------------------------------------------------


class _Lease:
    """One leased island: which generation (``job_id``), of which epoch."""

    __slots__ = ("job_id", "island", "epoch", "started")

    def __init__(self, job_id: int, island: int, epoch: int, started: float):
        self.job_id = job_id
        self.island = island
        self.epoch = epoch
        self.started = started


class _RemoteWorker:
    """Coordinator-side bookkeeping for one connected worker.

    ``leases`` holds every island batch the worker has been sent and not yet
    answered.  Entries from a previous epoch, or for islands another worker
    already finished, are *stale*: the worker is still (or was) computing
    them, but their results will be discarded on arrival.
    """

    __slots__ = ("sock", "address", "last_seen", "leases")

    def __init__(self, sock: socket.socket, address):
        self.sock = sock
        self.address = address
        self.last_seen = time.monotonic()
        self.leases: list[_Lease] = []


class SocketTransport:
    """TCP coordinator that leases epochs to ``repro-pmevo worker`` processes.

    Workers connect (possibly from other machines), complete a
    hello/version handshake, and receive the serialized inference problem
    once.  Each epoch the coordinator splits the pending islands into
    per-worker lease batches, streams per-island results back, requeues the
    islands of workers that died (socket error, malformed frame, or
    ``heartbeat_timeout`` seconds without a frame), and — once the pending
    queue is empty — re-leases the slowest outstanding islands to idle
    workers (*work stealing*; first result wins, late duplicates are
    discarded by lease generation).  Late joiners are accepted mid-run and
    start receiving leases at the next assignment opportunity.  If the last
    worker dies, the remaining islands of the epoch run in the coordinator
    process — see the module docstring for why no recovery path can change
    results.

    Parameters
    ----------
    host, port:
        Bind address; port 0 picks an ephemeral port (``address`` holds the
        actual one after :meth:`listen`).
    min_workers:
        How many workers :meth:`start` waits for before the first epoch.
    heartbeat_timeout:
        Seconds of per-worker silence before its leases are given up on.
    start_timeout:
        Seconds :meth:`start` waits for ``min_workers`` connections.
    max_lease_batch:
        Cap on islands per ``job`` frame; 0 (default) splits the pending
        queue evenly over the idle workers.
    work_stealing:
        Re-lease outstanding islands to idle workers once the pending queue
        drains (default on; affects wall-clock only, never results).
    steal_delay:
        Seconds an island's oldest lease must be outstanding before it may
        be stolen (default 0.25).  The grace period keeps a homogeneous
        cluster — where workers finish within milliseconds of each other —
        from burning CPU on duplicate leases that the original worker wins
        anyway; a genuinely slow or dead worker blows past it immediately.
    max_island_leases:
        Live leases an island may accumulate through stealing (default 2 —
        the original lease plus one steal — bounding redundant compute).
    close_grace:
        Seconds :meth:`close` spends draining workers that are still
        streaming a result for a lease that lost a race, so they read the
        shutdown frame instead of a connection reset.

    ``stats`` counts scheduling/recovery events (leases, steals, stale
    results, requeues, drops, local fallbacks, late joiners) for operator
    visibility; it is telemetry only and never feeds back into scheduling.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        min_workers: int = 1,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        start_timeout: float = DEFAULT_START_TIMEOUT,
        max_lease_batch: int = 0,
        work_stealing: bool = True,
        steal_delay: float = 0.25,
        max_island_leases: int = 2,
        close_grace: float = 5.0,
    ):
        if min_workers < 1:
            raise TransportError("socket transport needs at least one worker")
        if heartbeat_timeout <= 0 or start_timeout <= 0:
            raise TransportError("timeouts must be positive")
        if max_lease_batch < 0:
            raise TransportError("max_lease_batch must be >= 0 (0 = even split)")
        if max_island_leases < 1:
            raise TransportError("max_island_leases must be at least 1")
        if steal_delay < 0:
            raise TransportError("steal_delay must be >= 0")
        self._bind = (host, port)
        self.min_workers = min_workers
        self.heartbeat_timeout = heartbeat_timeout
        self.start_timeout = start_timeout
        self.max_lease_batch = max_lease_batch
        self.work_stealing = work_stealing
        self.steal_delay = steal_delay
        self.max_island_leases = max_island_leases
        self.close_grace = close_grace
        self.address: tuple[str, int] | None = None
        self.stats: dict[str, int] = {
            "epochs": 0,
            "leases": 0,
            "batches": 0,
            "steals": 0,
            "stale_results": 0,
            "requeued": 0,
            "local_islands": 0,
            "workers_dropped": 0,
            "late_joiners": 0,
        }
        self._listener: socket.socket | None = None
        self._workers: dict[socket.socket, _RemoteWorker] = {}
        self._evolver: PortMappingEvolver | None = None
        self._setup_payload: dict | None = None
        self._next_job_id = 0
        self._started = False
        # Per-advance() context (None between epochs).
        self._epoch = 0
        self._pending: deque[int] | None = None
        self._payloads: dict[int, dict] | None = None
        self._results: dict[int, EvolutionState] | None = None

    # -- lifecycle ---------------------------------------------------------

    def listen(self) -> tuple[str, int]:
        """Open the listening socket (idempotent) and return its address.

        Split out from :meth:`start` so a CLI can print the ephemeral port
        for workers to connect to *before* the (potentially long)
        measurement phase that precedes the first epoch.
        """
        if self._listener is None:
            self._listener = socket.create_server(self._bind, backlog=16)
            self.address = self._listener.getsockname()[:2]
        return self.address

    def start(self, evolver: PortMappingEvolver) -> None:
        self._evolver = evolver
        self._setup_payload = {"type": "setup", "problem": problem_to_jsonable(evolver)}
        self.listen()
        deadline = time.monotonic() + self.start_timeout
        while len(self._workers) < self.min_workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TransportError(
                    f"timed out after {self.start_timeout:.0f}s waiting for "
                    f"{self.min_workers} worker(s) on {self.address[0]}:{self.address[1]} "
                    f"({len(self._workers)} connected); start workers with "
                    f"`repro-pmevo worker --connect HOST:PORT`"
                )
            readable, _, _ = select.select([self._listener], [], [], min(remaining, 0.5))
            if readable:
                self._accept_one()
        self._started = True

    def close(self) -> None:
        deadline = time.monotonic() + self.close_grace
        for worker in list(self._workers.values()):
            try:
                send_frame(worker.sock, {"type": "shutdown"})
            except OSError:
                self._workers.pop(worker.sock, None)
                worker.sock.close()
        # Workers still streaming a result for a lease that lost a race must
        # be drained (bounded by ``close_grace``) before their sockets go
        # away: closing underneath the in-flight send would turn the
        # buffered shutdown frame into a connection reset and push the
        # worker into its reconnect loop for nothing.
        while self._workers and time.monotonic() < deadline:
            if not any(w.leases for w in self._workers.values()):
                break
            readable, _, _ = select.select(list(self._workers), [], [], 0.2)
            for sock in readable:
                worker = self._workers.get(sock)
                if worker is None:
                    continue
                try:
                    frame = recv_frame(sock)
                except (OSError, TransportError):
                    frame = None
                if frame is None:
                    self._workers.pop(sock, None)
                    sock.close()
                    continue
                if frame.get("type") == "result":
                    worker.leases = [
                        lease
                        for lease in worker.leases
                        if (lease.job_id, lease.island)
                        != (frame.get("job_id"), frame.get("island"))
                    ]
        for worker in list(self._workers.values()):
            worker.sock.close()
        self._workers.clear()
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    # -- worker management -------------------------------------------------

    def _accept_one(self) -> None:
        """Accept one pending connection and complete the handshake."""
        assert self._listener is not None
        try:
            sock, address = self._listener.accept()
        except OSError:
            return
        # The handshake runs on the coordinator's only thread: keep its
        # timeout short so a silent connection (port scanner, half-open
        # socket) cannot stall epoch collection for heartbeat_timeout.
        sock.settimeout(min(5.0, self.heartbeat_timeout))
        try:
            hello = recv_frame(sock)
            if (
                hello is None
                or hello.get("type") != "hello"
                or hello.get("protocol") != PROTOCOL_VERSION
            ):
                raise TransportError(f"bad handshake from {address}: {hello!r}")
            if self._setup_payload is not None:
                send_frame(sock, self._setup_payload)
        except (OSError, TransportError):
            sock.close()
            return
        sock.settimeout(self.heartbeat_timeout)
        self._workers[sock] = _RemoteWorker(sock, address)
        if self._started:
            self.stats["late_joiners"] += 1

    # A worker's leases are live when they belong to the current epoch and
    # their island has not been finished by anyone; everything else is stale
    # bookkeeping for results we will discard on arrival.
    def _live_leases(self, worker: _RemoteWorker) -> list[_Lease]:
        assert self._results is not None
        return [
            lease
            for lease in worker.leases
            if lease.epoch == self._epoch and lease.island not in self._results
        ]

    def _idle_workers(self) -> list[_RemoteWorker]:
        return [w for w in self._workers.values() if not self._live_leases(w)]

    def _drop(self, worker: _RemoteWorker) -> None:
        """Forget a dead worker, requeueing islands only it was computing."""
        self._workers.pop(worker.sock, None)
        worker.sock.close()
        self.stats["workers_dropped"] += 1
        if self._pending is None:
            worker.leases.clear()
            return
        # Newest-first so appendleft restores the original queue order.
        for lease in reversed(worker.leases):
            if lease.epoch != self._epoch:
                continue
            island = lease.island
            if island in self._results or island in self._pending:
                continue
            if any(
                l.island == island and l.epoch == self._epoch
                for w in self._workers.values()
                for l in w.leases
            ):
                continue  # a live steal still covers this island
            self._pending.appendleft(island)
            self.stats["requeued"] += 1
        worker.leases.clear()

    def _assign(
        self, worker: _RemoteWorker, islands: list[int], generations: int
    ) -> bool:
        """Lease a batch of islands to ``worker``; False if it died sending.

        The leases are recorded BEFORE sending: if sendall raises (worker
        died between epochs), :meth:`_drop` finds them on the worker and
        requeues the islands — otherwise they would be lost and
        :meth:`advance` could never complete.
        """
        assert self._payloads is not None
        self._next_job_id += 1
        job_id = self._next_job_id
        now = time.monotonic()
        worker.leases.extend(
            _Lease(job_id, island, self._epoch, now) for island in islands
        )
        self.stats["leases"] += len(islands)
        self.stats["batches"] += 1
        try:
            send_frame(
                worker.sock,
                {
                    "type": "job",
                    "job_id": job_id,
                    "generations": generations,
                    "islands": [[island, self._payloads[island]] for island in islands],
                },
            )
        except OSError:
            self._drop(worker)
            return False
        return True

    def _lease_pending(self, generations: int) -> None:
        """Split the pending queue into batches over the idle workers."""
        assert self._pending is not None
        while self._pending and self._workers:
            idle = self._idle_workers()
            if not idle:
                return
            share = -(-len(self._pending) // len(idle))  # ceil division
            if self.max_lease_batch:
                share = min(share, self.max_lease_batch)
            for worker in idle:
                if not self._pending:
                    return
                batch = [
                    self._pending.popleft()
                    for _ in range(min(share, len(self._pending)))
                ]
                if not self._assign(worker, batch, generations):
                    # The worker died sending: its islands are requeued and
                    # the idle snapshot is stale — recompute the split.
                    break

    def _steal(self, generations: int) -> None:
        """Re-lease the slowest outstanding islands to idle workers."""
        assert self._results is not None
        idle = self._idle_workers()
        if not idle:
            return
        live: dict[int, tuple[int, float]] = {}  # island -> (leases, oldest)
        for worker in self._workers.values():
            for lease in self._live_leases(worker):
                count, oldest = live.get(lease.island, (0, lease.started))
                live[lease.island] = (count + 1, min(oldest, lease.started))
        now = time.monotonic()
        for worker in idle:
            candidates = [
                (count, oldest, island)
                for island, (count, oldest) in live.items()
                if count < self.max_island_leases
                and now - oldest >= self.steal_delay
            ]
            if not candidates:
                return
            count, oldest, island = min(candidates)
            if self._assign(worker, [island], generations):
                self.stats["steals"] += 1
                live[island] = (count + 1, oldest)

    def _take_result(self, worker: _RemoteWorker, frame: dict) -> None:
        """Accept or discard one ``result`` frame (first result wins)."""
        assert self._results is not None
        job_id = frame.get("job_id")
        island = frame.get("island")
        lease = next(
            (
                l
                for l in worker.leases
                if l.job_id == job_id and l.island == island
            ),
            None,
        )
        if lease is None:
            return  # a lease this coordinator incarnation never issued
        worker.leases.remove(lease)
        if lease.epoch != self._epoch or island in self._results:
            # A previous epoch's laggard, or another worker won the race.
            # Deterministic advancement makes the duplicate redundant, not
            # wrong — but accepting it could smuggle an old epoch's state
            # into the wrong barrier, so it is dropped by generation.
            self.stats["stale_results"] += 1
            return
        try:
            state = EvolutionState.from_jsonable(frame["state"])
        except (KeyError, CheckpointError):
            self._drop(worker)
            return
        self._results[island] = state

    # -- the epoch ---------------------------------------------------------

    def advance(
        self, jobs: list[tuple[int, EvolutionState]], generations: int
    ) -> list[tuple[int, EvolutionState]]:
        assert self._evolver is not None, "start() was not called"
        self._epoch += 1
        self.stats["epochs"] += 1
        # States are serialized once up front; the payloads double as the
        # requeue/re-lease tickets when workers die or islands are stolen.
        self._payloads = {island: state.to_jsonable() for island, state in jobs}
        self._pending = deque(island for island, _ in jobs)
        self._results = {}
        try:
            while len(self._results) < len(jobs):
                # Lease pending islands to idle workers, in batches.
                self._lease_pending(generations)

                # Everyone is gone: check for a late joiner first, then
                # advance one pending island locally (deterministic — the
                # same advance() a worker would have computed) and look
                # again, so replacement workers are picked up between
                # islands instead of idling until the run ends.
                if not self._workers:
                    joinable, _, _ = select.select([self._listener], [], [], 0)
                    if joinable:
                        self._accept_one()
                        continue
                    if self._pending:
                        island = self._pending.popleft()
                        state = EvolutionState.from_jsonable(self._payloads[island])
                        self._results[island] = self._evolver.advance(
                            state, generations
                        )
                        self.stats["local_islands"] += 1
                    continue

                # The queue is drained but the barrier is not met: steal the
                # slowest outstanding islands onto idle workers.
                if self.work_stealing and not self._pending:
                    self._steal(generations)

                sockets = [self._listener] + list(self._workers)
                readable, _, _ = select.select(sockets, [], [], 0.5)
                now = time.monotonic()
                for sock in readable:
                    if sock is self._listener:
                        self._accept_one()
                        continue
                    worker = self._workers.get(sock)
                    if worker is None:
                        continue
                    try:
                        frame = recv_frame(sock)
                    except (OSError, TransportError):
                        frame = None
                    if frame is None:
                        self._drop(worker)
                        continue
                    worker.last_seen = now
                    if frame.get("type") != "result":
                        continue  # heartbeat (or junk we tolerate)
                    self._take_result(worker, frame)

                # Reap workers that went silent mid-lease.
                for worker in list(self._workers.values()):
                    if now - worker.last_seen > self.heartbeat_timeout:
                        self._drop(worker)

            return [(island, self._results[island]) for island, _ in jobs]
        finally:
            # Leases that lost a race stay on their workers (their results
            # arrive later and are discarded by generation); the epoch
            # context itself is gone.
            self._payloads = None
            self._pending = None
            self._results = None


# -- the worker process --------------------------------------------------------


def backoff_delays(
    attempts: int,
    base: float = 0.25,
    cap: float = BACKOFF_CAP,
    seed: int | None = None,
) -> Iterator[float]:
    """Yield ``attempts`` (re)connect delays: capped exponential, jittered.

    The delay doubles from ``base`` up to ``cap``; each is scaled by a
    jitter factor in ``[0.5, 1.5)`` drawn from a tiny LCG seeded with
    ``seed`` (the process id by default), so the workers of one host fan
    out instead of hammering a restarting coordinator in lockstep — yet a
    fixed seed replays the exact schedule, which the chaos tests rely on.
    """
    state = ((os.getpid() if seed is None else seed) ^ 0x5DEECE66D) & 0x7FFFFFFF
    state = state or 1
    for attempt in range(attempts):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        jitter = 0.5 + state / 0x80000000
        yield min(cap, base * (1 << attempt)) * jitter


def _connect_with_backoff(
    host: str,
    port: int,
    attempts: int,
    base_delay: float,
    deadline: float | None = None,
    seed: int | None = None,
) -> tuple[socket.socket | None, OSError | None]:
    """Connect with backoff; ``(None, last_error)`` once attempts/deadline
    are exhausted (the caller decides whether that is fatal)."""
    last_error: OSError | None = None
    for delay in backoff_delays(attempts, base=base_delay, seed=seed):
        try:
            return socket.create_connection((host, port), timeout=30.0), None
        except OSError as exc:
            last_error = exc
        if deadline is not None:
            delay = min(delay, deadline - time.monotonic())
            if delay < 0:
                break
        time.sleep(delay)
    return None, last_error


def _serve_connection(sock: socket.socket, heartbeat_interval: float) -> str:
    """Serve one coordinator connection until it ends.

    Returns ``"shutdown"`` on an orderly end of service (a ``shutdown``
    frame) and ``"lost"`` when the connection died or the coordinator spoke
    garbage — the caller decides whether to re-attach.  Closes ``sock``.
    """
    send_lock = threading.Lock()
    stop = threading.Event()

    def _heartbeat() -> None:
        while not stop.wait(heartbeat_interval):
            try:
                send_frame(sock, {"type": "heartbeat"}, lock=send_lock)
            except OSError:
                return

    try:
        send_frame(
            sock, {"type": "hello", "protocol": PROTOCOL_VERSION}, lock=send_lock
        )
        setup = recv_frame(sock)
        if setup is None or setup.get("type") != "setup":
            return "lost"
        evolver = evolver_from_jsonable(setup["problem"])

        beater = threading.Thread(target=_heartbeat, daemon=True)
        beater.start()

        while True:
            message = recv_frame(sock)
            if message is None:
                return "lost"
            if message.get("type") == "shutdown":
                return "shutdown"
            if message.get("type") != "job":
                continue
            job_id = message["job_id"]
            generations = int(message["generations"])
            # One result frame per island, streamed as each finishes, so
            # the coordinator sees per-island completions (work stealing
            # keys off them) rather than one response per batch.
            for island, payload in message["islands"]:
                state = EvolutionState.from_jsonable(payload)
                advanced = evolver.advance(state, generations)
                send_frame(
                    sock,
                    {
                        "type": "result",
                        "job_id": job_id,
                        "island": int(island),
                        "state": advanced.to_jsonable(),
                    },
                    lock=send_lock,
                )
    except (OSError, TransportError, CheckpointError, KeyError, TypeError, ValueError):
        # Connection died mid-frame, or this coordinator incarnation sent
        # something unusable: treat both as a lost connection and let the
        # caller's reconnect loop decide if the coordinator is really gone.
        return "lost"
    finally:
        stop.set()
        sock.close()


def run_worker(
    host: str,
    port: int,
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    connect_retries: int = 10,
    retry_delay: float = 0.25,
    max_reconnect_attempts: int = 10,
    reconnect_window: float = 60.0,
    jitter_seed: int | None = None,
    wrap_socket: Callable[[socket.socket], socket.socket] | None = None,
) -> int:
    """Serve epochs for a :class:`SocketTransport` coordinator; returns an
    exit code.

    Connects (with capped exponential backoff + deterministic jitter while
    the coordinator's listener comes up — see :func:`backoff_delays`; the
    schedule starts at ``retry_delay`` and runs ``connect_retries``
    attempts), performs the hello/version handshake, rebuilds the evolver
    from the setup frame, then loops: receive a leased island batch,
    advance each island, stream the results back.  A daemon thread emits
    heartbeats every ``heartbeat_interval`` seconds per connection, so the
    coordinator can tell a slow epoch from a dead worker.

    A lost connection mid-service — coordinator crash, dropped lease after
    a stall, network blip — starts a *reconnect loop*: up to
    ``max_reconnect_attempts`` backoff attempts within
    ``reconnect_window`` seconds, each re-performing the problem handshake
    against whatever coordinator incarnation answers (a restarted
    ``infer --resume`` on the same address included).  Any in-flight lease
    is discarded — the new incarnation re-leases it, and duplicates are
    dropped by lease generation.  The worker exits 0 only on an explicit
    ``shutdown`` frame or once the coordinator is confirmed gone (the full
    reconnect budget elapsed); failing the *initial* connect raises
    :class:`TransportError` instead, because there was never a coordinator
    to outlive.

    ``jitter_seed`` pins the backoff schedule (tests); ``wrap_socket``
    lets the fault-injection harness interpose a
    :class:`~repro.pmevo.faults.FaultySocket` on each connection.
    """
    sock, last_error = _connect_with_backoff(
        host, port, connect_retries, retry_delay, seed=jitter_seed
    )
    if sock is None:
        raise TransportError(
            f"could not connect to coordinator at {host}:{port}: {last_error}"
        )
    while True:
        sock.settimeout(None)
        if wrap_socket is not None:
            sock = wrap_socket(sock)
        if _serve_connection(sock, heartbeat_interval) == "shutdown":
            return 0
        deadline = time.monotonic() + reconnect_window
        sock, _ = _connect_with_backoff(
            host,
            port,
            max_reconnect_attempts,
            retry_delay,
            deadline=deadline,
            seed=jitter_seed,
        )
        if sock is None:
            # The coordinator is confirmed gone (refused/unreachable for
            # the whole reconnect budget): an orderly end of service, not
            # a worker failure.
            return 0
