"""Migration transports: how island states move during an epoch.

:class:`~repro.pmevo.islands.IslandEvolver` runs K populations through
alternating *epochs* (``migration_interval`` generations of independent
evolution) and *migrations* (elite exchange around the ring).  The epoch is
embarrassingly parallel, and everything an epoch needs travels inside the
:class:`~repro.pmevo.evolution.EvolutionState` — so the island loop does not
care *where* an epoch runs.  This module makes that explicit: a
:class:`MigrationTransport` ships states out, advances them, and ships them
back, and the evolver is written against the protocol alone.

Protocol contract
-----------------
A transport has three methods, called in this order by one driving thread:

``start(evolver)``
    Called once before the first epoch with the fully constructed
    :class:`~repro.pmevo.evolution.PortMappingEvolver` (the heavy shared
    object: evaluator, measurement matrices, config).  The transport may
    distribute it to workers here; it crosses any process/network boundary
    exactly once per run.
``advance(jobs, generations)``
    ``jobs`` is a list of ``(island_index, state)`` pairs.  The transport
    must return ``(island_index, advanced_state)`` for *every* job (any
    order), where ``advanced_state`` is exactly
    ``evolver.advance(state, generations)``.  It must not advance a state it
    was not given and must not reorder generations within a state.
``close()``
    Called once (also on error paths); releases pools/sockets.  Idempotent.

States cross process and network boundaries in the
:meth:`~repro.pmevo.evolution.EvolutionState.to_json` wire form, whose
population travels as a packed base64 npz blob
(:class:`~repro.pmevo.packed.PackedPopulation`) — far smaller than the
per-genome JSON dicts it replaced, which matters per epoch on the socket
transport.

Reproducibility guarantee
-------------------------
``evolver.advance`` is a pure function of ``(state, generations)`` — each
state carries its own numpy generator — so *who* computes an epoch cannot
change its result.  All transports therefore produce bit-identical runs for
a fixed seed; ``tests/test_transport_equivalence.py`` pins
Serial = Pool = Socket down to the serialized result bytes.

Failure semantics
-----------------
:class:`SerialTransport` and :class:`PoolTransport` fail loudly (pool errors
propagate).  :class:`SocketTransport` degrades instead: workers announce
themselves with a hello/version handshake, send heartbeats while computing,
and are declared dead after ``heartbeat_timeout`` seconds of silence (or any
socket/framing error), at which point their leased epochs are reassigned to
live workers.  If every worker dies the coordinator finishes the epoch
in-process — a run that started always completes, and because of the purity
argument above the recovery path cannot change the result.  Startup is the
exception: fewer than ``min_workers`` connections within ``start_timeout``
raises :class:`repro.core.errors.TransportError`.

Wire format (socket transport)
------------------------------
Frames are length-prefixed JSON: a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON.  Messages carry a ``"type"``
key: ``hello`` (worker → coordinator, with ``"protocol"``), ``setup``
(coordinator → worker, the serialized problem), ``job`` / ``result``
(a leased epoch and its advanced state), ``heartbeat`` (worker →
coordinator, periodic), and ``shutdown`` (coordinator → worker).
"""

from __future__ import annotations

import json
import multiprocessing
import select
import socket
import struct
import threading
import time
from collections import deque
from collections.abc import Mapping
from typing import Protocol, runtime_checkable

from repro.core.errors import CheckpointError, TransportError
from repro.core.experiment import Experiment, ExperimentSet
from repro.core.ports import PortSpace
from repro.pmevo.evolution import (
    EvolutionState,
    PortMappingEvolver,
    config_from_jsonable,
    config_to_jsonable,
)

__all__ = [
    "MigrationTransport",
    "SerialTransport",
    "PoolTransport",
    "SocketTransport",
    "run_worker",
    "parse_address",
    "problem_to_jsonable",
    "evolver_from_jsonable",
    "PROTOCOL_VERSION",
]

#: Version tag of the hello handshake; bumped on incompatible frame changes.
PROTOCOL_VERSION = 1

#: Upper bound on a single frame (guards against garbage length prefixes).
_MAX_FRAME_BYTES = 1 << 29

_LENGTH = struct.Struct(">I")


# -- framing -----------------------------------------------------------------


def send_frame(sock: socket.socket, message: Mapping, lock: threading.Lock | None = None) -> None:
    """Send one length-prefixed JSON frame (optionally under ``lock``)."""
    payload = json.dumps(message).encode("utf-8")
    if len(payload) > _MAX_FRAME_BYTES:
        raise TransportError(f"frame of {len(payload)} bytes exceeds the limit")
    data = _LENGTH.pack(len(payload)) + payload
    if lock is None:
        sock.sendall(data)
    else:
        with lock:
            sock.sendall(data)


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; ``None`` on EOF at a frame boundary."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks:
                return None
            raise TransportError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict | None:
    """Receive one frame; ``None`` on a clean EOF between frames.

    Raises :class:`TransportError` on truncated frames, oversized lengths,
    or payloads that are not a JSON object.
    """
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > _MAX_FRAME_BYTES:
        raise TransportError(f"announced frame of {length} bytes exceeds the limit")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise TransportError("connection closed between length and payload")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"undecodable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise TransportError(f"frame is not a JSON object: {message!r}")
    return message


def parse_address(text: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` string (used by ``--bind`` / ``--connect``)."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise TransportError(f"expected HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError as exc:
        raise TransportError(f"invalid port in {text!r}") from exc
    if not 0 <= port <= 65535:
        raise TransportError(f"port out of range in {text!r}")
    return host, port


# -- problem serialization ----------------------------------------------------


def problem_to_jsonable(evolver: PortMappingEvolver) -> dict:
    """JSON-safe description of an evolver's inference problem.

    Captures everything a remote worker needs to rebuild an equivalent
    :class:`PortMappingEvolver`: the port space, the measured experiments
    (insertion order preserved — fitness evaluation iterates them), the
    singleton throughputs, and the evolution config.
    """
    return {
        "ports": list(evolver.ports.names),
        "experiments": [
            {"counts": dict(item.experiment.counts), "throughput": item.throughput}
            for item in evolver.measurements
        ],
        "singleton_throughputs": dict(evolver.singleton_throughputs),
        "config": config_to_jsonable(evolver.config),
    }


def evolver_from_jsonable(data: Mapping) -> PortMappingEvolver:
    """Rebuild a :class:`PortMappingEvolver` from :func:`problem_to_jsonable`."""
    try:
        ports = PortSpace(data["ports"])
        measurements = ExperimentSet()
        for entry in data["experiments"]:
            measurements.add(Experiment(entry["counts"]), float(entry["throughput"]))
        singles = {
            str(name): float(value)
            for name, value in data["singleton_throughputs"].items()
        }
        config = config_from_jsonable(data["config"])
    except (KeyError, TypeError, ValueError) as exc:
        raise TransportError(f"malformed problem payload: {exc}") from exc
    return PortMappingEvolver(ports, measurements, singles, config)


# -- the protocol and the in-process transports -------------------------------


@runtime_checkable
class MigrationTransport(Protocol):
    """Where epochs run; see the module docstring for the full contract."""

    def start(self, evolver: PortMappingEvolver) -> None:
        """Prepare for epochs of ``evolver`` (distribute it to workers)."""

    def advance(
        self, jobs: list[tuple[int, EvolutionState]], generations: int
    ) -> list[tuple[int, EvolutionState]]:
        """Advance every ``(island, state)`` job by ``generations``."""

    def close(self) -> None:
        """Release resources; idempotent, called on error paths too."""


class SerialTransport:
    """Runs every epoch in the calling process.  Zero dependencies, zero
    overhead; the reference against which the other transports are pinned."""

    def __init__(self) -> None:
        self._evolver: PortMappingEvolver | None = None

    def start(self, evolver: PortMappingEvolver) -> None:
        self._evolver = evolver

    def advance(
        self, jobs: list[tuple[int, EvolutionState]], generations: int
    ) -> list[tuple[int, EvolutionState]]:
        assert self._evolver is not None, "start() was not called"
        return [(k, self._evolver.advance(state, generations)) for k, state in jobs]

    def close(self) -> None:
        self._evolver = None


# The evolver is installed once per pool worker by the initializer; epoch
# jobs then only carry island states.
_WORKER_EVOLVER: PortMappingEvolver | None = None


def _install_worker_evolver(evolver: PortMappingEvolver) -> None:
    global _WORKER_EVOLVER
    _WORKER_EVOLVER = evolver


def _advance_epoch(job: tuple[EvolutionState, int]) -> EvolutionState:
    state, generations = job
    assert _WORKER_EVOLVER is not None, "worker pool initializer did not run"
    return _WORKER_EVOLVER.advance(state, generations)


class PoolTransport:
    """Runs epochs on a ``multiprocessing`` pool (the single-host default).

    The evolver crosses the process boundary once via the pool initializer;
    per epoch only the small pickled island states travel.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise TransportError("pool transport needs at least one worker")
        self.workers = workers
        self._pool: multiprocessing.pool.Pool | None = None

    def start(self, evolver: PortMappingEvolver) -> None:
        self._pool = multiprocessing.Pool(
            processes=self.workers,
            initializer=_install_worker_evolver,
            initargs=(evolver,),
        )

    def advance(
        self, jobs: list[tuple[int, EvolutionState]], generations: int
    ) -> list[tuple[int, EvolutionState]]:
        assert self._pool is not None, "start() was not called"
        advanced = self._pool.map(
            _advance_epoch, [(state, generations) for _, state in jobs]
        )
        return [(k, state) for (k, _), state in zip(jobs, advanced)]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None


# -- the socket transport -----------------------------------------------------


class _RemoteWorker:
    """Coordinator-side bookkeeping for one connected worker."""

    __slots__ = ("sock", "address", "last_seen", "island", "job_id", "state_payload")

    def __init__(self, sock: socket.socket, address):
        self.sock = sock
        self.address = address
        self.last_seen = time.monotonic()
        self.island: int | None = None
        self.job_id: int | None = None
        self.state_payload: dict | None = None

    @property
    def busy(self) -> bool:
        return self.job_id is not None


class SocketTransport:
    """TCP coordinator that leases epochs to ``repro-pmevo worker`` processes.

    Workers connect (possibly from other machines), complete a
    hello/version handshake, and receive the serialized inference problem
    once.  Each epoch the coordinator leases one ``(island, state)`` job per
    idle worker, collects advanced states, and re-leases the jobs of workers
    that died (socket error, malformed frame, or ``heartbeat_timeout``
    seconds without a frame).  Late joiners are accepted mid-run and start
    receiving leases at the next assignment opportunity.  If the last worker
    dies, the remaining jobs of the epoch run in the coordinator process —
    see the module docstring for why no recovery path can change results.

    Parameters
    ----------
    host, port:
        Bind address; port 0 picks an ephemeral port (``address`` holds the
        actual one after :meth:`listen`).
    min_workers:
        How many workers :meth:`start` waits for before the first epoch.
    heartbeat_timeout:
        Seconds of per-worker silence before its lease is reassigned.
    start_timeout:
        Seconds :meth:`start` waits for ``min_workers`` connections.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        min_workers: int = 1,
        heartbeat_timeout: float = 30.0,
        start_timeout: float = 120.0,
    ):
        if min_workers < 1:
            raise TransportError("socket transport needs at least one worker")
        self._bind = (host, port)
        self.min_workers = min_workers
        self.heartbeat_timeout = heartbeat_timeout
        self.start_timeout = start_timeout
        self.address: tuple[str, int] | None = None
        self._listener: socket.socket | None = None
        self._workers: dict[socket.socket, _RemoteWorker] = {}
        self._evolver: PortMappingEvolver | None = None
        self._setup_payload: dict | None = None
        self._next_job_id = 0

    # -- lifecycle ---------------------------------------------------------

    def listen(self) -> tuple[str, int]:
        """Open the listening socket (idempotent) and return its address.

        Split out from :meth:`start` so a CLI can print the ephemeral port
        for workers to connect to *before* the (potentially long)
        measurement phase that precedes the first epoch.
        """
        if self._listener is None:
            self._listener = socket.create_server(self._bind, backlog=16)
            self.address = self._listener.getsockname()[:2]
        return self.address

    def start(self, evolver: PortMappingEvolver) -> None:
        self._evolver = evolver
        self._setup_payload = {"type": "setup", "problem": problem_to_jsonable(evolver)}
        self.listen()
        deadline = time.monotonic() + self.start_timeout
        while len(self._workers) < self.min_workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TransportError(
                    f"timed out after {self.start_timeout:.0f}s waiting for "
                    f"{self.min_workers} worker(s) on {self.address[0]}:{self.address[1]} "
                    f"({len(self._workers)} connected); start workers with "
                    f"`repro-pmevo worker --connect HOST:PORT`"
                )
            readable, _, _ = select.select([self._listener], [], [], min(remaining, 0.5))
            if readable:
                self._accept_one()

    def close(self) -> None:
        for worker in list(self._workers.values()):
            try:
                send_frame(worker.sock, {"type": "shutdown"})
            except OSError:
                pass
            worker.sock.close()
        self._workers.clear()
        if self._listener is not None:
            self._listener.close()
            self._listener = None

    # -- worker management -------------------------------------------------

    def _accept_one(self) -> None:
        """Accept one pending connection and complete the handshake."""
        assert self._listener is not None
        try:
            sock, address = self._listener.accept()
        except OSError:
            return
        # The handshake runs on the coordinator's only thread: keep its
        # timeout short so a silent connection (port scanner, half-open
        # socket) cannot stall epoch collection for heartbeat_timeout.
        sock.settimeout(min(5.0, self.heartbeat_timeout))
        try:
            hello = recv_frame(sock)
            if (
                hello is None
                or hello.get("type") != "hello"
                or hello.get("protocol") != PROTOCOL_VERSION
            ):
                raise TransportError(f"bad handshake from {address}: {hello!r}")
            if self._setup_payload is not None:
                send_frame(sock, self._setup_payload)
        except (OSError, TransportError):
            sock.close()
            return
        sock.settimeout(self.heartbeat_timeout)
        self._workers[sock] = _RemoteWorker(sock, address)

    def _drop(self, worker: _RemoteWorker, pending: deque) -> None:
        """Forget a dead worker, requeueing its leased epoch if any."""
        self._workers.pop(worker.sock, None)
        worker.sock.close()
        if worker.island is not None and worker.state_payload is not None:
            pending.appendleft((worker.island, worker.state_payload))

    def _assign(self, worker: _RemoteWorker, island: int, state_payload: dict, generations: int) -> None:
        # Record the lease BEFORE sending: if sendall raises (worker died
        # between epochs), _drop() finds the lease on the worker and
        # requeues it — otherwise the epoch would be lost and advance()
        # could never complete.
        self._next_job_id += 1
        worker.island = island
        worker.job_id = self._next_job_id
        worker.state_payload = state_payload
        send_frame(
            worker.sock,
            {
                "type": "job",
                "job_id": worker.job_id,
                "generations": generations,
                "state": state_payload,
            },
        )

    # -- the epoch ---------------------------------------------------------

    def advance(
        self, jobs: list[tuple[int, EvolutionState]], generations: int
    ) -> list[tuple[int, EvolutionState]]:
        assert self._evolver is not None, "start() was not called"
        # States are serialized once up front; the payload doubles as the
        # requeue ticket when a worker dies mid-epoch.
        pending: deque[tuple[int, dict]] = deque(
            (island, state.to_jsonable()) for island, state in jobs
        )
        results: dict[int, EvolutionState] = {}

        while len(results) < len(jobs):
            # Lease pending epochs to idle workers.
            for worker in list(self._workers.values()):
                if not pending:
                    break
                if worker.busy:
                    continue
                island, payload = pending.popleft()
                try:
                    self._assign(worker, island, payload, generations)
                except OSError:
                    self._drop(worker, pending)

            # Everyone is gone: check for a late joiner first, then advance
            # one pending epoch locally (deterministic — the same advance()
            # a worker would have computed) and look again, so replacement
            # workers are picked up between jobs instead of idling until
            # the run ends.
            if not self._workers:
                joinable, _, _ = select.select([self._listener], [], [], 0)
                if joinable:
                    self._accept_one()
                    continue
                if pending:
                    island, payload = pending.popleft()
                    state = EvolutionState.from_jsonable(payload)
                    results[island] = self._evolver.advance(state, generations)
                continue

            sockets = [self._listener] + list(self._workers)
            readable, _, _ = select.select(sockets, [], [], 0.5)
            now = time.monotonic()
            for sock in readable:
                if sock is self._listener:
                    self._accept_one()
                    continue
                worker = self._workers.get(sock)
                if worker is None:
                    continue
                try:
                    frame = recv_frame(sock)
                except (OSError, TransportError):
                    frame = None
                if frame is None:
                    self._drop(worker, pending)
                    continue
                worker.last_seen = now
                if frame.get("type") != "result":
                    continue  # heartbeat (or junk we tolerate)
                if frame.get("job_id") != worker.job_id:
                    continue  # stale result for a reassigned lease
                try:
                    state = EvolutionState.from_jsonable(frame["state"])
                except (KeyError, CheckpointError):
                    self._drop(worker, pending)
                    continue
                results[worker.island] = state
                worker.island = worker.job_id = worker.state_payload = None

            # Reap workers that went silent mid-lease.
            for worker in list(self._workers.values()):
                if now - worker.last_seen > self.heartbeat_timeout:
                    self._drop(worker, pending)

        return [(island, results[island]) for island, _ in jobs]


# -- the worker process --------------------------------------------------------


def run_worker(
    host: str,
    port: int,
    heartbeat_interval: float = 2.0,
    connect_retries: int = 40,
    retry_delay: float = 0.25,
) -> int:
    """Serve epochs for a :class:`SocketTransport` coordinator; returns an
    exit code.

    Connects (retrying while the coordinator's listener comes up), performs
    the hello/version handshake, rebuilds the evolver from the setup frame,
    then loops: receive a leased epoch, advance it, send the result.  A
    daemon thread emits heartbeats every ``heartbeat_interval`` seconds for
    the whole connection lifetime, so the coordinator can tell a slow epoch
    from a dead worker.  Exits cleanly on a ``shutdown`` frame or when the
    coordinator closes the connection.
    """
    sock: socket.socket | None = None
    last_error: OSError | None = None
    for _ in range(connect_retries):
        try:
            sock = socket.create_connection((host, port), timeout=30.0)
            break
        except OSError as exc:
            last_error = exc
            time.sleep(retry_delay)
    if sock is None:
        raise TransportError(
            f"could not connect to coordinator at {host}:{port}: {last_error}"
        )
    sock.settimeout(None)

    send_lock = threading.Lock()
    stop = threading.Event()

    def _heartbeat() -> None:
        while not stop.wait(heartbeat_interval):
            try:
                send_frame(sock, {"type": "heartbeat"}, lock=send_lock)
            except OSError:
                return

    try:
        send_frame(sock, {"type": "hello", "protocol": PROTOCOL_VERSION}, lock=send_lock)
        setup = recv_frame(sock)
        if setup is None or setup.get("type") != "setup":
            raise TransportError(f"expected setup frame, got {setup!r}")
        evolver = evolver_from_jsonable(setup["problem"])

        beater = threading.Thread(target=_heartbeat, daemon=True)
        beater.start()

        # Once serving, a vanished coordinator (connection reset while
        # receiving a job or sending a result — e.g. it reassigned our
        # lease after a stall and closed the socket) is a normal end of
        # service, not a worker failure: exit cleanly.
        try:
            while True:
                message = recv_frame(sock)
                if message is None or message.get("type") == "shutdown":
                    return 0
                if message.get("type") != "job":
                    continue
                state = EvolutionState.from_jsonable(message["state"])
                advanced = evolver.advance(state, int(message["generations"]))
                send_frame(
                    sock,
                    {
                        "type": "result",
                        "job_id": message["job_id"],
                        "state": advanced.to_jsonable(),
                    },
                    lock=send_lock,
                )
        except (OSError, TransportError):
            return 0
    finally:
        stop.set()
        sock.close()
