"""Island-model parallel evolution (the paper's parallelized EA, Section 4.5).

PMEvo's reference implementation runs its evolutionary algorithm in parallel
on multicore machines — fitness-evaluation throughput "directly corresponds
to the quality of the obtained solution".  This module is our analogue: it
runs K independent :class:`~repro.pmevo.evolution.PortMappingEvolver`
populations ("islands") concurrently and periodically migrates elite genomes
around a ring topology, the classic coarse-grained parallel EA.

*Where* the concurrent epochs run is delegated to a
:class:`~repro.pmevo.transport.MigrationTransport`: in-process
(:class:`~repro.pmevo.transport.SerialTransport`), on a ``multiprocessing``
pool (:class:`~repro.pmevo.transport.PoolTransport`, the default for
``workers > 1``), or distributed over TCP to ``repro-pmevo worker``
processes on other machines
(:class:`~repro.pmevo.transport.SocketTransport`).  The run loop only ever
sees ``(island, state)`` pairs going out and coming back at the epoch
barrier; on the wire each state's population rides as a packed npz blob
(:class:`~repro.pmevo.packed.PackedPopulation`), keeping epoch payloads
small.

Design goals, in order:

1. **Bit-reproducibility.**  Island k's generator is derived from the single
   root seed via ``numpy``'s :class:`~numpy.random.SeedSequence` spawning, and
   each island's trajectory depends only on its own state.  Transports merely
   *move* states — ``advance`` is a pure function of ``(state, generations)``
   — so the result is byte-identical for any transport, worker count, or
   worker failure/recovery schedule.  ``tests/test_islands.py`` and
   ``tests/test_transport_equivalence.py`` pin this invariant.
2. **Deterministic migration.**  Every ``migration_interval`` generations the
   transport is drained and island k's ``migration_size`` best individuals
   (lexicographic ``(D_avg, volume)``, stable) replace the worst individuals
   of island ``(k+1) % K``.  All emigrants are selected from the
   pre-migration snapshot, so the ring order does not matter.
3. **Interruptibility.**  The epoch barrier is also the checkpoint boundary:
   pass a :class:`~repro.pmevo.checkpoint.Checkpointer` to :meth:`IslandEvolver.run`
   to write atomic snapshots, and a loaded
   :class:`~repro.pmevo.checkpoint.CheckpointSnapshot` as ``resume`` to
   continue a killed run bit-identically to an uninterrupted one.  Under a
   :class:`~repro.pmevo.transport.SocketTransport` this doubles as
   *coordinator crash recovery*: the checkpointer journals every completed
   epoch, live workers re-attach to a restarted coordinator on the same
   bind address, and purity of ``advance`` means the replayed epochs land
   on the very same bytes (``tests/test_chaos.py`` SIGKILLs each process
   class to prove it).

The scalarized fitness of Section 4.4 normalizes objectives *per
population*: immigrants are re-ranked under the destination island's current
extremes, so a genome that was mediocre at home can anchor selection abroad —
that, not raw throughput, is why migration helps search quality.
"""

from __future__ import annotations

import dataclasses
import json
import time
from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import CheckpointError, InferenceError
from repro.core.experiment import ExperimentSet
from repro.core.mapping import ThreeLevelMapping
from repro.core.ports import PortSpace
from repro.pmevo.checkpoint import Checkpointer, CheckpointSnapshot
from repro.pmevo.evolution import (
    EvolutionConfig,
    EvolutionResult,
    EvolutionState,
    GenerationStats,
    PortMappingEvolver,
    history_from_jsonable as _history_from_jsonable,
    history_to_jsonable as _history_to_jsonable,
)
from repro.pmevo.population import (
    copy_genome,
    genome_from_jsonable,
    genome_to_jsonable,
)
from repro.pmevo.transport import (
    MigrationTransport,
    PoolTransport,
    SerialTransport,
)

__all__ = [
    "IslandResult",
    "IslandEvolver",
    "derive_island_rngs",
    "migrate_ring",
    "default_transport",
]


@dataclass
class IslandResult(EvolutionResult):
    """An :class:`EvolutionResult` with per-island convergence tracking.

    ``history`` (inherited) is the winning island's trajectory, so existing
    consumers keep working; the extra fields record the full picture.

    The result round-trips through JSON (:meth:`to_json` / :meth:`from_json`)
    with the same exactness guarantees as
    :class:`~repro.pmevo.evolution.EvolutionState` — the serialized bytes are
    what the transport-equivalence tests compare.
    """

    islands: int = 1
    workers: int = 1
    epochs: int = 0
    migrations: int = 0
    best_island: int = 0
    island_histories: list[list[GenerationStats]] = field(default_factory=list)
    island_davgs: list[float] = field(default_factory=list)
    islands_converged: list[bool] = field(default_factory=list)
    #: Scheduling/recovery telemetry from the transport (e.g.
    #: :attr:`~repro.pmevo.transport.SocketTransport.stats`): leases,
    #: steals, stale results, requeues, worker drops.  Deliberately outside
    #: the serialized form and excluded from comparisons — it records *how*
    #: the run was scheduled, which the bit-identity guarantee says must
    #: never influence *what* was computed.
    transport_stats: dict | None = field(default=None, compare=False)

    def to_jsonable(self) -> dict:
        """JSON-safe dict form of the complete result."""
        return {
            "mapping": self.mapping.to_dict(),
            "genome": genome_to_jsonable(self.genome),
            "davg": float(self.davg),
            "volume": int(self.volume),
            "generations": self.generations,
            "evaluations": self.evaluations,
            "wall_seconds": float(self.wall_seconds),
            "history": _history_to_jsonable(self.history),
            "converged": self.converged,
            "islands": self.islands,
            "workers": self.workers,
            "epochs": self.epochs,
            "migrations": self.migrations,
            "best_island": self.best_island,
            "island_histories": [
                _history_to_jsonable(h) for h in self.island_histories
            ],
            "island_davgs": [float(v) for v in self.island_davgs],
            "islands_converged": list(self.islands_converged),
        }

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_jsonable())

    @classmethod
    def from_jsonable(cls, data: Mapping) -> "IslandResult":
        """Rebuild a result from :meth:`to_jsonable` output.

        Raises :class:`repro.core.errors.CheckpointError` on malformed
        payloads.
        """
        try:
            return cls(
                mapping=ThreeLevelMapping.from_dict(data["mapping"]),
                genome=genome_from_jsonable(data["genome"]),
                davg=float(data["davg"]),
                volume=int(data["volume"]),
                generations=int(data["generations"]),
                evaluations=int(data["evaluations"]),
                wall_seconds=float(data["wall_seconds"]),
                history=_history_from_jsonable(data["history"]),
                converged=bool(data["converged"]),
                islands=int(data["islands"]),
                workers=int(data["workers"]),
                epochs=int(data["epochs"]),
                migrations=int(data["migrations"]),
                best_island=int(data["best_island"]),
                island_histories=[
                    _history_from_jsonable(h) for h in data["island_histories"]
                ],
                island_davgs=[float(v) for v in data["island_davgs"]],
                islands_converged=[bool(v) for v in data["islands_converged"]],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed island result: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "IslandResult":
        """Deserialize from a JSON string."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"island result is not valid JSON: {exc}") from exc
        return cls.from_jsonable(data)


def derive_island_rngs(root_seed: int, islands: int) -> list[np.random.Generator]:
    """Per-island generators spawned deterministically from one root seed.

    A single island gets ``default_rng(root_seed)`` — the exact stream
    :class:`PortMappingEvolver` uses — so a 1-island archipelago (e.g. a
    sequential run that only wants checkpointing or a transport) is
    bit-identical to the plain sequential Algorithm 1 for the same seed.
    Multiple islands get independent streams via ``SeedSequence`` spawning.
    """
    if islands < 1:
        raise InferenceError("need at least one island")
    if islands == 1:
        return [np.random.default_rng(root_seed)]
    children = np.random.SeedSequence(root_seed).spawn(islands)
    return [np.random.default_rng(sequence) for sequence in children]


def migrate_ring(states: list[EvolutionState], migration_size: int) -> int:
    """Send each island's elite to its ring successor; returns genomes moved.

    Emigrants are the ``migration_size`` best individuals (lexicographic
    ``(D_avg, volume)``, stable sort) of each island's *pre-migration*
    population; they replace the destination's worst individuals.  States
    are mutated in place.  The donor keeps its copies — migration copies,
    it does not resettle.
    """
    if migration_size <= 0 or len(states) < 2:
        return 0
    snapshots = []
    for state in states:
        order = np.lexsort((state.volumes, state.davgs))
        emigrants = [
            (
                copy_genome(state.population[int(i)]),
                float(state.davgs[int(i)]),
                float(state.volumes[int(i)]),
            )
            for i in order[:migration_size]
        ]
        snapshots.append(emigrants)
    moved = 0
    for source, emigrants in enumerate(snapshots):
        target = states[(source + 1) % len(states)]
        # Worst-first within the target, recomputed against its own
        # (pre-migration) objectives — deterministic under the stable sort.
        worst = np.lexsort((target.volumes, target.davgs))[::-1]
        for slot, (genome, davg, volume) in zip(worst[: len(emigrants)], emigrants):
            index = int(slot)
            target.population[index] = genome
            target.davgs[index] = davg
            target.volumes[index] = volume
            moved += 1
    return moved


def default_transport(config: EvolutionConfig) -> MigrationTransport:
    """The transport ``IslandEvolver`` uses when none is supplied.

    ``workers <= 1`` (after capping at the island count) keeps everything
    in-process; more workers get a ``multiprocessing`` pool — the same
    behaviour the pre-transport implementation hard-coded.
    """
    workers = min(config.workers, config.islands)
    if workers <= 1:
        return SerialTransport()
    return PoolTransport(workers)


class IslandEvolver:
    """Evolves ``config.islands`` populations with periodic ring migration.

    Drop-in alternative to :class:`PortMappingEvolver` (same constructor,
    same ``run()`` contract); each island holds ``config.population_size``
    individuals, so K islands search a K-fold larger gene pool while each
    generation's fitness batch stays small enough to parallelize.

    Parameters
    ----------
    ports, measurements, singleton_throughputs, config:
        As for :class:`PortMappingEvolver`.
    transport:
        Where epochs run (see :mod:`repro.pmevo.transport`).  Defaults to
        :func:`default_transport` of the config — serial for one worker, a
        process pool otherwise.  The choice cannot affect results, only
        wall-clock.
    """

    def __init__(
        self,
        ports: PortSpace,
        measurements: ExperimentSet,
        singleton_throughputs: Mapping[str, float],
        config: EvolutionConfig | None = None,
        transport: MigrationTransport | None = None,
    ):
        self.config = config or EvolutionConfig()
        self.evolver = PortMappingEvolver(
            ports, measurements, singleton_throughputs, self.config
        )
        self.ports = ports
        self.transport = transport

    # Separated out for testability: run one epoch's worth of generations on
    # every active island via the transport.
    def _advance_all(
        self,
        states: list[EvolutionState],
        generations: int,
        transport: MigrationTransport,
    ) -> list[EvolutionState]:
        jobs: list[tuple[int, EvolutionState]] = [
            (k, state)
            for k, state in enumerate(states)
            if not state.stopped and state.generation < self.config.max_generations
        ]
        if not jobs:
            return states
        for k, advanced in transport.advance(jobs, generations):
            states[k] = advanced
        return states

    def _snapshot(
        self, epochs: int, migrations: int, states: list[EvolutionState]
    ) -> CheckpointSnapshot:
        return CheckpointSnapshot(
            config=self.config,
            instructions=self.evolver.names,
            num_ports=self.ports.num_ports,
            epochs=epochs,
            migrations=migrations,
            states=states,
        )

    def _check_resume(self, resume: CheckpointSnapshot) -> None:
        # `workers` only chooses where epochs run, never what they compute,
        # so a checkpoint from an 8-core box may resume on a 4-core one.
        if dataclasses.replace(resume.config, workers=self.config.workers) != self.config:
            raise CheckpointError(
                "checkpoint was written under a different evolution config; "
                "resume with the same seed/population/island settings "
                "(--workers may differ)"
            )
        if resume.instructions != self.evolver.names:
            raise CheckpointError(
                "checkpoint covers a different instruction universe than "
                "this run (did the machine preset, --forms, or --seed change?)"
            )
        if resume.num_ports != self.ports.num_ports:
            raise CheckpointError(
                f"checkpoint was written for {resume.num_ports} ports, "
                f"this run has {self.ports.num_ports}"
            )
        if len(resume.states) != self.config.islands:
            raise CheckpointError(
                f"checkpoint holds {len(resume.states)} island states, "
                f"config wants {self.config.islands}"
            )

    def run(
        self,
        checkpointer: Checkpointer | None = None,
        resume: CheckpointSnapshot | None = None,
    ) -> IslandResult:
        """Evolve all islands to completion and return the global best.

        ``checkpointer`` persists a snapshot at every ``interval``-th epoch
        barrier; ``resume`` continues from a loaded snapshot (validated
        against this evolver's config and problem) and is bit-identical to
        never having stopped.
        """
        start_time = time.perf_counter()
        config = self.config
        transport = self.transport or default_transport(config)

        if resume is not None:
            self._check_resume(resume)
            states = list(resume.states)
            epochs = resume.epochs
            migrations = resume.migrations
        else:
            rngs = derive_island_rngs(config.seed, config.islands)
            states = [self.evolver.init_state(rng) for rng in rngs]
            epochs = 0
            migrations = 0

        try:
            transport.start(self.evolver)
            while True:
                active = [
                    s
                    for s in states
                    if not s.stopped and s.generation < config.max_generations
                ]
                if not active:
                    break
                states = self._advance_all(states, config.migration_interval, transport)
                epochs += 1
                # Time-to-target runs: one island reaching the target ends
                # the whole archipelago (decided at the epoch barrier, so
                # the outcome is independent of worker scheduling).
                if any(s.target_reached for s in states):
                    break
                # Migrating into a stopped island could not change the
                # result (it never advances again and the migrant is judged
                # against the global best anyway), so exchange among all
                # islands unconditionally — it keeps the topology a ring.
                if any(
                    not s.stopped and s.generation < config.max_generations
                    for s in states
                ):
                    migrations += migrate_ring(states, config.migration_size)
                if checkpointer is not None:
                    checkpointer.after_epoch(self._snapshot(epochs, migrations, states))
        finally:
            transport.close()

        # Global winner: lexicographic (D_avg, volume) over each island's
        # champion, ties broken by island index for determinism.
        champions = [
            (float(s.davgs[s.best_index()]), float(s.volumes[s.best_index()]), k)
            for k, s in enumerate(states)
        ]
        best_island = min(champions)[2]
        base = self.evolver.finalize(states[best_island])

        result = IslandResult(
            mapping=base.mapping,
            genome=base.genome,
            davg=base.davg,
            volume=base.volume,
            generations=max(s.generation for s in states),
            evaluations=sum(s.evaluations for s in states),
            wall_seconds=time.perf_counter() - start_time,
            history=states[best_island].history,
            converged=all(s.converged for s in states),
            islands=config.islands,
            workers=min(config.workers, config.islands),
            epochs=epochs,
            migrations=migrations,
            best_island=best_island,
            island_histories=[s.history for s in states],
            island_davgs=[float(s.davgs[s.best_index()]) for s in states],
            islands_converged=[s.converged for s in states],
            transport_stats=getattr(transport, "stats", None),
        )
        return result
