"""Island-model parallel evolution (the paper's parallelized EA, Section 4.5).

PMEvo's reference implementation runs its evolutionary algorithm in parallel
on multicore machines — fitness-evaluation throughput "directly corresponds
to the quality of the obtained solution".  This module is our analogue: it
runs K independent :class:`~repro.pmevo.evolution.PortMappingEvolver`
populations ("islands") concurrently in a ``multiprocessing`` pool and
periodically migrates elite genomes around a ring topology, the classic
coarse-grained parallel EA.

Design goals, in order:

1. **Bit-reproducibility.**  Island k's generator is derived from the single
   root seed via ``numpy``'s :class:`~numpy.random.SeedSequence` spawning, and
   each island's trajectory depends only on its own state.  Worker processes
   merely *transport* states, so the result is byte-identical for any
   ``workers`` count (including the in-process ``workers=1`` path) — the
   invariant the determinism regression tests pin down.
2. **Determinstic migration.**  Every ``migration_interval`` generations the
   pool is drained and island k's ``migration_size`` best individuals
   (lexicographic ``(D_avg, volume)``, stable) replace the worst individuals
   of island ``(k+1) % K``.  All emigrants are selected from the
   pre-migration snapshot, so the ring order does not matter.
3. **Throughput.**  One worker process per ``workers`` is started once per
   run (the evaluator — the heavy shared object — crosses the process
   boundary once, via the pool initializer); per epoch only the small island
   states travel.

The scalarized fitness of Section 4.4 normalizes objectives *per
population*: immigrants are re-ranked under the destination island's current
extremes, so a genome that was mediocre at home can anchor selection abroad —
that, not raw throughput, is why migration helps search quality.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import InferenceError
from repro.core.experiment import ExperimentSet
from repro.core.ports import PortSpace
from repro.pmevo.evolution import (
    EvolutionConfig,
    EvolutionResult,
    EvolutionState,
    GenerationStats,
    PortMappingEvolver,
)
from repro.pmevo.population import copy_genome

__all__ = [
    "IslandResult",
    "IslandEvolver",
    "derive_island_rngs",
    "migrate_ring",
]


@dataclass
class IslandResult(EvolutionResult):
    """An :class:`EvolutionResult` with per-island convergence tracking.

    ``history`` (inherited) is the winning island's trajectory, so existing
    consumers keep working; the extra fields record the full picture.
    """

    islands: int = 1
    workers: int = 1
    epochs: int = 0
    migrations: int = 0
    best_island: int = 0
    island_histories: list[list[GenerationStats]] = field(default_factory=list)
    island_davgs: list[float] = field(default_factory=list)
    islands_converged: list[bool] = field(default_factory=list)


def derive_island_rngs(root_seed: int, islands: int) -> list[np.random.Generator]:
    """Per-island generators spawned deterministically from one root seed."""
    if islands < 1:
        raise InferenceError("need at least one island")
    children = np.random.SeedSequence(root_seed).spawn(islands)
    return [np.random.default_rng(sequence) for sequence in children]


def migrate_ring(states: list[EvolutionState], migration_size: int) -> int:
    """Send each island's elite to its ring successor; returns genomes moved.

    Emigrants are the ``migration_size`` best individuals (lexicographic
    ``(D_avg, volume)``, stable sort) of each island's *pre-migration*
    population; they replace the destination's worst individuals.  States
    are mutated in place.  The donor keeps its copies — migration copies,
    it does not resettle.
    """
    if migration_size <= 0 or len(states) < 2:
        return 0
    snapshots = []
    for state in states:
        order = np.lexsort((state.volumes, state.davgs))
        emigrants = [
            (
                copy_genome(state.population[int(i)]),
                float(state.davgs[int(i)]),
                float(state.volumes[int(i)]),
            )
            for i in order[:migration_size]
        ]
        snapshots.append(emigrants)
    moved = 0
    for source, emigrants in enumerate(snapshots):
        target = states[(source + 1) % len(states)]
        # Worst-first within the target, recomputed against its own
        # (pre-migration) objectives — deterministic under the stable sort.
        worst = np.lexsort((target.volumes, target.davgs))[::-1]
        for slot, (genome, davg, volume) in zip(worst[: len(emigrants)], emigrants):
            index = int(slot)
            target.population[index] = genome
            target.davgs[index] = davg
            target.volumes[index] = volume
            moved += 1
    return moved


# -- worker-process plumbing -------------------------------------------------

# The evolver (evaluator, measurement matrices, config) is installed once per
# worker by the pool initializer; epoch jobs then only carry island states.
_WORKER_EVOLVER: PortMappingEvolver | None = None


def _install_worker_evolver(evolver: PortMappingEvolver) -> None:
    global _WORKER_EVOLVER
    _WORKER_EVOLVER = evolver


def _advance_epoch(job: tuple[EvolutionState, int]) -> EvolutionState:
    state, generations = job
    assert _WORKER_EVOLVER is not None, "worker pool initializer did not run"
    return _WORKER_EVOLVER.advance(state, generations)


class IslandEvolver:
    """Evolves ``config.islands`` populations with periodic ring migration.

    Drop-in alternative to :class:`PortMappingEvolver` (same constructor,
    same ``run()`` contract); each island holds ``config.population_size``
    individuals, so K islands search a K-fold larger gene pool while each
    generation's fitness batch stays small enough to parallelize.
    """

    def __init__(
        self,
        ports: PortSpace,
        measurements: ExperimentSet,
        singleton_throughputs: Mapping[str, float],
        config: EvolutionConfig | None = None,
    ):
        self.config = config or EvolutionConfig()
        self.evolver = PortMappingEvolver(
            ports, measurements, singleton_throughputs, self.config
        )
        self.ports = ports

    # Separated out for testability: run one epoch's worth of generations on
    # every active island, serially or on the pool.
    def _advance_all(
        self,
        states: list[EvolutionState],
        generations: int,
        pool: multiprocessing.pool.Pool | None,
    ) -> list[EvolutionState]:
        jobs: list[tuple[int, EvolutionState]] = [
            (k, state)
            for k, state in enumerate(states)
            if not state.stopped and state.generation < self.config.max_generations
        ]
        if not jobs:
            return states
        if pool is None:
            advanced = [
                self.evolver.advance(state, generations) for _, state in jobs
            ]
        else:
            advanced = pool.map(
                _advance_epoch, [(state, generations) for _, state in jobs]
            )
        for (k, _), state in zip(jobs, advanced):
            states[k] = state
        return states

    def run(self) -> IslandResult:
        """Evolve all islands to completion and return the global best."""
        start_time = time.perf_counter()
        config = self.config
        rngs = derive_island_rngs(config.seed, config.islands)
        states = [self.evolver.init_state(rng) for rng in rngs]

        workers = min(config.workers, config.islands)
        pool: multiprocessing.pool.Pool | None = None
        epochs = 0
        migrations = 0
        try:
            if workers > 1:
                pool = multiprocessing.Pool(
                    processes=workers,
                    initializer=_install_worker_evolver,
                    initargs=(self.evolver,),
                )
            while True:
                active = [
                    s
                    for s in states
                    if not s.stopped and s.generation < config.max_generations
                ]
                if not active:
                    break
                states = self._advance_all(states, config.migration_interval, pool)
                epochs += 1
                # Time-to-target runs: one island reaching the target ends
                # the whole archipelago (decided at the epoch barrier, so
                # the outcome is independent of worker scheduling).
                if any(s.target_reached for s in states):
                    break
                # Migrating into a stopped island could not change the
                # result (it never advances again and the migrant is judged
                # against the global best anyway), so exchange among all
                # islands unconditionally — it keeps the topology a ring.
                if any(
                    not s.stopped and s.generation < config.max_generations
                    for s in states
                ):
                    migrations += migrate_ring(states, config.migration_size)
        finally:
            if pool is not None:
                pool.close()
                pool.join()

        # Global winner: lexicographic (D_avg, volume) over each island's
        # champion, ties broken by island index for determinism.
        champions = [
            (float(s.davgs[s.best_index()]), float(s.volumes[s.best_index()]), k)
            for k, s in enumerate(states)
        ]
        best_island = min(champions)[2]
        base = self.evolver.finalize(states[best_island])

        result = IslandResult(
            mapping=base.mapping,
            genome=base.genome,
            davg=base.davg,
            volume=base.volume,
            generations=max(s.generation for s in states),
            evaluations=sum(s.evaluations for s in states),
            wall_seconds=time.perf_counter() - start_time,
            history=states[best_island].history,
            converged=all(s.converged for s in states),
            islands=config.islands,
            workers=workers,
            epochs=epochs,
            migrations=migrations,
            best_island=best_island,
            island_histories=[s.history for s in states],
            island_davgs=[float(s.davgs[s.best_index()]) for s in states],
            islands_converged=[s.converged for s in states],
        )
        return result
