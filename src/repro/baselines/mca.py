"""llvm-mca-style baseline: hand-tuned scheduling models of uneven quality.

llvm-mca predicts throughput from LLVM's per-target scheduling models —
"the result of human fine-tuning effort, proprietary knowledge contributed
by processor designers, and experiments".  In practice those models are
excellent for mainstream Intel cores and much rougher elsewhere; the
paper's Table 4 shows llvm-mca over-estimating heavily on ZEN and A72.

Our analogue ships one hand-written model per machine preset, built exactly
the way LLVM's ``.td`` files are: a human mapped instruction groups onto
*resource groups*.  The SKL model is nearly right (it shares the BTx and
divider blind spots of every published model).  The ZEN and A72 models are
written like the generic models LLVM falls back to for less-tuned targets:
whole instruction families funneled onto one or two resource groups,
ignoring double-pumping and the real port spread — which systematically
*over-estimates* cycle counts, reproducing the paper's Table 4/Figure 7
shapes.

Prediction uses the same analytical throughput model over the hand-written
mapping (llvm-mca's dispatch/queue simulation adds nothing for
dependency-free, frontend-light experiments).
"""

from __future__ import annotations

from repro.core.errors import ISAError
from repro.core.experiment import Experiment
from repro.core.isa import ISA
from repro.core.mapping import ThreeLevelMapping
from repro.core.ports import PortSpace
from repro.machine.measurement import Machine
from repro.throughput.predictor import MappingPredictor

__all__ = ["LLVMMCAPredictor", "mca_scheduling_model"]


def _class_table_skl() -> dict[str, list[tuple[tuple[str, ...], int]]]:
    """A well-tuned Skylake-style model (close to the published mapping)."""
    alu = ("P0", "P1", "P5", "P6")
    shift = ("P0", "P6")
    load = ("P2", "P3")
    staddr = ("P2", "P3", "P7")
    vec3 = ("P0", "P1", "P5")
    vec2 = ("P0", "P1")
    return {
        "int_alu": [(alu, 1)],
        "int_alu_load": [(load, 1), (alu, 1)],
        "int_shift": [(shift, 1)],
        "bt": [(shift, 1)],  # shares the published-model BTx blind spot
        "int_mul": [(("P1",), 1)],
        # Dividers are modeled with their reciprocal throughput (humans
        # always tune those — they dominate latency tables).
        "int_div": [(("P0",), 1), (("DIV",), 6)],
        "lea": [(("P1", "P5"), 1)],
        "bit_count": [(("P1",), 1)],
        "cmov": [(shift, 1)],
        "load_gpr": [(load, 1)],
        "store_gpr": [(staddr, 1), (("P4",), 1)],
        "mov_cross": [(("P0",), 1)],
        "vec_logic": [(vec3, 1)],
        "vec_fp_add": [(vec2, 1)],
        "vec_fp_mul": [(vec2, 1)],
        "vec_fma": [(vec2, 1)],
        # Human tuning slip: shuffles/blends modeled on the FP pair instead
        # of their real ports, a typical scheduling-model inaccuracy.
        "vec_shuffle": [(("P1", "P5"), 1)],
        "vec_blend": [(vec3, 1)],
        "vec_imul": [(vec2, 1)],
        "vec_shift": [(vec2, 1)],
        "vec_hadd": [(("P5",), 2), (vec2, 1)],
        "vec_div": [(("P0",), 1), (("DIV",), 5)],
        "vec_cvt": [(vec2, 1)],
        "load_vec": [(load, 1)],
        "store_vec": [(staddr, 1), (("P4",), 1)],
        "vec_alu_load": [(load, 1), (vec3, 1)],
    }


def _class_table_zen() -> dict[str, list[tuple[tuple[str, ...], int]]]:
    """A coarse Zen model, LLVM-generic style: few resource groups.

    Integer work is funneled onto two of the four ALUs, all FP onto a
    two-pipe group, loads and stores onto a single AGU, and 256-bit
    double-pumping is ignored.  Multi-cycle operations commit the classic
    untuned-model bug of writing the *latency* into the resource occupancy
    instead of the reciprocal throughput, so multiplies, FMAs, conversions
    and divides block their resource group for far too long.  Both kinds of
    inaccuracy inflate predicted cycle counts, reproducing the paper's
    Table 4/Figure 7 over-estimation.
    """
    alu_pair = ("A0", "A1")
    fp_pair = ("F0", "F1")
    one_agu = ("G0",)
    return {
        "int_alu": [(alu_pair, 1)],
        "int_alu_load": [(one_agu, 1), (alu_pair, 1)],
        "int_shift": [(("A1",), 1)],
        "bt": [(("A0",), 1)],
        "int_mul": [(("A1",), 3)],  # latency written as occupancy
        "int_div": [(("A2",), 30)],  # latency, not reciprocal throughput
        "lea": [(alu_pair, 1)],
        "bit_count": [(("A0",), 1)],
        "cmov": [(alu_pair, 1)],
        "load_gpr": [(one_agu, 1)],
        "store_gpr": [(one_agu, 1)],
        "mov_cross": [(("F2",), 3)],
        "vec_logic": [(fp_pair, 1)],
        "vec_fp_add": [(fp_pair, 1)],
        "vec_fp_mul": [(fp_pair, 3)],  # latency as occupancy
        "vec_fma": [(fp_pair, 5)],  # latency as occupancy
        "vec_shuffle": [(("F1",), 1)],
        "vec_blend": [(fp_pair, 1)],
        "vec_imul": [(("F0",), 4)],  # latency as occupancy
        "vec_shift": [(fp_pair, 1)],
        "vec_hadd": [(fp_pair, 3)],  # coarse: one group, three slots
        "vec_div": [(("F3",), 13)],  # latency, not reciprocal throughput
        "vec_cvt": [(("F3",), 4)],  # latency as occupancy
        "load_vec": [(one_agu, 1)],
        "store_vec": [(one_agu, 1)],
        "vec_alu_load": [(one_agu, 1), (fp_pair, 1)],
    }


def _class_table_a72() -> dict[str, list[tuple[tuple[str, ...], int]]]:
    """A coarse Cortex-A72 model: single-pipe groups, latency-as-occupancy.

    The least-tuned model of the three, like LLVM's generic in-order-ish
    ARM models: one pipe per family plus the latency-as-occupancy bug on
    every multi-cycle operation.
    """
    one_int = ("I0",)
    one_fp = ("F0",)
    return {
        "int_alu": [(one_int, 1)],
        "int_alu_shift": [(("M",), 2)],  # latency as occupancy
        "int_shift": [(one_int, 1)],
        "cmov": [(one_int, 1)],
        "bit_count": [(one_int, 1)],
        "int_mul": [(("M",), 3)],  # latency as occupancy
        "int_madd": [(("M",), 3)],  # latency as occupancy
        "int_div": [(("M",), 18)],  # latency, not reciprocal throughput
        "lea": [(one_int, 1)],
        "load_gpr": [(("L",), 1)],
        "store_gpr": [(("S",), 1)],
        "load_pair": [(("L",), 2)],
        "store_pair": [(("S",), 2)],
        "load_interleave": [(("L",), 2)],  # misses the permute µop
        "store_interleave": [(("S",), 2)],
        "mov_cross": [(one_fp, 3)],  # latency as occupancy
        "vec_logic": [(one_fp, 1)],
        "vec_fp_add": [(one_fp, 1)],
        "vec_fp_mul": [(one_fp, 4)],  # latency as occupancy
        "vec_fma": [(one_fp, 7)],  # latency as occupancy
        "vec_shuffle": [(("F1",), 1)],
        "vec_imul": [(one_fp, 4)],  # latency as occupancy
        "vec_shift": [(("F1",), 3)],  # latency as occupancy
        "vec_div": [(one_fp, 12)],  # latency, not reciprocal throughput
        "vec_cvt": [(("F1",), 4)],  # latency as occupancy
        "load_vec": [(("L",), 1)],
        "store_vec": [(("S",), 1)],
        "fp_add": [(one_fp, 1)],
        "fp_mul": [(one_fp, 4)],  # latency as occupancy
        "fp_fma": [(one_fp, 7)],  # latency as occupancy
        "fp_div": [(one_fp, 11)],  # latency, not reciprocal throughput
        "fp_cvt": [(("F1",), 4)],  # latency as occupancy
        "fp_mov": [(one_fp, 1)],
        "load_fp": [(("L",), 1)],
        "store_fp": [(("S",), 1)],
    }


_MODEL_TABLES = {
    "SKL": _class_table_skl,
    "ZEN": _class_table_zen,
    "A72": _class_table_a72,
}


def mca_scheduling_model(machine: Machine) -> ThreeLevelMapping:
    """The hand-written llvm-mca scheduling model for a preset machine.

    Width-tagged semantic classes (``vec_fp_add@256``) resolve to their base
    entry — the coarse models ignore operand width, like untuned LLVM
    models do.
    """
    table_factory = _MODEL_TABLES.get(machine.name)
    if table_factory is None:
        raise ISAError(
            f"no llvm-mca scheduling model for machine {machine.name!r}; "
            f"have {sorted(_MODEL_TABLES)}"
        )
    table = table_factory()
    ports: PortSpace = machine.config.ports
    isa: ISA = machine.isa
    assignment: dict[str, dict[int, int]] = {}
    for form in isa:
        tag = form.semantic_class
        base = tag.rsplit("@", 1)[0] if "@" in tag else tag
        entry = table.get(base)
        if entry is None:
            raise ISAError(f"scheduling model for {machine.name!r} lacks {base!r}")
        uops: dict[int, int] = {}
        for port_names, count in entry:
            mask = ports.mask(*port_names)
            uops[mask] = uops.get(mask, 0) + count
        assignment[form.name] = uops
    return ThreeLevelMapping(ports, assignment)


class LLVMMCAPredictor:
    """Analytical throughput over the hand-written scheduling model."""

    def __init__(self, machine: Machine):
        self.name = "llvm-mca"
        self._inner = MappingPredictor(
            mca_scheduling_model(machine), name=self.name, backend="bottleneck"
        )

    @property
    def mapping(self) -> ThreeLevelMapping:
        return self._inner.mapping

    def predict(self, experiment: Experiment) -> float:
        return self._inner.predict(experiment)

    def __repr__(self) -> str:
        return "LLVMMCAPredictor()"
