"""Baseline predictors the paper compares against (Section 5.3/6)."""

from repro.baselines.iaca import IACAPredictor
from repro.baselines.ithemal import IthemalPredictor, TrainingConfig
from repro.baselines.mca import LLVMMCAPredictor, mca_scheduling_model
from repro.baselines.oracle import UopsInfoPredictor

__all__ = [
    "UopsInfoPredictor",
    "IACAPredictor",
    "LLVMMCAPredictor",
    "mca_scheduling_model",
    "IthemalPredictor",
    "TrainingConfig",
]
