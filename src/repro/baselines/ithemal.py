"""Ithemal-style learned throughput predictor.

Ithemal (Mendis et al. 2019) trains a neural network on basic blocks
*extracted from compiled programs*, labeled with measured throughput.  Such
blocks are full of read-after-write dependencies, so the learned model's
notion of "cycles per instruction mix" bakes in latency effects.  The paper
finds that on PMEvo's dependency-free, port-mapping-bound experiments
Ithemal's error explodes (60.6% MAPE on SKL, Table 3) — not because the
model is bad at its own task, but because the evaluation distribution is
different.

We reproduce that *methodological* effect with an honest stand-in:

* training data = random instruction sequences allocated with a tiny
  register pool, creating realistic dependency chains, measured on the same
  machine (labels are real simulated cycles);
* model = ridge regression over instruction-form counts (a linear stand-in
  for the LSTM — sufficient, since the distribution shift, not model
  capacity, drives the effect);
* evaluation happens on dependency-free experiments elsewhere in the
  harness.

The predictor never sees the machine's ground truth mapping.
"""

from __future__ import annotations

import numpy as np

from repro.codegen.loop import interleaved_forms
from repro.codegen.regalloc import AllocationConfig, RegisterAllocator
from repro.core.errors import InferenceError
from repro.core.experiment import Experiment
from repro.machine.measurement import Machine

__all__ = ["IthemalPredictor", "TrainingConfig"]


class TrainingConfig:
    """Training-set shape for the learned baseline.

    ``register_pool`` controls how dependency-heavy the training blocks
    are: fewer allocatable registers mean shorter read-after-write
    distances, i.e. more latency-bound blocks (compiled code flavour).
    """

    def __init__(
        self,
        num_blocks: int = 300,
        min_length: int = 4,
        max_length: int = 16,
        register_pool: int = 4,
        ridge_lambda: float = 1.0,
        seed: int = 0,
    ):
        if num_blocks < 10:
            raise InferenceError("need at least 10 training blocks")
        if not 1 <= min_length <= max_length:
            raise InferenceError("invalid training block length range")
        if register_pool < 2:
            raise InferenceError("register pool must be at least 2")
        self.num_blocks = num_blocks
        self.min_length = min_length
        self.max_length = max_length
        self.register_pool = register_pool
        self.ridge_lambda = ridge_lambda
        self.seed = seed


class IthemalPredictor:
    """A learned regressor trained on dependency-heavy basic blocks."""

    def __init__(self, machine: Machine, training: TrainingConfig | None = None):
        self.name = "Ithemal"
        self.machine = machine
        self.training = training or TrainingConfig()
        self._names = machine.isa.names
        self._index = {name: i for i, name in enumerate(self._names)}
        self._weights: np.ndarray | None = None
        self._train()

    # -- training ----------------------------------------------------------

    def _measure_block(self, forms) -> float:
        """Cycles/iteration for a dependency-heavy block on the machine."""
        allocation = AllocationConfig(
            num_gprs=self.training.register_pool,
            num_vecs=self.training.register_pool,
        )
        allocator = RegisterAllocator(allocation)
        body = allocator.allocate_sequence(forms)
        # Same steady-state differencing as the measurement harness.
        short = self.machine.processor.run(body, iterations=4)
        long = self.machine.processor.run(body, iterations=12)
        return (long.cycles - short.cycles) / 8.0

    def _featurize(self, counts: dict[str, int]) -> np.ndarray:
        features = np.zeros(len(self._names) + 1)
        total = 0
        for name, count in counts.items():
            column = self._index.get(name)
            if column is None:
                raise InferenceError(f"unknown instruction form {name!r}")
            features[column] = float(count)
            total += count
        features[-1] = float(total)  # block length, a strong Ithemal signal
        return features

    def _train(self) -> None:
        rng = np.random.default_rng(self.training.seed)
        rows = []
        labels = []
        pool = list(self._names)
        for _ in range(self.training.num_blocks):
            length = int(
                rng.integers(self.training.min_length, self.training.max_length + 1)
            )
            picks = rng.integers(0, len(pool), size=length)
            counts: dict[str, int] = {}
            for pick in picks.tolist():
                counts[pool[pick]] = counts.get(pool[pick], 0) + 1
            forms = interleaved_forms(self.machine.isa, Experiment(counts))
            labels.append(self._measure_block(forms))
            rows.append(self._featurize(counts))
        matrix = np.stack(rows)
        target = np.array(labels)
        # Ridge regression: (X^T X + λI) w = X^T y.
        gram = matrix.T @ matrix
        gram += self.training.ridge_lambda * np.eye(gram.shape[0])
        self._weights = np.linalg.solve(gram, matrix.T @ target)

    # -- inference -----------------------------------------------------------

    def predict(self, experiment: Experiment) -> float:
        """Predicted cycles for one iteration of the experiment."""
        if self._weights is None:  # pragma: no cover - _train runs in __init__
            raise InferenceError("predictor is not trained")
        features = self._featurize(dict(experiment.counts))
        prediction = float(features @ self._weights)
        return max(prediction, 1e-6)

    def __repr__(self) -> str:
        return f"IthemalPredictor(machine={self.machine.name!r})"
