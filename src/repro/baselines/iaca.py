"""IACA-style vendor simulator baseline.

The Intel Architecture Code Analyzer models execution of a code snippet
"considering factors such as port usage, operand dependencies, and
instruction decoding bottlenecks" with unpublished internal knowledge.  Our
analogue simulates the experiment on a *replica* of the machine's own core
— same decompositions, same blocking dividers, same frontend and greedy
scheduler — but without the hidden quirk µops (the paper shows IACA shares
the BTx misprediction cluster with every other mapping-based predictor,
so even the vendor model does not capture those).

Because it replays the machine's scheduling instead of assuming an optimal
scheduler, this baseline tracks measurements better than the pure
analytical model as experiments grow longer — the Figure 6 effect.

It is only "provided" for the SKL preset: IACA exists solely for Intel
microarchitectures.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.errors import ISAError
from repro.core.experiment import Experiment
from repro.machine.config import ExecutionClass, MachineConfig
from repro.machine.measurement import Machine, MeasurementConfig
from repro.machine.presets import PRESET_NAMES

__all__ = ["IACAPredictor"]


def _vendor_model(config: MachineConfig) -> MachineConfig:
    """IACA's internal model: no hidden quirks, idealized port binding.

    The real IACA's scheduling differs from silicon in unknowable details;
    we model that mismatch by giving the replica a naive first-fit port
    binder instead of the machine's load-balancing one.
    """
    classes = {
        name: ExecutionClass(
            name=cls.name, uops=cls.uops, latency=cls.latency, hidden_uops=()
        )
        for name, cls in config.classes.items()
    }
    backend = replace(config.backend, port_policy="lowest_index")
    return MachineConfig(
        name=config.name,
        ports=config.ports,
        isa=config.isa,
        classes=classes,
        frontend=config.frontend,
        backend=backend,
        latency_overrides=dict(config.latency_overrides),
        clock_ghz=config.clock_ghz,
    )


class IACAPredictor:
    """Throughput prediction by simulating a vendor-internal core model."""

    SUPPORTED = ("SKL",)

    def __init__(self, machine: Machine, enforce_support: bool = True):
        if enforce_support and machine.name not in self.SUPPORTED:
            supported = ", ".join(self.SUPPORTED)
            raise ISAError(
                f"IACA is only provided for Intel-style presets ({supported}), "
                f"not {machine.name!r} (pass enforce_support=False to override)"
            )
        if machine.name not in PRESET_NAMES and enforce_support:
            raise ISAError(f"unknown machine {machine.name!r}")
        self.name = "IACA"
        # A noise-free internal machine with hidden quirks stripped: the
        # vendor model knows the real decompositions and pipeline shapes
        # but not the erratum-style quirks.
        self._model = Machine(
            _vendor_model(machine.config),
            MeasurementConfig(noisy=False),
            allocation=machine.allocation,
        )

    def predict(self, experiment: Experiment) -> float:
        return self._model.measure(experiment)

    def __repr__(self) -> str:
        return "IACAPredictor()"
