"""uops.info-style oracle predictor.

Abel and Reineke's uops.info provides measured per-instruction port usage
for Intel cores — in our setting, the machine's *published* ground-truth
mapping (visible µops; hidden quirks and blocking behaviour excluded, since
per-port µop counters cannot see either).  Throughput prediction is the
analytical model over that mapping.

This is the strongest mapping-based baseline and is only "available" for
the SKL preset, mirroring the paper (uops.info only covers Intel).
"""

from __future__ import annotations

from repro.core.errors import ISAError
from repro.core.experiment import Experiment
from repro.machine.measurement import Machine
from repro.throughput.predictor import MappingPredictor

__all__ = ["UopsInfoPredictor"]


class UopsInfoPredictor:
    """Analytical throughput from the machine's published port mapping."""

    #: Machines uops.info covers, as in the paper's evaluation.
    SUPPORTED = ("SKL",)

    def __init__(self, machine: Machine, enforce_support: bool = True):
        if enforce_support and machine.name not in self.SUPPORTED:
            raise ISAError(
                f"uops.info-style data is only available for {self.SUPPORTED}, "
                f"not {machine.name!r} (pass enforce_support=False to override)"
            )
        self.name = "uops.info"
        self._inner = MappingPredictor(
            machine.ground_truth_mapping(), name=self.name, backend="bottleneck"
        )

    @property
    def mapping(self):
        """The published mapping this oracle predicts with."""
        return self._inner.mapping

    def predict(self, experiment: Experiment) -> float:
        return self._inner.predict(experiment)

    def __repr__(self) -> str:
        return "UopsInfoPredictor()"
