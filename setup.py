"""Legacy setuptools shim.

The offline environment lacks the ``wheel`` package, which the PEP 660
editable-install path requires; this shim lets ``pip install -e .`` fall back
to the classic ``setup.py develop`` route.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
